//! LOCKSET: Eraser-style data-race detection (Savage et al.), the paper's
//! example of a lifeguard that *violates* §5.3 condition 2.
//!
//! LockSet maintains, per shared variable, the candidate set of locks that
//! consistently protected it. Because a mere application *read* can shrink
//! the candidate set, read handlers perform metadata **writes** — enforced
//! arcs alone no longer guarantee atomicity. Following §5.3, the
//! implementation splits read handlers into a *synchronization-free fast
//! path* (pure candidate-set check, no state change needed) and a locked
//! *slow path* (single metadata write under a lock); the platform charges
//! [`CostModel::slow_path_sync`](crate::cost::CostModel::slow_path_sync) when
//! [`HandlerCtx::slow_path`] is set.

use crate::factory::{ConcurrentLifeguard, VersionedMeta};
use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use paralog_events::{
    check_view, AddrRange, CaPhase, CaRecord, EventPayload, EventRecord, HighLevelKind, MetaOp,
    Rid, ThreadId,
};
use paralog_meta::AtomicWordTable;
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread so far.
    Exclusive(ThreadId),
    /// Read-shared by multiple threads, never written after sharing.
    Shared,
    /// Written by multiple threads — candidate-set emptiness is a race.
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarEntry {
    state: VarState,
    /// Candidate lock set as a bitmask over lock ids (< 64).
    candidates: u64,
    reported: bool,
}

/// Analysis-wide shared state: per-variable lockset table.
#[derive(Debug, Default)]
pub struct LockSetShared {
    vars: HashMap<u64, VarEntry>,
}

impl LockSetShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(LockSetShared::default()))
    }
}

/// One lifeguard thread of the parallel LOCKSET.
#[derive(Debug)]
pub struct LockSet {
    shared: Rc<RefCell<LockSetShared>>,
    /// Locks currently held by the monitored thread (bitmask).
    held: u64,
    tid: ThreadId,
    spec: LifeguardSpec,
}

/// Word granularity of race detection (4 bytes, like Eraser).
const GRANULE: u64 = 4;

/// Start of the synchronization-object address space. Accesses to lock and
/// barrier words are synchronization, not data — Eraser excludes them.
/// Mirrors `paralog_sim::sync::SYNC_BASE` (asserted equal in the
/// integration tests to avoid a dependency cycle).
pub const SYNC_SPACE_START: u64 = 0xF000_0000;

impl LockSet {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<LockSetShared>>, tid: ThreadId) -> Self {
        LockSet {
            shared,
            held: 0,
            tid,
            spec: LifeguardSpec {
                name: "LockSet",
                view: EventView::Check,
                uses_it: false,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: CaPolicy::new(),
                bits_per_byte: 8,
                atomicity: AtomicityClass::FastPathSlowPath,
            },
        }
    }

    /// The monitored thread's currently held locks (bitmask; diagnostic).
    pub fn held(&self) -> u64 {
        self.held
    }

    fn check_granule(&mut self, word: u64, writes: bool, rid: Rid, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        let entry = shared.vars.entry(word).or_insert(VarEntry {
            state: VarState::Virgin,
            candidates: u64::MAX,
            reported: false,
        });
        let held = self.held;
        let (new_state, new_candidates) = match entry.state {
            VarState::Virgin => (VarState::Exclusive(self.tid), entry.candidates),
            VarState::Exclusive(owner) if owner == self.tid => {
                // Fast path: no metadata change.
                (entry.state, entry.candidates)
            }
            VarState::Exclusive(_) => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, held)
            }
            VarState::Shared => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, entry.candidates & held)
            }
            VarState::SharedModified => (VarState::SharedModified, entry.candidates & held),
        };
        let changed = new_state != entry.state || new_candidates != entry.candidates;
        if changed && !writes {
            // §5.3: a metadata write in a read handler is the slow path.
            ctx.slow_path = true;
        }
        entry.state = new_state;
        entry.candidates = new_candidates;
        if entry.state == VarState::SharedModified && entry.candidates == 0 && !entry.reported {
            entry.reported = true;
            ctx.report(Violation {
                tid: self.tid,
                rid,
                kind: ViolationKind::DataRace,
                addr: Some(word),
            });
        }
    }
}

impl Lifeguard for LockSet {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let (mem, kind) = match *op {
            MetaOp::CheckAccess { mem, kind } => (mem, kind),
            // Lock words themselves are not subject to lockset analysis.
            MetaOp::RmwOp { .. } => return,
            _ => return,
        };
        if mem.addr >= SYNC_SPACE_START {
            // Synchronization objects (lock words, barrier slots/flags) are
            // accessed racily by construction.
            return;
        }
        let first = mem.addr / GRANULE;
        let last = (mem.addr + mem.size as u64 - 1) / GRANULE;
        for word in first..=last {
            ctx.touch_read(AddrRange::new(0x6000_0000_0000 + word * 8, 8));
            self.check_granule(word * GRANULE, kind.writes(), rid, ctx);
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match ca.what {
            HighLevelKind::Lock(lock) if ca.phase == CaPhase::End => {
                self.held |= 1u64 << (lock.0 % 64);
            }
            HighLevelKind::Unlock(lock) if ca.phase == CaPhase::Begin => {
                self.held &= !(1u64 << (lock.0 % 64));
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Lockset state is not byte-shadow metadata; versioning does not
        // apply (LockSet is evaluated under SC only).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (word, entry) in &shared.vars {
            let state_code = match entry.state {
                VarState::Virgin => 0u64,
                VarState::Exclusive(t) => 1 + u64::from(t.0),
                VarState::Shared => 1 << 32,
                VarState::SharedModified => 2 << 32,
            };
            fp.mix(*word, state_code ^ entry.candidates);
        }
        fp.finish()
    }
}

/// Packed-entry state codes for the concurrent form (bits 0–1 of the
/// [`AtomicWordTable`] word). The all-zero word is reserved for
/// never-touched keys, so `Virgin` *is* 0 and every real state is non-zero.
const S_VIRGIN: u64 = 0;
const S_EXCLUSIVE: u64 = 1;
const S_SHARED: u64 = 2;
const S_SHARED_MOD: u64 = 3;
/// Bit 2: the once-per-variable race report fired.
const REPORTED_BIT: u64 = 1 << 2;
/// Bits 16–31: owner thread (Exclusive state only).
const OWNER_SHIFT: u64 = 16;
/// Bits 32–63: interned candidate-lockset id.
const SET_SHIFT: u64 = 32;

fn pack(state: u64, owner: u16, set_id: u32, reported: bool) -> u64 {
    state
        | if reported { REPORTED_BIT } else { 0 }
        | (u64::from(owner) << OWNER_SHIFT)
        | (u64::from(set_id) << SET_SHIFT)
}

/// Interns candidate lock *masks* into dense u32 ids so one packed
/// [`AtomicWordTable`] word can carry Eraser's whole per-variable state.
///
/// Interning is the §5.3 **slow path** — it runs only when an access
/// actually refines a candidate set (a metadata write) — while `id → mask`
/// resolution is a lock-free [`OnceLock`] read the fast path may take on
/// every access. Id 0 is pre-interned to the full set (`u64::MAX`), the
/// candidates of a virgin variable.
#[derive(Debug)]
struct MaskInterner {
    /// id → mask; published before the id escapes the mutex below.
    masks: Box<[OnceLock<u64>]>,
    /// mask → id plus the next free id, behind the slow-path lock.
    ids: Mutex<(HashMap<u64, u32>, u32)>,
}

/// Distinct candidate masks one run can intern. Masks are intersections of
/// per-thread held-lock sets (≤ 64 locks), so real workloads stay far
/// below this.
const MAX_MASKS: usize = 1 << 16;

impl MaskInterner {
    fn new() -> Self {
        let masks: Box<[OnceLock<u64>]> = (0..MAX_MASKS).map(|_| OnceLock::new()).collect();
        masks[0].set(u64::MAX).expect("fresh slot");
        let mut map = HashMap::new();
        map.insert(u64::MAX, 0u32);
        MaskInterner {
            masks,
            ids: Mutex::new((map, 1)),
        }
    }

    /// The mask behind an id handed out by [`intern`](Self::intern)
    /// (lock-free: ids are published before they escape).
    fn mask(&self, id: u32) -> u64 {
        *self.masks[id as usize].get().expect("id was interned")
    }

    /// The id for `mask`, interning it if new (slow path).
    fn intern(&self, mask: u64) -> u32 {
        let mut ids = self.ids.lock().expect("poisoned");
        if let Some(&id) = ids.0.get(&mask) {
            return id;
        }
        let id = ids.1;
        assert!(
            (id as usize) < MAX_MASKS,
            "lockset interner exhausted ({MAX_MASKS} distinct candidate masks)"
        );
        ids.1 += 1;
        // Publish the mask *before* the id escapes the lock, so concurrent
        // `mask()` readers of a CAS-published entry always resolve it.
        self.masks[id as usize].set(mask).expect("fresh slot");
        ids.0.insert(mask, id);
        id
    }
}

/// The `Send + Sync` replay form of LOCKSET driven by the real-thread
/// backend: the §5.3 **fast-path/slow-path split** made concrete for the
/// paper's canonical condition-2 violator.
///
/// Each variable's whole Eraser state — state machine code, owning thread,
/// `reported` flag and an *interned* candidate-lockset id — packs into one
/// word of an [`AtomicWordTable`]. The common case (a same-thread re-access
/// in `Exclusive` state, or a read that refines nothing) is a single
/// load-acquire: no store, no lock, nothing for another worker to contend
/// on. A transition that must write metadata publishes the recomputed word
/// with a CAS-exchange, retrying from a fresh read on a lost race; the only
/// mutex anywhere is the interner's, taken just when a *new* candidate mask
/// appears (first-write interning and refinement) — the rare structural
/// slow path. Per-variable transitions are confluent under the enforced
/// arcs (intersection is commutative; writes are always arc-ordered), so
/// the CAS linearization reproduces the deterministic backend's final
/// metadata, and the `reported` bit makes the once-per-variable race report
/// exact even when unordered reads race to observe the empty set.
pub struct LockSetConcurrent {
    /// word-granule index → packed Eraser state.
    words: AtomicWordTable,
    interner: MaskInterner,
    /// Locks currently held per monitored thread. Thread-private by the
    /// backend's contract (each stream's records are applied only by the
    /// worker owning it), so relaxed atomics suffice — no lock on the
    /// per-access read.
    held: Vec<std::sync::atomic::AtomicU64>,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for LockSetConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The word table and interner are multi-megabyte chunk indexes; a
        // compact summary beats the derived dump.
        f.debug_struct("LockSetConcurrent")
            .field("threads", &self.held.len())
            .finish_non_exhaustive()
    }
}

impl LockSetConcurrent {
    /// A fresh concurrent LOCKSET for `threads` replayed streams. The word
    /// table grows lazily as accesses arrive, so streams may be ingested
    /// incrementally — no footprint pre-scan.
    pub fn new(threads: usize) -> Self {
        LockSetConcurrent {
            words: AtomicWordTable::new(),
            interner: MaskInterner::new(),
            held: (0..threads)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// One granule's state transition — the concurrent mirror of
    /// [`LockSet::check_granule`]'s match, CAS-published.
    fn check_granule(&self, word: u64, writes: bool, held: u64, tid: ThreadId, rid: Rid) {
        let key = word / GRANULE;
        loop {
            let cur = self.words.load(key);
            let state = cur & 0b11;
            let owner = ((cur >> OWNER_SHIFT) & 0xFFFF) as u16;
            let set_id = (cur >> SET_SHIFT) as u32;
            let reported = cur & REPORTED_BIT != 0;
            let next = match state {
                S_VIRGIN => pack(S_EXCLUSIVE, tid.0, 0, false),
                S_EXCLUSIVE if owner == tid.0 => cur, // pure fast path
                S_EXCLUSIVE => {
                    let next = if writes { S_SHARED_MOD } else { S_SHARED };
                    pack(next, 0, self.interner.intern(held), reported)
                }
                S_SHARED | S_SHARED_MOD => {
                    let next = if writes || state == S_SHARED_MOD {
                        S_SHARED_MOD
                    } else {
                        S_SHARED
                    };
                    let candidates = self.interner.mask(set_id);
                    let refined = candidates & held;
                    let id = if refined == candidates {
                        set_id // no refinement: fast path when state holds too
                    } else {
                        self.interner.intern(refined)
                    };
                    pack(next, 0, id, reported)
                }
                _ => unreachable!("2-bit state"),
            };
            // Once-per-variable race report: empty candidate set on a
            // written-shared variable, not yet reported.
            let report = next & 0b11 == S_SHARED_MOD
                && next & REPORTED_BIT == 0
                && self.interner.mask((next >> SET_SHIFT) as u32) == 0;
            let next = if report { next | REPORTED_BIT } else { next };
            if next == cur {
                return; // §5.3 fast path: one load-acquire, no store
            }
            match self.words.compare_exchange(key, cur, next) {
                Ok(_) => {
                    if report {
                        // The CAS winner owns the report: exactly one per
                        // variable, however many readers raced it.
                        self.violations.lock().expect("poisoned").push(Violation {
                            tid,
                            rid,
                            kind: ViolationKind::DataRace,
                            addr: Some(word),
                        });
                    }
                    return;
                }
                // Lost to a concurrent (arc-unordered) access of the same
                // variable: recompute from its published state.
                Err(_) => continue,
            }
        }
    }
}

impl ConcurrentLifeguard for LockSetConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, _versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                let Some(MetaOp::CheckAccess { mem, kind }) = check_view(instr) else {
                    return;
                };
                if mem.addr >= SYNC_SPACE_START {
                    // Synchronization objects are accessed racily by
                    // construction; Eraser excludes them.
                    return;
                }
                let held = self.held[tid.index()].load(std::sync::atomic::Ordering::Relaxed);
                let first = mem.addr / GRANULE;
                let last = (mem.addr + u64::from(mem.size) - 1) / GRANULE;
                for word in first..=last {
                    self.check_granule(word * GRANULE, kind.writes(), held, tid, rec.rid);
                }
            }
            EventPayload::Ca(ca) => {
                // Lock ownership is per-thread state: only the issuer's own
                // stream copy updates it (remote copies order).
                if ca.issuer != tid {
                    return;
                }
                use std::sync::atomic::Ordering;
                let held = &self.held[tid.index()];
                match ca.what {
                    HighLevelKind::Lock(lock) if ca.phase == CaPhase::End => {
                        held.fetch_or(1u64 << (lock.0 % 64), Ordering::Relaxed);
                    }
                    HighLevelKind::Unlock(lock) if ca.phase == CaPhase::Begin => {
                        held.fetch_and(!(1u64 << (lock.0 % 64)), Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
    }

    fn ca_policy(&self) -> CaPolicy {
        // Mirrors the sequential spec: LOCKSET orders entirely through
        // dependence arcs; no CA subscriptions, no §5.4 range tracking.
        CaPolicy::new()
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Lockset state is not byte-shadow metadata; §5.5 versioning does
        // not apply (identical to the sequential form's all-clean answer).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        self.words.for_each_nonzero(|key, entry| {
            let owner = ((entry >> OWNER_SHIFT) & 0xFFFF) as u16;
            let state_code = match entry & 0b11 {
                S_EXCLUSIVE => 1 + u64::from(owner),
                S_SHARED => 1 << 32,
                S_SHARED_MOD => 2 << 32,
                _ => unreachable!("stored entries are never virgin"),
            };
            let candidates = self.interner.mask((entry >> SET_SHIFT) as u32);
            fp.mix(key * GRANULE, state_code ^ candidates);
        });
        fp.finish()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{AccessKind, LockId, MemRef};

    fn lock_ca(id: u32, phase: CaPhase, what_lock: bool) -> CaRecord {
        CaRecord {
            what: if what_lock {
                HighLevelKind::Lock(LockId(id))
            } else {
                HighLevelKind::Unlock(LockId(id))
            },
            phase,
            range: None,
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    fn access(addr: u64, write: bool) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, 4),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    fn two_threads() -> (LockSet, LockSet) {
        let shared = LockSetShared::new();
        (
            LockSet::new(Rc::clone(&shared), ThreadId(0)),
            LockSet::new(Rc::clone(&shared), ThreadId(1)),
        )
    }

    #[test]
    fn consistent_locking_is_silent() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        a.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(2), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn unprotected_sharing_reports_race_once() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, true), Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(1), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].kind, ViolationKind::DataRace);
        // Further accesses do not re-report.
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn read_sharing_without_writes_is_not_a_race() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        b.handle(&access(0x100, false), Rid(1), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn exclusive_fast_path_sets_no_slow_flag() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx); // Virgin -> Exclusive (write-ish transition but read)
        let mut ctx2 = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(2), &mut ctx2);
        assert!(!ctx2.slow_path, "same-thread re-read is the fast path");
    }

    #[test]
    fn cross_thread_read_takes_slow_path() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        let mut ctx2 = HandlerCtx::new();
        b.handle(&access(0x100, false), Rid(1), &mut ctx2);
        assert!(
            ctx2.slow_path,
            "state transition on read = metadata write = slow path"
        );
    }

    #[test]
    fn lock_tracking_follows_ca_records() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        assert_eq!(a.held(), 0);
        a.handle_ca(&lock_ca(3, CaPhase::End, true), true, Rid(1), &mut ctx);
        assert_eq!(a.held(), 1 << 3);
        a.handle_ca(&lock_ca(3, CaPhase::Begin, false), true, Rid(2), &mut ctx);
        assert_eq!(a.held(), 0);
        // Remote lock CAs do not change our held set.
        a.handle_ca(&lock_ca(5, CaPhase::End, true), false, Rid(3), &mut ctx);
        assert_eq!(a.held(), 0);
    }

    fn rec_access(rid: u64, addr: u64, write: bool) -> EventRecord {
        use paralog_events::{Instr, Reg};
        let mem = MemRef::new(addr, 4);
        EventRecord::instr(
            Rid(rid),
            if write {
                Instr::Store {
                    dst: mem,
                    src: Reg::new(0),
                }
            } else {
                Instr::Load {
                    dst: Reg::new(0),
                    src: mem,
                }
            },
        )
    }

    fn rec_lock(rid: u64, tid: u16, id: u32, acquire: bool) -> EventRecord {
        EventRecord::ca(
            Rid(rid),
            CaRecord {
                what: if acquire {
                    HighLevelKind::Lock(LockId(id))
                } else {
                    HighLevelKind::Unlock(LockId(id))
                },
                phase: if acquire {
                    CaPhase::End
                } else {
                    CaPhase::Begin
                },
                range: None,
                issuer: ThreadId(tid),
                issuer_rid: Rid(rid),
                seq: u64::MAX,
            },
        )
    }

    #[test]
    fn concurrent_form_matches_sequential_transitions() {
        // Consistent locking is silent; unprotected write sharing reports
        // exactly once; the final fingerprint tracks the sequential family
        // through the same access sequence.
        let conc = LockSetConcurrent::new(2);
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();

        // Lock-disciplined accesses to 0x100 from both threads.
        conc.apply(ThreadId(0), &rec_lock(1, 0, 1, true), None);
        conc.apply(ThreadId(0), &rec_access(2, 0x100, true), None);
        conc.apply(ThreadId(0), &rec_lock(3, 0, 1, false), None);
        conc.apply(ThreadId(1), &rec_lock(1, 1, 1, true), None);
        conc.apply(ThreadId(1), &rec_access(2, 0x100, true), None);
        conc.apply(ThreadId(1), &rec_lock(3, 1, 1, false), None);
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        a.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(2), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        assert!(conc.violations().is_empty(), "lock 1 protects 0x100");
        assert_eq!(conc.fingerprint(), a.fingerprint(), "disciplined state");

        // Unprotected write sharing on 0x200: one race, reported once.
        conc.apply(ThreadId(0), &rec_access(4, 0x200, true), None);
        conc.apply(ThreadId(1), &rec_access(4, 0x200, true), None);
        conc.apply(ThreadId(0), &rec_access(5, 0x200, true), None);
        a.handle(&access(0x200, true), Rid(4), &mut ctx);
        b.handle(&access(0x200, true), Rid(4), &mut ctx);
        a.handle(&access(0x200, true), Rid(5), &mut ctx);
        assert_eq!(conc.violations().len(), 1);
        assert_eq!(conc.violations()[0].kind, ViolationKind::DataRace);
        assert_eq!(conc.violations()[0].addr, Some(0x200));
        assert_eq!(ctx.violations.len(), 1, "sequential agrees");
        assert_eq!(conc.fingerprint(), a.fingerprint(), "post-race state");
    }

    #[test]
    fn concurrent_form_ignores_sync_space_and_remote_lock_cas() {
        let conc = LockSetConcurrent::new(2);
        // Sync-space accesses are not subject to lockset analysis.
        conc.apply(
            ThreadId(0),
            &rec_access(1, SYNC_SPACE_START + 8, true),
            None,
        );
        conc.apply(
            ThreadId(1),
            &rec_access(1, SYNC_SPACE_START + 8, true),
            None,
        );
        assert!(conc.violations().is_empty());
        // A remote thread's lock CA must not change our held set: thread 1
        // never really acquired lock 2, so its write shares 0x300 unlocked.
        conc.apply(ThreadId(1), &rec_lock(2, 0, 2, true), None); // issuer 0!
        conc.apply(ThreadId(0), &rec_lock(2, 0, 2, true), None);
        conc.apply(ThreadId(0), &rec_access(3, 0x300, true), None);
        conc.apply(ThreadId(1), &rec_access(3, 0x300, true), None);
        assert_eq!(conc.violations().len(), 1, "remote CA gave no protection");
    }

    #[test]
    fn concurrent_racing_readers_report_exactly_once() {
        // Many real threads hammer the same unprotected variable: the CAS
        // loop must converge and the `reported` bit must keep the report
        // unique — the invariant the TSan job races.
        let conc = LockSetConcurrent::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let conc = &conc;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        conc.apply(ThreadId(t), &rec_access(i + 1, 0x400, true), None);
                    }
                });
            }
        });
        assert_eq!(conc.violations().len(), 1, "exactly one DataRace report");
        // And the candidate set converged to empty SharedModified state.
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x400, true), Rid(1), &mut ctx);
        b.handle(&access(0x400, true), Rid(1), &mut ctx);
        // (Sequential fingerprint differs only if candidates/state differ;
        // both are SharedModified with empty candidates here.)
        assert_eq!(conc.fingerprint(), a.fingerprint());
    }

    #[test]
    fn partial_candidate_overlap_survives() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        // Thread 0 holds {1,2}, thread 1 holds {2}: candidate set ends {2}.
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(2), &mut ctx);
        a.handle(&access(0x200, true), Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x200, true), Rid(2), &mut ctx);
        assert!(ctx.violations.is_empty(), "lock 2 consistently protects");
    }
}
