//! MEMCHECK-style initialized-ness tracking.
//!
//! §4.1 names MEMCHECK as the example of a lifeguard whose Inheritance
//! Tracking state conflicts with *high-level* events: it tracks the
//! propagation of initialized states of memory (like TAINTCHECK, but with
//! the lattice inverted — fresh memory is *undefined* and stores make
//! destinations defined), so a `malloc`/`free` changes metadata wholesale and
//! must flush the IT table via ConflictAlert.
//!
//! Reporting policy follows Memcheck: copying undefined data is fine;
//! *using* it (indirect jump, checked syscall argument) is a violation.

use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use crate::taintcheck::for_each_nonzero;
use paralog_events::{
    AddrRange, CaPhase, CaRecord, HighLevelKind, MemRef, MetaOp, Rid, ThreadId, NUM_REGS,
};
use paralog_meta::ShadowMemory;
use paralog_order::{CaActions, CaPolicy};
use std::cell::RefCell;
use std::rc::Rc;

/// Metadata value for "undefined" (bit 0 set). The inverted encoding keeps
/// never-touched memory — shadow value 0 — *defined*, so only heap memory
/// between `malloc` and first initialization trips the check, mirroring how
/// Memcheck treats non-heap memory it has no allocation information for.
pub const UNDEFINED: u8 = 0b01;

/// Analysis-wide shared state.
#[derive(Debug)]
pub struct MemShared {
    /// 2-bit-per-byte definedness shadow (bit 0: undefined).
    pub state: ShadowMemory,
}

impl MemShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(MemShared {
            state: ShadowMemory::new(2),
        }))
    }
}

/// One lifeguard thread of the parallel MEMCHECK.
#[derive(Debug)]
pub struct MemCheck {
    shared: Rc<RefCell<MemShared>>,
    regs: [u8; NUM_REGS],
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl MemCheck {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<MemShared>>, tid: ThreadId) -> Self {
        // §4.1: MEMCHECK requires IT flushes on high-level events; the CA
        // policy requests flush_it on both malloc and free.
        let flush = CaActions {
            flush_it: true,
            flush_if: false,
            flush_mtlb: true,
            barrier: true,
            track_range: false,
        };
        MemCheck {
            shared,
            regs: [0; NUM_REGS],
            tid,
            spec: LifeguardSpec {
                name: "MemCheck",
                view: EventView::Dataflow,
                uses_it: true,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: CaPolicy::new()
                    .on(HighLevelKind::Malloc, CaPhase::End, flush)
                    .on(HighLevelKind::Free, CaPhase::Begin, flush),
                bits_per_byte: 2,
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }

    /// Definedness of a register (test/diagnostic aid).
    pub fn reg_state(&self, reg: usize) -> u8 {
        self.regs[reg]
    }

    fn mem_state(&self, src: MemRef, ctx: &mut HandlerCtx) -> u8 {
        let shared = self.shared.borrow();
        ctx.touch_read(shared.state.meta_footprint(src.addr, src.size as u64));
        ctx.join_shadow(&shared.state, src.range())
    }

    fn set_mem_state(&self, dst: MemRef, value: u8, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        ctx.touch_write(shared.state.meta_footprint(dst.addr, dst.size as u64));
        shared.state.set_range(dst.range(), value);
    }
}

impl Lifeguard for MemCheck {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        match *op {
            MetaOp::MemToReg { dst, src } => {
                self.regs[dst.index()] = self.mem_state(src, ctx);
            }
            MetaOp::RegToMem { dst, src } => {
                self.set_mem_state(dst, self.regs[src.index()], ctx);
            }
            MetaOp::RegToReg { dst, src } => {
                self.regs[dst.index()] = self.regs[src.index()];
            }
            MetaOp::ImmToReg { dst } => {
                self.regs[dst.index()] = 0; // immediates are defined
            }
            MetaOp::ImmToMem { dst } => {
                self.set_mem_state(dst, 0, ctx);
            }
            MetaOp::MemToMem { dst, src } => {
                let v = self.mem_state(src, ctx);
                self.set_mem_state(dst, v, ctx);
            }
            MetaOp::AluRR { dst, a, b } => {
                let mut v = self.regs[a.index()];
                if let Some(b) = b {
                    v |= self.regs[b.index()];
                }
                self.regs[dst.index()] = v;
            }
            MetaOp::AluRM { dst, a, src } => {
                self.regs[dst.index()] = self.regs[a.index()] | self.mem_state(src, ctx);
            }
            MetaOp::CheckJmp { target } => {
                if self.regs[target.index()] & UNDEFINED != 0 {
                    ctx.report(Violation {
                        tid: self.tid,
                        rid,
                        kind: ViolationKind::UndefinedUse,
                        addr: None,
                    });
                }
            }
            MetaOp::CheckAccess { .. } => {}
            MetaOp::RmwOp { mem, reg } => {
                let m = self.mem_state(mem, ctx);
                let r = self.regs[reg.index()];
                self.set_mem_state(mem, r, ctx);
                self.regs[reg.index()] = m;
            }
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                if let Some(range) = ca.range {
                    // Fresh heap memory is undefined until first written.
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.state.meta_footprint(range.start, range.len));
                    shared.state.set_range(range, UNDEFINED);
                }
            }
            (HighLevelKind::Free, CaPhase::Begin) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.state.meta_footprint(range.start, range.len));
                    shared.state.set_range(range, UNDEFINED);
                }
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shared.borrow().state.snapshot(range)
    }

    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        let shared = self.shared.borrow();
        let mut v: Vec<(u64, u8)> = shared.state.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for_each_nonzero(&shared.state, |addr, v| fp.mix(addr, u64::from(v)));
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::Reg;

    fn setup() -> (Rc<RefCell<MemShared>>, MemCheck) {
        let shared = MemShared::new();
        let lg = MemCheck::new(Rc::clone(&shared), ThreadId(0));
        (shared, lg)
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 4)
    }

    fn malloc_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    #[test]
    fn malloc_marks_undefined_store_defines() {
        let (shared, mut lg) = setup();
        let range = AddrRange::new(0x1000, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        assert_eq!(shared.borrow().state.join_range(range), UNDEFINED);
        // Store a defined register into the first word.
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::RegToMem {
                dst: m(0x1000),
                src: r(0),
            },
            Rid(2),
            &mut ctx,
        );
        assert_eq!(
            shared.borrow().state.join_range(AddrRange::new(0x1000, 4)),
            0
        );
        assert_eq!(
            shared.borrow().state.join_range(AddrRange::new(0x1004, 4)),
            UNDEFINED
        );
    }

    #[test]
    fn copying_undefined_is_silent_using_it_reports() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(0x1000, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        // Load undefined memory: silent.
        lg.handle(
            &MetaOp::MemToReg {
                dst: r(0),
                src: m(0x1000),
            },
            Rid(2),
            &mut ctx,
        );
        assert!(ctx.violations.is_empty());
        assert_eq!(lg.reg_state(0), UNDEFINED);
        // Use it as a jump target: violation.
        lg.handle(&MetaOp::CheckJmp { target: r(0) }, Rid(3), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UndefinedUse);
    }

    #[test]
    fn spec_requests_it_flush_on_malloc_and_free() {
        let (_shared, lg) = setup();
        let spec = lg.spec();
        assert!(spec.uses_it);
        assert!(
            spec.ca_policy
                .actions(HighLevelKind::Malloc, CaPhase::End)
                .flush_it
        );
        assert!(
            spec.ca_policy
                .actions(HighLevelKind::Free, CaPhase::Begin)
                .flush_it
        );
    }

    #[test]
    fn immediates_are_defined() {
        let (_shared, mut lg) = setup();
        lg.regs[2] = UNDEFINED;
        lg.handle(
            &MetaOp::ImmToReg { dst: r(2) },
            Rid(1),
            &mut HandlerCtx::new(),
        );
        assert_eq!(lg.reg_state(2), 0);
    }
}
