//! MEMCHECK-style initialized-ness tracking.
//!
//! §4.1 names MEMCHECK as the example of a lifeguard whose Inheritance
//! Tracking state conflicts with *high-level* events: it tracks the
//! propagation of initialized states of memory (like TAINTCHECK, but with
//! the lattice inverted — fresh memory is *undefined* and stores make
//! destinations defined), so a `malloc`/`free` changes metadata wholesale and
//! must flush the IT table via ConflictAlert.
//!
//! Reporting policy follows Memcheck: copying undefined data is fine;
//! *using* it (indirect jump, checked syscall argument) is a violation.

use crate::factory::{ConcurrentLifeguard, DeltaLifeguard, VersionedMeta};
use crate::lifeguard::{
    AtomicityClass, DeltaAccess, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec,
    ShadowAccess, SharedAccess, Violation, ViolationKind,
};
use crate::taintcheck::for_each_nonzero;
use paralog_events::{
    dataflow_view, AddrRange, CaPhase, CaRecord, EventPayload, EventRecord, HighLevelKind, MemRef,
    MetaOp, Rid, ThreadId, NUM_REGS,
};
use paralog_meta::{AtomicShadow, LaneCell, ShadowDelta, ShadowMemory};
use paralog_order::{CaActions, CaPolicy};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

/// Metadata value for "undefined" (bit 0 set). The inverted encoding keeps
/// never-touched memory — shadow value 0 — *defined*, so only heap memory
/// between `malloc` and first initialization trips the check, mirroring how
/// Memcheck treats non-heap memory it has no allocation information for.
pub const UNDEFINED: u8 = 0b01;

/// Analysis-wide shared state.
#[derive(Debug)]
pub struct MemShared {
    /// 2-bit-per-byte definedness shadow (bit 0: undefined).
    pub state: ShadowMemory,
}

impl MemShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(MemShared {
            state: ShadowMemory::new(2),
        }))
    }
}

/// One lifeguard thread of the parallel MEMCHECK.
#[derive(Debug)]
pub struct MemCheck {
    shared: Rc<RefCell<MemShared>>,
    regs: [u8; NUM_REGS],
    tid: ThreadId,
    spec: LifeguardSpec,
}

/// MEMCHECK's ConflictAlert subscriptions, shared by the sequential spec and
/// the concurrent replay form (the backends derive §5.4 gating and range
/// tracking from it, so the two must never drift apart). §4.1: MEMCHECK
/// requires IT flushes on high-level events; the policy requests `flush_it`
/// (with the conservative barrier) on both malloc and free.
fn memcheck_ca_policy() -> CaPolicy {
    let flush = CaActions {
        flush_it: true,
        flush_if: false,
        flush_mtlb: true,
        barrier: true,
        track_range: false,
    };
    CaPolicy::new()
        .on(HighLevelKind::Malloc, CaPhase::End, flush)
        .on(HighLevelKind::Free, CaPhase::Begin, flush)
}

impl MemCheck {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<MemShared>>, tid: ThreadId) -> Self {
        MemCheck {
            shared,
            regs: [0; NUM_REGS],
            tid,
            spec: LifeguardSpec {
                name: "MemCheck",
                view: EventView::Dataflow,
                uses_it: true,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: memcheck_ca_policy(),
                bits_per_byte: 2,
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }

    /// Definedness of a register (test/diagnostic aid).
    pub fn reg_state(&self, reg: usize) -> u8 {
        self.regs[reg]
    }

    fn mem_state(&self, src: MemRef, ctx: &mut HandlerCtx) -> u8 {
        let shared = self.shared.borrow();
        ctx.touch_read(shared.state.meta_footprint(src.addr, src.size as u64));
        ctx.join_shadow(&shared.state, src.range())
    }

    fn set_mem_state(&self, dst: MemRef, value: u8, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        ctx.touch_write(shared.state.meta_footprint(dst.addr, dst.size as u64));
        shared.state.set_range(dst.range(), value);
    }
}

impl Lifeguard for MemCheck {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        match *op {
            MetaOp::MemToReg { dst, src } => {
                self.regs[dst.index()] = self.mem_state(src, ctx);
            }
            MetaOp::RegToMem { dst, src } => {
                self.set_mem_state(dst, self.regs[src.index()], ctx);
            }
            MetaOp::RegToReg { dst, src } => {
                self.regs[dst.index()] = self.regs[src.index()];
            }
            MetaOp::ImmToReg { dst } => {
                self.regs[dst.index()] = 0; // immediates are defined
            }
            MetaOp::ImmToMem { dst } => {
                self.set_mem_state(dst, 0, ctx);
            }
            MetaOp::MemToMem { dst, src } => {
                let v = self.mem_state(src, ctx);
                self.set_mem_state(dst, v, ctx);
            }
            MetaOp::AluRR { dst, a, b } => {
                let mut v = self.regs[a.index()];
                if let Some(b) = b {
                    v |= self.regs[b.index()];
                }
                self.regs[dst.index()] = v;
            }
            MetaOp::AluRM { dst, a, src } => {
                self.regs[dst.index()] = self.regs[a.index()] | self.mem_state(src, ctx);
            }
            MetaOp::CheckJmp { target } => {
                if self.regs[target.index()] & UNDEFINED != 0 {
                    ctx.report(Violation {
                        tid: self.tid,
                        rid,
                        kind: ViolationKind::UndefinedUse,
                        addr: None,
                    });
                }
            }
            MetaOp::CheckAccess { .. } => {}
            MetaOp::RmwOp { mem, reg } => {
                let m = self.mem_state(mem, ctx);
                let r = self.regs[reg.index()];
                self.set_mem_state(mem, r, ctx);
                self.regs[reg.index()] = m;
            }
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                if let Some(range) = ca.range {
                    // Fresh heap memory is undefined until first written.
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.state.meta_footprint(range.start, range.len));
                    shared.state.set_range(range, UNDEFINED);
                }
            }
            (HighLevelKind::Free, CaPhase::Begin) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.state.meta_footprint(range.start, range.len));
                    shared.state.set_range(range, UNDEFINED);
                }
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shared.borrow().state.snapshot(range)
    }

    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        let shared = self.shared.borrow();
        let mut v: Vec<(u64, u8)> = shared.state.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for_each_nonzero(&shared.state, |addr, v| fp.mix(addr, u64::from(v)));
        fp.finish()
    }
}

/// The `Send + Sync` replay form of MEMCHECK driven by the real-thread
/// backend: the §5.3 **fast-path/slow-path split** made concrete.
///
/// The common case — dataflow propagation of definedness through loads,
/// stores and ALU ops — runs synchronization-free over a lock-free
/// [`AtomicShadow`] (application reads map to metadata reads, writes to
/// writes, and the enforced arcs carry the release/acquire edges), exactly
/// like [`TaintConcurrent`](crate::TaintConcurrent) with the lattice
/// inverted. The rare structural events — `malloc`/`free` ConflictAlerts
/// rewriting whole allocations to [`UNDEFINED`] — take a mutex-guarded slow
/// path so two issuers' wholesale updates never interleave mid-range; the
/// CA barrier arcs already order every *access* against them, so the check
/// path never needs that lock. Register definedness is thread-private, so
/// each worker's slot is uncontended.
pub struct MemCheckConcurrent {
    /// 2-bit-per-byte definedness shadow (bit 0: undefined), lock-free.
    state: AtomicShadow,
    /// Per-worker register definedness (thread-private; uncontended locks).
    regs: Vec<Mutex<[u8; NUM_REGS]>>,
    /// Per-worker private overlays for delta-merge replay; untouched (and
    /// empty) when the backend drives CAS-per-access. Single-owner by the
    /// delta-merge protocol (worker `tid` ↔ slot `tid`), hence a
    /// [`LaneCell`] rather than per-record locked RMWs.
    deltas: Vec<LaneCell<ShadowDelta>>,
    /// §5.3 slow path: serializes the rare wholesale metadata rewrites
    /// (malloc/free ConflictAlerts) against each other.
    structural: Mutex<()>,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for MemCheckConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The atomic shadow is a multi-megabyte chunk index; a compact
        // summary beats the derived dump.
        f.debug_struct("MemCheckConcurrent")
            .field("threads", &self.regs.len())
            .finish_non_exhaustive()
    }
}

impl MemCheckConcurrent {
    /// A fresh concurrent MEMCHECK for `threads` replayed streams. The
    /// atomic shadow grows lazily as events arrive, so streams may be
    /// ingested incrementally — no footprint pre-scan.
    pub fn new(threads: usize) -> Self {
        MemCheckConcurrent {
            state: AtomicShadow::new(),
            regs: (0..threads).map(|_| Mutex::new([0; NUM_REGS])).collect(),
            deltas: (0..threads)
                .map(|_| LaneCell::new(ShadowDelta::new()))
                .collect(),
            structural: Mutex::new(()),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// One propagation implementation serves both replay modes through the
    /// [`ShadowAccess`] seam — see
    /// [`TaintConcurrent::apply_op`](crate::TaintConcurrent); the lattice is
    /// inverted but the routing is identical.
    fn apply_op(
        &self,
        op: MetaOp,
        regs: &mut [u8; NUM_REGS],
        mem_meta: &mut impl ShadowAccess,
        tid: ThreadId,
        rid: Rid,
        versioned: Option<&VersionedMeta>,
    ) {
        match op {
            MetaOp::MemToReg { dst, src } => {
                regs[dst.index()] = mem_meta.join(src.range(), versioned);
            }
            MetaOp::RegToMem { dst, src } => mem_meta.fill(dst.range(), regs[src.index()]),
            MetaOp::RegToReg { dst, src } => regs[dst.index()] = regs[src.index()],
            MetaOp::ImmToReg { dst } => regs[dst.index()] = 0, // immediates are defined
            MetaOp::ImmToMem { dst } => mem_meta.fill(dst.range(), 0),
            MetaOp::MemToMem { dst, src } => {
                let v = mem_meta.join(src.range(), versioned);
                mem_meta.fill(dst.range(), v);
            }
            MetaOp::AluRR { dst, a, b } => {
                regs[dst.index()] = regs[a.index()] | b.map(|b| regs[b.index()]).unwrap_or(0);
            }
            MetaOp::AluRM { dst, a, src } => {
                regs[dst.index()] = regs[a.index()] | mem_meta.join(src.range(), versioned);
            }
            MetaOp::CheckJmp { target } => {
                if regs[target.index()] & UNDEFINED != 0 {
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid,
                        kind: ViolationKind::UndefinedUse,
                        addr: None,
                    });
                }
            }
            MetaOp::CheckAccess { .. } => {}
            MetaOp::RmwOp { mem, reg } => {
                let m = mem_meta.join(mem.range(), versioned);
                mem_meta.fill(mem.range(), regs[reg.index()]);
                regs[reg.index()] = m;
            }
        }
    }
}

impl ConcurrentLifeguard for MemCheckConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                if let Some(op) = dataflow_view(instr) {
                    let mut regs = self.regs[tid.index()].lock().expect("poisoned");
                    let mut mem_meta = SharedAccess(&self.state);
                    self.apply_op(op, &mut regs, &mut mem_meta, tid, rec.rid, versioned);
                }
            }
            EventPayload::Ca(ca) => {
                // Only the issuer updates metadata (remote copies order).
                if ca.issuer != tid {
                    return;
                }
                match (ca.what, ca.phase, ca.range) {
                    // Fresh heap memory is undefined until first written;
                    // freed memory immediately reverts to undefined. The
                    // wholesale rewrite is the §5.3 slow path: serialized so
                    // two issuers' structural updates never interleave.
                    (HighLevelKind::Malloc, CaPhase::End, Some(range))
                    | (HighLevelKind::Free, CaPhase::Begin, Some(range)) => {
                        let _slow = self.structural.lock().expect("poisoned");
                        self.state.fill_range(range.start, range.len, UNDEFINED);
                    }
                    _ => {}
                }
            }
        }
    }

    fn ca_policy(&self) -> CaPolicy {
        memcheck_ca_policy()
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.state.snapshot(range.start, range.len)
    }

    fn fingerprint(&self) -> u64 {
        self.state.fingerprint()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }
}

impl DeltaLifeguard for MemCheckConcurrent {
    fn apply_delta(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                if let Some(op) = dataflow_view(instr) {
                    let mut regs = self.regs[tid.index()].lock().expect("poisoned");
                    // SAFETY: delta-merge single-owner protocol — only
                    // thread `tid`'s replay worker reaches slot `tid`, and
                    // lane hand-off is ordered by the backend.
                    unsafe {
                        self.deltas[tid.index()].with(|delta| {
                            let mut mem_meta = DeltaAccess {
                                delta,
                                shadow: &self.state,
                            };
                            self.apply_op(op, &mut regs, &mut mem_meta, tid, rec.rid, versioned);
                        });
                    }
                }
            }
            EventPayload::Ca(_) => {
                // CA records are ordering events for every peer: publish the
                // pending overlay, then take the one shared-path
                // implementation (issuer-only update behind the structural
                // mutex).
                self.flush_delta(tid);
                self.apply(tid, rec, versioned);
            }
        }
    }

    fn flush_delta(&self, tid: ThreadId) {
        // SAFETY: same single-owner contract as `apply_delta` — flush
        // points are executed by the worker that owns lane `tid`.
        unsafe {
            self.deltas[tid.index()].with(|delta| {
                if !delta.is_empty() {
                    delta.flush_into(&self.state);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::Reg;

    fn setup() -> (Rc<RefCell<MemShared>>, MemCheck) {
        let shared = MemShared::new();
        let lg = MemCheck::new(Rc::clone(&shared), ThreadId(0));
        (shared, lg)
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 4)
    }

    fn malloc_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    #[test]
    fn malloc_marks_undefined_store_defines() {
        let (shared, mut lg) = setup();
        let range = AddrRange::new(0x1000, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        assert_eq!(shared.borrow().state.join_range(range), UNDEFINED);
        // Store a defined register into the first word.
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::RegToMem {
                dst: m(0x1000),
                src: r(0),
            },
            Rid(2),
            &mut ctx,
        );
        assert_eq!(
            shared.borrow().state.join_range(AddrRange::new(0x1000, 4)),
            0
        );
        assert_eq!(
            shared.borrow().state.join_range(AddrRange::new(0x1004, 4)),
            UNDEFINED
        );
    }

    #[test]
    fn copying_undefined_is_silent_using_it_reports() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(0x1000, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        // Load undefined memory: silent.
        lg.handle(
            &MetaOp::MemToReg {
                dst: r(0),
                src: m(0x1000),
            },
            Rid(2),
            &mut ctx,
        );
        assert!(ctx.violations.is_empty());
        assert_eq!(lg.reg_state(0), UNDEFINED);
        // Use it as a jump target: violation.
        lg.handle(&MetaOp::CheckJmp { target: r(0) }, Rid(3), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UndefinedUse);
    }

    #[test]
    fn spec_requests_it_flush_on_malloc_and_free() {
        let (_shared, lg) = setup();
        let spec = lg.spec();
        assert!(spec.uses_it);
        assert!(
            spec.ca_policy
                .actions(HighLevelKind::Malloc, CaPhase::End)
                .flush_it
        );
        assert!(
            spec.ca_policy
                .actions(HighLevelKind::Free, CaPhase::Begin)
                .flush_it
        );
    }

    #[test]
    fn immediates_are_defined() {
        let (_shared, mut lg) = setup();
        lg.regs[2] = UNDEFINED;
        lg.handle(
            &MetaOp::ImmToReg { dst: r(2) },
            Rid(1),
            &mut HandlerCtx::new(),
        );
        assert_eq!(lg.reg_state(2), 0);
    }

    #[test]
    fn concurrent_form_matches_sequential_lattice() {
        use paralog_events::Instr;
        let conc = MemCheckConcurrent::new(2);
        let (shared, mut seq) = setup();
        let range = AddrRange::new(0x1000, 16);
        // Malloc marks undefined on both forms (issuer's copy only).
        let ca = EventRecord::ca(Rid(1), malloc_ca(range));
        conc.apply(ThreadId(0), &ca, None);
        conc.apply(ThreadId(1), &ca, None); // remote copy: no update
        seq.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        assert_eq!(conc.fingerprint(), seq.fingerprint(), "post-malloc state");
        // Load undefined memory: silent on both; using it as a jump target
        // reports on both.
        let load = EventRecord::instr(
            Rid(2),
            Instr::Load {
                dst: r(0),
                src: m(0x1000),
            },
        );
        conc.apply(ThreadId(0), &load, None);
        assert!(conc.violations().is_empty(), "copying undefined is silent");
        let jmp = EventRecord::instr(Rid(3), Instr::JmpReg { target: r(0) });
        conc.apply(ThreadId(0), &jmp, None);
        assert_eq!(conc.violations().len(), 1);
        assert_eq!(conc.violations()[0].kind, ViolationKind::UndefinedUse);
        // A defined store then re-synchronizes the shadows.
        let store = EventRecord::instr(
            Rid(4),
            Instr::Store {
                dst: m(0x1000),
                src: r(1),
            },
        );
        conc.apply(ThreadId(1), &store, None);
        let mut ctx = HandlerCtx::new();
        seq.handle(
            &MetaOp::RegToMem {
                dst: m(0x1000),
                src: r(1),
            },
            Rid(4),
            &mut ctx,
        );
        assert_eq!(conc.fingerprint(), seq.fingerprint(), "post-store state");
        let _ = shared;
    }

    #[test]
    fn concurrent_reads_honor_versioned_snapshots() {
        use paralog_events::Instr;
        let conc = MemCheckConcurrent::new(1);
        // Live shadow: defined. §5.5 snapshot: the producer's pre-store
        // (undefined) bytes must win, and the undefinedness must flow to
        // the register.
        let load = EventRecord::instr(
            Rid(1),
            Instr::Load {
                dst: r(0),
                src: m(0x100),
            },
        );
        let versioned = (AddrRange::new(0x100, 4), vec![UNDEFINED; 4]);
        conc.apply(ThreadId(0), &load, Some(&versioned));
        let jmp = EventRecord::instr(Rid(2), Instr::JmpReg { target: r(0) });
        conc.apply(ThreadId(0), &jmp, None);
        assert_eq!(conc.violations().len(), 1, "versioned undefinedness flows");
    }

    #[test]
    fn concurrent_policy_matches_sequential_spec() {
        let (_shared, seq) = setup();
        let conc = MemCheckConcurrent::new(1);
        for (what, phase) in [
            (HighLevelKind::Malloc, CaPhase::End),
            (HighLevelKind::Free, CaPhase::Begin),
        ] {
            assert_eq!(
                conc.ca_policy().actions(what, phase),
                seq.spec().ca_policy.actions(what, phase),
                "CA policy drift between sequential and concurrent MEMCHECK"
            );
        }
    }
}
