//! The word-metadata delta seam: one generic adapter that gives any
//! word-granular lifeguard its delta-merge form.
//!
//! Byte-shadow analyses already share a seam — handlers are generic over
//! `ShadowAccess`, and the delta form is
//! the same handler over a `DeltaAccess` overlay. Word-metadata analyses
//! (LockSet's packed Eraser words, HappensBefore's packed epochs) used to
//! hand-roll the other half of that story: the per-lane
//! [`WordDelta`] buffering, the single-owner `LaneCell` choreography, the
//! flush-at-CA discipline. This module extracts it.
//!
//! An analysis implements [`WordAnalysis`] — how to open a per-granule
//! buffered window, fold one access into it, and publish it — and gets
//! [`DeltaLifeguard`](crate::DeltaLifeguard) mechanics for free through
//! [`apply_delta_via_overlay`] / [`flush_delta_via_overlay`] (two
//! one-line trait-impl delegations; no per-analysis buffering code).
//!
//! The delta-merge correctness argument is the analysis' own: within one
//! unflushed window the owner is the only writer of its buffered granules
//! (conflicting cross-thread accesses are arc-ordered, and the arc forces a
//! flush first), so eager private transitions plus a CAS publish at flush
//! points reproduce the CAS-per-access linearization. The adapter only
//! guarantees the mechanics: windows are lane-private, opened on first
//! touch, folded in stream order, drained in ascending key order at every
//! flush point, and flushed before any CA record is applied.

use crate::factory::{ConcurrentLifeguard, VersionedMeta};
use paralog_events::{check_view, AccessKind, EventPayload, EventRecord, MemRef, MetaOp, ThreadId};
use paralog_meta::{LaneCell, WordDelta};

/// Per-lane private overlays for a word-metadata analysis: one
/// [`WordDelta`] window set per replayed stream, behind the same
/// single-owner [`LaneCell`] contract the backends enforce for
/// [`DeltaLifeguard`](crate::DeltaLifeguard) lanes.
#[derive(Debug)]
pub struct WordOverlay<W> {
    lanes: Vec<LaneCell<WordDelta<W>>>,
}

impl<W: Send> WordOverlay<W> {
    /// Empty overlays for `threads` replayed streams.
    pub fn new(threads: usize) -> Self {
        WordOverlay {
            lanes: (0..threads)
                .map(|_| LaneCell::new(WordDelta::new()))
                .collect(),
        }
    }

    /// Runs `f` on lane `tid`'s window set.
    ///
    /// # Safety
    ///
    /// Delta-merge single-owner protocol: only the worker owning stream
    /// `tid` may call this, and lane hand-off must be ordered by the
    /// backend (the same contract as [`LaneCell::with`]).
    unsafe fn with<R>(&self, tid: ThreadId, f: impl FnOnce(&mut WordDelta<W>) -> R) -> R {
        self.lanes[tid.index()].with(f)
    }
}

/// What a word-granular analysis contributes to its delta-merge form; the
/// adapter functions below contribute everything else.
///
/// The flow per buffered granule: [`open_window`](Self::open_window) on
/// first touch in a flush window (typically snapshotting the shared word as
/// the CAS expectation), [`fold_access`](Self::fold_access) per access (the
/// same transition function the CAS-per-access form uses, applied to the
/// private window — sharing that function is what makes the modes agree by
/// construction), [`publish_window`](Self::publish_window) at the flush
/// point (the analysis owns its CAS, reference transfer, and report
/// arbitration).
pub trait WordAnalysis: ConcurrentLifeguard {
    /// One granule's buffered state between flushes.
    type Window: std::fmt::Debug + Send;

    /// The analysis' overlay storage (one field, constructed with the
    /// analysis at its thread count).
    fn overlay(&self) -> &WordOverlay<Self::Window>;

    /// The inclusive granule-key range a memory access buffers under, or
    /// `None` when the access is outside the analysis' tracked space.
    fn window_keys(&self, mem: MemRef, kind: AccessKind) -> Option<(u64, u64)>;

    /// Opens the buffered window for `key` on first touch in a flush
    /// window.
    fn open_window(&self, key: u64) -> Self::Window;

    /// Folds one access into `key`'s window, in stream order.
    fn fold_access(
        &self,
        window: &mut Self::Window,
        key: u64,
        kind: AccessKind,
        tid: ThreadId,
        rec: &EventRecord,
    );

    /// Publishes one drained window into the shared metadata.
    fn publish_window(&self, key: u64, window: Self::Window, tid: ThreadId);
}

/// Generic [`apply_delta`](crate::DeltaLifeguard::apply_delta) body:
/// buffers instruction accesses into lane `tid`'s windows; CA records
/// flush first (they ride ordered points) and then take the analysis'
/// shared-path [`apply`](ConcurrentLifeguard::apply).
pub fn apply_delta_via_overlay<A: WordAnalysis>(
    analysis: &A,
    tid: ThreadId,
    rec: &EventRecord,
    versioned: Option<&VersionedMeta>,
) {
    match &rec.payload {
        EventPayload::Instr(instr) => {
            let Some(MetaOp::CheckAccess { mem, kind }) = check_view(instr) else {
                return;
            };
            let Some((first, last)) = analysis.window_keys(mem, kind) else {
                return;
            };
            // SAFETY: the backend applies records of stream `tid` only on
            // the worker owning lane `tid` (the DeltaLifeguard contract).
            unsafe {
                analysis.overlay().with(tid, |delta| {
                    for key in first..=last {
                        let window = delta.get_or_insert_with(key, || analysis.open_window(key));
                        analysis.fold_access(window, key, kind, tid, rec);
                    }
                });
            }
        }
        EventPayload::Ca(_) => {
            flush_delta_via_overlay(analysis, tid);
            ConcurrentLifeguard::apply(analysis, tid, rec, versioned);
        }
    }
}

/// Generic [`flush_delta`](crate::DeltaLifeguard::flush_delta) body:
/// drains lane `tid`'s windows in ascending key order and publishes each.
pub fn flush_delta_via_overlay<A: WordAnalysis>(analysis: &A, tid: ThreadId) {
    // SAFETY: flush points are executed by the worker owning lane `tid`
    // (the DeltaLifeguard contract).
    unsafe {
        analysis.overlay().with(tid, |delta| {
            if delta.is_empty() {
                return;
            }
            for (key, window) in delta.drain() {
                analysis.publish_window(key, window, tid);
            }
        });
    }
}
