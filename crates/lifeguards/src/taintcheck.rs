//! TAINTCHECK: dynamic taint analysis (Newsome & Song), the paper's primary
//! lifeguard.
//!
//! Maintains 2 metadata bits per application byte (§6: sized so the frequent
//! word-sized cases cost one metadata byte/word access) plus per-register
//! taint. Unverified input — `read()`-style system calls — taints its buffer;
//! taint propagates through dataflow; using tainted data as an indirect jump
//! target or a checked syscall argument is a violation.
//!
//! TAINTCHECK maps application reads to metadata reads and writes to writes
//! (§5.3 condition 2 holds), so the enforced dependence arcs alone make its
//! metadata accesses atomic — no locks anywhere ([`AtomicityClass::SyncFree`]).

use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use paralog_events::{
    AddrRange, CaPhase, CaRecord, HighLevelKind, MemRef, MetaOp, Rid, SyscallKind, ThreadId,
    NUM_REGS,
};
use paralog_meta::{AtomicShadow, LaneCell, ShadowDelta, ShadowMemory};
use paralog_order::{CaPolicy, RangeEntry};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

/// Taint lattice value for "tainted" (bit 0 of the 2-bit metadata).
pub const TAINTED: u8 = 0b01;

/// Analysis-wide shared state: the global taint shadow of Figure 2.
#[derive(Debug)]
pub struct TaintShared {
    /// 2-bit-per-byte taint shadow.
    pub mem: ShadowMemory,
}

impl TaintShared {
    /// Fresh, fully-untainted state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(TaintShared {
            mem: ShadowMemory::new(2),
        }))
    }
}

/// One lifeguard thread of the parallel TAINTCHECK.
#[derive(Debug)]
pub struct TaintCheck {
    shared: Rc<RefCell<TaintShared>>,
    /// Taint of the monitored thread's registers (thread-private metadata).
    regs: [u8; NUM_REGS],
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl TaintCheck {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<TaintShared>>, tid: ThreadId) -> Self {
        TaintCheck {
            shared,
            regs: [0; NUM_REGS],
            tid,
            spec: LifeguardSpec {
                name: "TaintCheck",
                view: EventView::Dataflow,
                uses_it: true,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: CaPolicy::taintcheck(),
                bits_per_byte: 2,
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }

    /// Current taint of a register (test/diagnostic aid).
    pub fn reg_taint(&self, reg: usize) -> u8 {
        self.regs[reg]
    }

    fn mem_taint(&self, src: MemRef, ctx: &mut HandlerCtx) -> u8 {
        // TSO: versioned bytes read the snapshot the writer produced;
        // everything else reads the (arc-ordered) current shadow.
        let shared = self.shared.borrow();
        ctx.touch_read(shared.mem.meta_footprint(src.addr, src.size as u64));
        ctx.join_shadow(&shared.mem, src.range())
    }

    fn set_mem_taint(&self, dst: MemRef, value: u8, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        ctx.touch_write(shared.mem.meta_footprint(dst.addr, dst.size as u64));
        shared.mem.set_range(dst.range(), value);
    }
}

impl Lifeguard for TaintCheck {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        match *op {
            MetaOp::MemToReg { dst, src } => {
                self.regs[dst.index()] = self.mem_taint(src, ctx);
            }
            MetaOp::RegToMem { dst, src } => {
                self.set_mem_taint(dst, self.regs[src.index()], ctx);
            }
            MetaOp::RegToReg { dst, src } => {
                self.regs[dst.index()] = self.regs[src.index()];
            }
            MetaOp::ImmToReg { dst } => {
                self.regs[dst.index()] = 0;
            }
            MetaOp::ImmToMem { dst } => {
                self.set_mem_taint(dst, 0, ctx);
            }
            MetaOp::MemToMem { dst, src } => {
                // The coalesced IT event: copy metadata memory-to-memory.
                let v = self.mem_taint(src, ctx);
                self.set_mem_taint(dst, v, ctx);
            }
            MetaOp::AluRR { dst, a, b } => {
                let mut v = self.regs[a.index()];
                if let Some(b) = b {
                    v |= self.regs[b.index()];
                }
                self.regs[dst.index()] = v;
            }
            MetaOp::AluRM { dst, a, src } => {
                self.regs[dst.index()] = self.regs[a.index()] | self.mem_taint(src, ctx);
            }
            MetaOp::CheckJmp { target } => {
                if self.regs[target.index()] & TAINTED != 0 {
                    ctx.report(Violation {
                        tid: self.tid,
                        rid,
                        kind: ViolationKind::TaintedJump,
                        addr: None,
                    });
                }
            }
            MetaOp::CheckAccess { .. } => {
                // Not part of the dataflow view; nothing to do.
            }
            MetaOp::RmwOp { mem, reg } => {
                // xchg: taint swaps between register and memory.
                let mem_v = self.mem_taint(mem, ctx);
                let reg_v = self.regs[reg.index()];
                self.set_mem_taint(mem, reg_v, ctx);
                self.regs[reg.index()] = mem_v;
            }
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, rid: Rid, ctx: &mut HandlerCtx) {
        if !own {
            // Remote CA records only order/flush; the issuer updates metadata.
            return;
        }
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                if let Some(range) = ca.range {
                    // Fresh allocations are untainted.
                    self.set_range_taint(range, 0, ctx);
                }
            }
            (HighLevelKind::Syscall(SyscallKind::ReadInput), CaPhase::End) => {
                if let Some(range) = ca.range {
                    // Unverified input: taint the whole buffer (§2).
                    self.set_range_taint(range, TAINTED, ctx);
                }
            }
            (HighLevelKind::Syscall(SyscallKind::WriteOutput), CaPhase::Begin) => {
                if let Some(range) = ca.range {
                    let shared = self.shared.borrow();
                    ctx.touch_read(shared.mem.meta_footprint(range.start, range.len));
                    if shared.mem.join_range(range) & TAINTED != 0 {
                        ctx.report(Violation {
                            tid: self.tid,
                            rid,
                            kind: ViolationKind::TaintedSyscallArg,
                            addr: Some(range.start),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shared.borrow().mem.snapshot(range)
    }

    fn on_syscall_race(
        &mut self,
        access: AddrRange,
        _entry: &RangeEntry,
        rid: Rid,
        ctx: &mut HandlerCtx,
    ) {
        // §5.4: an access concurrent with a read() syscall is resolved
        // conservatively — taint the destination and warn.
        ctx.report(Violation {
            tid: self.tid,
            rid,
            kind: ViolationKind::SyscallRace,
            addr: Some(access.start),
        });
        let mut shared = self.shared.borrow_mut();
        shared.mem.set_range(access, TAINTED);
    }

    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        let shared = self.shared.borrow();
        let mut v: Vec<(u64, u8)> = shared.mem.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        // Mix every non-clean metadata byte; order-insensitive.
        for_each_nonzero(&shared.mem, |addr, v| fp.mix(addr, u64::from(v)));
        fp.finish()
    }
}

impl TaintCheck {
    fn set_range_taint(&self, range: AddrRange, value: u8, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        ctx.touch_write(shared.mem.meta_footprint(range.start, range.len));
        shared.mem.set_range(range, value);
    }
}

/// The `Send + Sync` replay form of TAINTCHECK driven by the real-thread
/// backend: the same analysis over a lock-free [`AtomicShadow`], valid
/// because TaintCheck is in the §5.3 synchronization-free class (application
/// reads map to metadata reads; the enforced arcs carry the release/acquire
/// edges). Register taint is thread-private, so each worker's slot is
/// uncontended.
pub struct TaintConcurrent {
    shadow: AtomicShadow,
    regs: Vec<Mutex<[u8; NUM_REGS]>>,
    /// Per-worker private overlays for delta-merge replay; untouched (and
    /// empty) when the backend drives CAS-per-access. Single-owner by the
    /// delta-merge protocol: only worker `tid` touches slot `tid`, so the
    /// slot is a [`LaneCell`], not a mutex — the hot path cannot afford
    /// locked RMWs per record.
    deltas: Vec<LaneCell<ShadowDelta>>,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for TaintConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The atomic shadow is a multi-megabyte chunk index; a compact
        // summary beats the derived dump.
        f.debug_struct("TaintConcurrent")
            .field("threads", &self.regs.len())
            .finish_non_exhaustive()
    }
}

impl TaintConcurrent {
    /// A fresh concurrent TaintCheck for `threads` replayed streams. The
    /// atomic shadow grows lazily as events arrive, so streams may be
    /// ingested incrementally — no footprint pre-scan.
    pub fn new(threads: usize) -> Self {
        TaintConcurrent {
            shadow: AtomicShadow::new(),
            regs: (0..threads).map(|_| Mutex::new([0; NUM_REGS])).collect(),
            deltas: (0..threads)
                .map(|_| LaneCell::new(ShadowDelta::new()))
                .collect(),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// One propagation implementation serves both replay modes: the
    /// [`ShadowAccess`](crate::lifeguard::ShadowAccess) seam decides whether
    /// a touch hits the shared shadow directly (CAS-per-access) or the
    /// worker's private overlay (delta-merge). Reads honor an injected §5.5
    /// versioned snapshot through the seam's join rule.
    fn apply_op(
        &self,
        op: MetaOp,
        regs: &mut [u8; NUM_REGS],
        mem_meta: &mut impl crate::lifeguard::ShadowAccess,
        tid: ThreadId,
        rid: Rid,
        versioned: Option<&crate::factory::VersionedMeta>,
    ) {
        match op {
            MetaOp::MemToReg { dst, src } => {
                regs[dst.index()] = mem_meta.join(src.range(), versioned);
            }
            MetaOp::RegToMem { dst, src } => mem_meta.fill(dst.range(), regs[src.index()]),
            MetaOp::RegToReg { dst, src } => regs[dst.index()] = regs[src.index()],
            MetaOp::ImmToReg { dst } => regs[dst.index()] = 0,
            MetaOp::ImmToMem { dst } => mem_meta.fill(dst.range(), 0),
            MetaOp::MemToMem { dst, src } => {
                let v = mem_meta.join(src.range(), versioned);
                mem_meta.fill(dst.range(), v);
            }
            MetaOp::AluRR { dst, a, b } => {
                regs[dst.index()] = regs[a.index()] | b.map(|b| regs[b.index()]).unwrap_or(0);
            }
            MetaOp::AluRM { dst, a, src } => {
                regs[dst.index()] = regs[a.index()] | mem_meta.join(src.range(), versioned);
            }
            MetaOp::CheckJmp { target } => {
                if regs[target.index()] & TAINTED != 0 {
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid,
                        kind: ViolationKind::TaintedJump,
                        addr: None,
                    });
                }
            }
            MetaOp::CheckAccess { .. } => {}
            MetaOp::RmwOp { mem, reg } => {
                let m = mem_meta.join(mem.range(), versioned);
                mem_meta.fill(mem.range(), regs[reg.index()]);
                regs[reg.index()] = m;
            }
        }
    }

    fn apply_ca(&self, ca: &CaRecord, tid: ThreadId, rid: Rid) {
        let Some(range) = ca.range else { return };
        // Ranges can exceed MemRef's 255-byte width; fill them directly.
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                self.shadow.fill_range(range.start, range.len, 0);
            }
            (HighLevelKind::Syscall(SyscallKind::ReadInput), CaPhase::End) => {
                self.shadow.fill_range(range.start, range.len, TAINTED);
            }
            (HighLevelKind::Syscall(SyscallKind::WriteOutput), CaPhase::Begin)
                if self.shadow.join_range(range.start, range.len) & TAINTED != 0 =>
            {
                self.violations.lock().expect("poisoned").push(Violation {
                    tid,
                    rid,
                    kind: ViolationKind::TaintedSyscallArg,
                    addr: Some(range.start),
                });
            }
            _ => {}
        }
    }
}

impl crate::factory::ConcurrentLifeguard for TaintConcurrent {
    fn ca_policy(&self) -> CaPolicy {
        CaPolicy::taintcheck()
    }

    fn on_syscall_race(&self, tid: ThreadId, access: AddrRange, _entry: &RangeEntry, rid: Rid) {
        // §5.4: an access concurrent with a read() syscall is resolved
        // conservatively — taint the destination and warn (the concurrent
        // mirror of the sequential handler above). Any buffered delta writes
        // must land *before* the conservative fill: a stale pending byte
        // flushed later would overwrite the TAINTED repair.
        crate::factory::DeltaLifeguard::flush_delta(self, tid);
        self.violations.lock().expect("poisoned").push(Violation {
            tid,
            rid,
            kind: ViolationKind::SyscallRace,
            addr: Some(access.start),
        });
        self.shadow.fill_range(access.start, access.len, TAINTED);
    }

    fn apply(
        &self,
        tid: ThreadId,
        rec: &paralog_events::EventRecord,
        versioned: Option<&crate::factory::VersionedMeta>,
    ) {
        match &rec.payload {
            paralog_events::EventPayload::Instr(instr) => {
                if let Some(op) = paralog_events::dataflow_view(instr) {
                    let mut regs = self.regs[tid.index()].lock().expect("poisoned");
                    let mut mem_meta = crate::lifeguard::SharedAccess(&self.shadow);
                    self.apply_op(op, &mut regs, &mut mem_meta, tid, rec.rid, versioned);
                }
            }
            paralog_events::EventPayload::Ca(ca) => {
                // Only the issuer updates metadata (remote copies order).
                if ca.issuer == tid {
                    self.apply_ca(ca, tid, rec.rid);
                }
            }
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shadow.snapshot(range.start, range.len)
    }

    fn fingerprint(&self) -> u64 {
        self.shadow.fingerprint()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }
}

impl crate::factory::DeltaLifeguard for TaintConcurrent {
    fn apply_delta(
        &self,
        tid: ThreadId,
        rec: &paralog_events::EventRecord,
        versioned: Option<&crate::factory::VersionedMeta>,
    ) {
        match &rec.payload {
            paralog_events::EventPayload::Instr(instr) => {
                if let Some(op) = paralog_events::dataflow_view(instr) {
                    let mut regs = self.regs[tid.index()].lock().expect("poisoned");
                    // SAFETY: delta-merge single-owner protocol — only
                    // thread `tid`'s replay worker reaches slot `tid`, and
                    // lane hand-off is ordered by the backend.
                    unsafe {
                        self.deltas[tid.index()].with(|delta| {
                            let mut mem_meta = crate::lifeguard::DeltaAccess {
                                delta,
                                shadow: &self.shadow,
                            };
                            self.apply_op(op, &mut regs, &mut mem_meta, tid, rec.rid, versioned);
                        });
                    }
                }
            }
            paralog_events::EventPayload::Ca(_) => {
                // CA records are ordering events for every peer: publish the
                // pending overlay, then run the one shared-path
                // implementation (issuer-only metadata update).
                crate::factory::DeltaLifeguard::flush_delta(self, tid);
                crate::factory::ConcurrentLifeguard::apply(self, tid, rec, versioned);
            }
        }
    }

    fn flush_delta(&self, tid: ThreadId) {
        // SAFETY: same single-owner contract as `apply_delta` — flush
        // points are executed by the worker that owns lane `tid`.
        unsafe {
            self.deltas[tid.index()].with(|delta| {
                if !delta.is_empty() {
                    delta.flush_into(&self.shadow);
                }
            });
        }
    }
}

/// Calls `f(addr, value)` for every application byte with non-clean shadow
/// state. Iterates chunk space deterministically.
pub(crate) fn for_each_nonzero<F: FnMut(u64, u8)>(mem: &ShadowMemory, mut f: F) {
    // ShadowMemory intentionally hides its chunk map; walk a generous space
    // via the public API would be too slow, so we expose iteration through a
    // snapshot helper below. Chunk granularity keeps this linear in touched
    // memory.
    for (addr, value) in mem.iter_nonzero() {
        f(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::Reg;

    fn setup() -> (Rc<RefCell<TaintShared>>, TaintCheck) {
        let shared = TaintShared::new();
        let lg = TaintCheck::new(Rc::clone(&shared), ThreadId(0));
        (shared, lg)
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 4)
    }

    #[test]
    fn propagation_chain_mem_to_mem() {
        let (shared, mut lg) = setup();
        shared
            .borrow_mut()
            .mem
            .set_range(AddrRange::new(0x100, 4), TAINTED);
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::MemToReg {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
            &mut ctx,
        );
        assert_eq!(lg.reg_taint(0), TAINTED);
        lg.handle(
            &MetaOp::RegToReg {
                dst: r(1),
                src: r(0),
            },
            Rid(2),
            &mut ctx,
        );
        lg.handle(
            &MetaOp::RegToMem {
                dst: m(0x200),
                src: r(1),
            },
            Rid(3),
            &mut ctx,
        );
        assert_eq!(
            shared.borrow().mem.join_range(AddrRange::new(0x200, 4)),
            TAINTED
        );
    }

    #[test]
    fn immediate_clears_taint() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.regs[3] = TAINTED;
        lg.handle(&MetaOp::ImmToReg { dst: r(3) }, Rid(1), &mut ctx);
        assert_eq!(lg.reg_taint(3), 0);
    }

    #[test]
    fn alu_joins_taint() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.regs[0] = 0;
        lg.regs[1] = TAINTED;
        lg.handle(
            &MetaOp::AluRR {
                dst: r(2),
                a: r(0),
                b: Some(r(1)),
            },
            Rid(1),
            &mut ctx,
        );
        assert_eq!(lg.reg_taint(2), TAINTED);
    }

    #[test]
    fn tainted_jump_detected() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.regs[5] = TAINTED;
        lg.handle(&MetaOp::CheckJmp { target: r(5) }, Rid(9), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].kind, ViolationKind::TaintedJump);
        assert_eq!(ctx.violations[0].rid, Rid(9));
    }

    #[test]
    fn clean_jump_passes() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(&MetaOp::CheckJmp { target: r(5) }, Rid(9), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn read_syscall_taints_buffer_on_own_ca_end() {
        let (shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        let buf = AddrRange::new(0x1000, 16);
        let ca = CaRecord {
            what: HighLevelKind::Syscall(SyscallKind::ReadInput),
            phase: CaPhase::End,
            range: Some(buf),
            issuer: ThreadId(0),
            issuer_rid: Rid(5),
            seq: 0,
        };
        lg.handle_ca(&ca, true, Rid(5), &mut ctx);
        assert_eq!(shared.borrow().mem.join_range(buf), TAINTED);
        // Remote lifeguards do not re-apply the update.
        let mut ctx2 = HandlerCtx::new();
        let mut remote = TaintCheck::new(Rc::clone(&shared), ThreadId(1));
        shared.borrow_mut().mem.set_range(buf, 0);
        remote.handle_ca(&ca, false, Rid(2), &mut ctx2);
        assert_eq!(shared.borrow().mem.join_range(buf), 0);
    }

    #[test]
    fn malloc_untaints_fresh_memory() {
        let (shared, mut lg) = setup();
        let range = AddrRange::new(0x2000, 32);
        shared.borrow_mut().mem.set_range(range, TAINTED);
        let ca = CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(5),
            seq: 0,
        };
        lg.handle_ca(&ca, true, Rid(5), &mut HandlerCtx::new());
        assert_eq!(shared.borrow().mem.join_range(range), 0);
    }

    #[test]
    fn write_syscall_checks_taint() {
        let (shared, mut lg) = setup();
        let buf = AddrRange::new(0x3000, 8);
        shared.borrow_mut().mem.set_range(buf, TAINTED);
        let ca = CaRecord {
            what: HighLevelKind::Syscall(SyscallKind::WriteOutput),
            phase: CaPhase::Begin,
            range: Some(buf),
            issuer: ThreadId(0),
            issuer_rid: Rid(5),
            seq: 0,
        };
        let mut ctx = HandlerCtx::new();
        lg.handle_ca(&ca, true, Rid(5), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::TaintedSyscallArg);
    }

    #[test]
    fn versioned_read_overrides_current_state() {
        let (shared, mut lg) = setup();
        // Current state: tainted. Versioned snapshot: clean.
        shared
            .borrow_mut()
            .mem
            .set_range(AddrRange::new(0x100, 4), TAINTED);
        let mut ctx = HandlerCtx::new();
        ctx.versioned = Some((AddrRange::new(0x100, 4), vec![0, 0, 0, 0]));
        lg.handle(
            &MetaOp::MemToReg {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
            &mut ctx,
        );
        assert_eq!(
            lg.reg_taint(0),
            0,
            "reads the pre-write (versioned) metadata"
        );
    }

    #[test]
    fn syscall_race_taints_conservatively() {
        let (shared, mut lg) = setup();
        let access = AddrRange::new(0x100, 4);
        let entry = RangeEntry {
            issuer: ThreadId(1),
            what: HighLevelKind::Syscall(SyscallKind::ReadInput),
            range: AddrRange::new(0x0, 0x1000),
        };
        let mut ctx = HandlerCtx::new();
        lg.on_syscall_race(access, &entry, Rid(4), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::SyscallRace);
        assert_eq!(shared.borrow().mem.join_range(access), TAINTED);
    }

    #[test]
    fn fingerprint_reflects_metadata() {
        let (shared, lg) = setup();
        let before = lg.fingerprint();
        shared.borrow_mut().mem.set(0x100, TAINTED);
        assert_ne!(lg.fingerprint(), before);
        shared.borrow_mut().mem.set(0x100, 0);
        assert_eq!(lg.fingerprint(), before, "zero values do not contribute");
    }

    #[test]
    fn meta_touches_are_recorded() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::MemToReg {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
            &mut ctx,
        );
        assert_eq!(ctx.meta_touches.len(), 1);
        assert!(!ctx.meta_touches[0].1, "a load touches metadata read-only");
    }
}
