//! Fundamental identifier and address types shared across the ParaLog stack.
//!
//! These are deliberate newtypes ([C-NEWTYPE]): a `ThreadId` is not a core
//! index, a [`Rid`] is not a cycle count, and confusing them is a class of bug
//! the paper's mechanisms are particularly sensitive to (dependence arcs are
//! `(thread, record-id)` tuples).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// A virtual address in the monitored application's address space.
pub type Addr = u64;

/// Identifier of an application thread (and of its paired lifeguard thread).
///
/// ParaLog pairs application thread *k* with lifeguard thread *k*; both are
/// named by the same `ThreadId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// Returns the thread id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u16> for ThreadId {
    fn from(v: u16) -> Self {
        ThreadId(v)
    }
}

/// A *record id*: the per-thread retirement counter value of an event.
///
/// The paper increments a per-core counter by one for every retired
/// instruction/µop and uses it as the record id of the corresponding event
/// (§5.1). Record ids start at 1 so that `Rid(0)` can mean "before any
/// event", which makes progress comparisons total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rid(pub u64);

impl Rid {
    /// The value strictly before the first event of any thread.
    pub const ZERO: Rid = Rid(0);

    /// The next record id in program order.
    #[inline]
    #[must_use]
    pub fn next(self) -> Rid {
        Rid(self.0 + 1)
    }

    /// The previous record id, saturating at [`Rid::ZERO`].
    #[inline]
    #[must_use]
    pub fn prev(self) -> Rid {
        Rid(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for Rid {
    fn from(v: u64) -> Self {
        Rid(v)
    }
}

/// A contiguous, half-open range `[start, start + len)` of application
/// addresses.
///
/// Used for malloc/free extents and the memory-range parameters carried by
/// ConflictAlert messages (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AddrRange {
    /// First address of the range.
    pub start: Addr,
    /// Number of bytes in the range.
    pub len: u64,
}

impl AddrRange {
    /// Creates a range from its first address and length in bytes.
    pub fn new(start: Addr, len: u64) -> Self {
        AddrRange { start, len }
    }

    /// The first address past the end of the range.
    #[inline]
    pub fn end(&self) -> Addr {
        self.start + self.len
    }

    /// Whether `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end())
    }
}

/// Number of bytes in a cache line throughout the simulated machine (Table 1).
pub const LINE_BYTES: u64 = 64;

/// Identifier of a cache-line-sized block of the application address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The block containing `addr`.
    #[inline]
    pub fn containing(addr: Addr) -> BlockId {
        BlockId(addr / LINE_BYTES)
    }

    /// First address of the block.
    #[inline]
    pub fn base(self) -> Addr {
        self.0 * LINE_BYTES
    }

    /// The block as an address range.
    #[inline]
    pub fn range(self) -> AddrRange {
        AddrRange::new(self.base(), LINE_BYTES)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// Blocks covered by an access of `size` bytes at `addr` (at most two for the
/// aligned, ≤8-byte accesses produced by the ISA).
pub fn blocks_of(addr: Addr, size: u64) -> impl Iterator<Item = BlockId> {
    let first = addr / LINE_BYTES;
    let last = if size == 0 {
        first
    } else {
        (addr + size - 1) / LINE_BYTES
    };
    (first..=last).map(BlockId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_ordering_and_stepping() {
        assert!(Rid(3) > Rid(2));
        assert_eq!(Rid(2).next(), Rid(3));
        assert_eq!(Rid(2).prev(), Rid(1));
        assert_eq!(Rid::ZERO.prev(), Rid::ZERO);
    }

    #[test]
    fn range_contains_and_overlaps() {
        let r = AddrRange::new(0x100, 0x10);
        assert!(r.contains(0x100));
        assert!(r.contains(0x10f));
        assert!(!r.contains(0x110));
        assert!(r.overlaps(&AddrRange::new(0x10f, 1)));
        assert!(!r.overlaps(&AddrRange::new(0x110, 16)));
        assert!(!r.overlaps(&AddrRange::new(0x0, 0x100)));
        assert!(AddrRange::new(0, 0).is_empty());
    }

    #[test]
    fn block_math() {
        assert_eq!(BlockId::containing(0), BlockId(0));
        assert_eq!(BlockId::containing(63), BlockId(0));
        assert_eq!(BlockId::containing(64), BlockId(1));
        assert_eq!(BlockId(2).base(), 128);
        assert_eq!(BlockId(2).range(), AddrRange::new(128, 64));
    }

    #[test]
    fn blocks_of_spanning_access() {
        let one: Vec<_> = blocks_of(0x40, 8).collect();
        assert_eq!(one, vec![BlockId(1)]);
        let two: Vec<_> = blocks_of(0x7c, 8).collect();
        assert_eq!(two, vec![BlockId(1), BlockId(2)]);
        let zero_sized: Vec<_> = blocks_of(0x40, 0).collect();
        assert_eq!(zero_sized, vec![BlockId(1)]);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(Rid(7).to_string(), "#7");
        assert!(!BlockId(1).to_string().is_empty());
        assert!(!AddrRange::new(0, 4).to_string().is_empty());
    }
}
