//! Log compression codec.
//!
//! LBA reports that compression reduces the average event record to under one
//! byte (§2); the 64 KB log buffer therefore holds ~64 K records. This module
//! implements a real codec — opcode nibble packing, delta-encoded addresses
//! against a rolling reference, LEB128 varints — so that the record-size claim
//! is *measured* on our streams rather than assumed (see the `codec` bench).
//!
//! The codec is lossless for the fields the lifeguard needs: payload, arcs and
//! TSO annotations; `rid`s are reconstructed from stream position plus an
//! explicit base.
//!
//! # Integrity
//!
//! Every record is followed by a one-byte *chained* checksum: a rolling
//! 8-bit state folded over every payload byte since the start of the stream
//! (including the rid-base varint), sampled at each record boundary. The
//! per-byte fold is a bijection in the byte, so any single corrupted byte is
//! *guaranteed* to be detected at the next record boundary as long as the
//! framing (the byte-consumption pattern) is unchanged; a corruption that
//! shifts framing is caught either structurally or by the now-misaligned
//! checksum chain with probability `255/256` per subsequent boundary —
//! compounding, since the chain never resynchronizes. One byte per record
//! keeps the stream within the paper's compactness envelope.

use crate::arc::{ArcKind, DependenceArc};
use crate::isa::{Instr, MemRef, Reg, SyscallKind};
use crate::record::{CaPhase, CaRecord, EventPayload, EventRecord, HighLevelKind, VersionId};
use crate::types::{AddrRange, Rid, ThreadId};
use std::fmt;

/// Error produced when decoding a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    at: usize,
    what: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid log stream at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Internal decode outcome: the incremental decoder must tell "the buffered
/// bytes end mid-record — feed more and retry" apart from "these bytes can
/// never be a valid record". Whole-stream [`decode`] collapses `Incomplete`
/// into a truncation [`DecodeError`].
#[derive(Debug)]
enum Fault {
    /// The input ran out mid-record; more bytes may complete it.
    Incomplete,
    /// The bytes are structurally invalid regardless of what follows.
    Corrupt(DecodeError),
}

const OP_LOAD: u8 = 0;
const OP_STORE: u8 = 1;
const OP_MOV_RR: u8 = 2;
const OP_MOV_RI: u8 = 3;
const OP_ALU1: u8 = 4;
const OP_ALU2: u8 = 5;
const OP_ALU_MEM: u8 = 6;
const OP_JMP: u8 = 7;
const OP_RMW: u8 = 8;
const OP_NOP: u8 = 9;
const OP_CA: u8 = 10;

/// Flag bits stored alongside the opcode.
const FLAG_ARCS: u8 = 0x10;
const FLAG_PRODUCE: u8 = 0x20;
const FLAG_CONSUME: u8 = 0x40;
const FLAG_FORWARDED: u8 = 0x80;

/// Odd multiplier of the checksum fold (odd ⇒ the multiply is a bijection
/// on `u8`, so the whole fold is a bijection in the folded byte).
const CHECK_MUL: u8 = 0x9b;

/// One step of the rolling record checksum. XOR mixes the byte in,
/// multiply and rotate diffuse it so byte *order* matters (a pure XOR
/// accumulator would miss transpositions).
fn fold_check(state: u8, byte: u8) -> u8 {
    (state ^ byte).wrapping_mul(CHECK_MUL).rotate_left(3)
}

/// Streaming encoder holding the delta-compression context.
#[derive(Debug, Default)]
pub struct Encoder {
    out: Vec<u8>,
    last_addr: u64,
    records: u64,
    started: bool,
    /// Rolling checksum state over every payload byte emitted so far.
    check: u8,
    /// Prefix of `out` already folded into `check` (ends after the previous
    /// record's checksum byte).
    checked: usize,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Number of records encoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded bytes so far.
    pub fn bytes(&self) -> usize {
        self.out.len()
    }

    /// Average encoded bytes per record (the paper's headline metric).
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.out.len() as f64 / self.records as f64
        }
    }

    /// Appends one record to the stream.
    pub fn push(&mut self, rec: &EventRecord) {
        // Keep headroom for a worst-case record without recomputing a bound
        // per push: doubling from a page-sized floor amortizes to one branch
        // here, so the varint emitters never growth-check byte-at-a-time.
        if self.out.capacity() - self.out.len() < MAX_RECORD_BYTES {
            self.out.reserve(self.out.capacity().max(4096));
        }
        if !self.started {
            self.started = true;
            write_uvarint(&mut self.out, rec.rid.0);
        }
        self.records += 1;
        let mut flags = 0u8;
        if !rec.arcs.is_empty() {
            flags |= FLAG_ARCS;
        }
        if !rec.produce_versions.is_empty() {
            flags |= FLAG_PRODUCE;
        }
        if rec.consume_version.is_some() {
            flags |= FLAG_CONSUME;
        }
        if rec.forwarded {
            flags |= FLAG_FORWARDED;
        }
        match &rec.payload {
            EventPayload::Instr(i) => self.encode_instr(i, flags),
            EventPayload::Ca(ca) => self.encode_ca(ca, flags),
        }
        if flags & FLAG_ARCS != 0 {
            write_uvarint(&mut self.out, rec.arcs.len() as u64);
            for a in &rec.arcs {
                self.out.push(arc_kind_code(a.kind));
                write_uvarint(&mut self.out, a.src.0 as u64);
                write_uvarint(&mut self.out, a.src_rid.0);
            }
        }
        if flags & FLAG_PRODUCE != 0 {
            write_uvarint(&mut self.out, rec.produce_versions.len() as u64);
            for (v, m, consumers) in &rec.produce_versions {
                write_uvarint(&mut self.out, v.consumer.0 as u64);
                write_uvarint(&mut self.out, v.consumer_rid.0);
                self.encode_memref(*m);
                write_uvarint(&mut self.out, u64::from(*consumers));
            }
        }
        if let Some((v, m)) = rec.consume_version {
            write_uvarint(&mut self.out, v.consumer.0 as u64);
            write_uvarint(&mut self.out, v.consumer_rid.0);
            self.encode_memref(m);
        }
        // Fold this record's bytes (plus the rid base, on the first record)
        // into the chain and sample it as the record's trailing checksum.
        // The checksum byte itself stays outside the chain.
        let mut state = self.check;
        for &b in &self.out[self.checked..] {
            state = fold_check(state, b);
        }
        self.check = state;
        self.out.push(state);
        self.checked = self.out.len();
    }

    /// Finishes the stream and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    fn encode_instr(&mut self, i: &Instr, flags: u8) {
        match *i {
            Instr::Load { dst, src } => {
                self.out.push(OP_LOAD | flags);
                self.out.push(pack_reg_size(dst, src.size));
                self.encode_addr(src.addr);
            }
            Instr::Store { dst, src } => {
                self.out.push(OP_STORE | flags);
                self.out.push(pack_reg_size(src, dst.size));
                self.encode_addr(dst.addr);
            }
            Instr::MovRR { dst, src } => {
                self.out.push(OP_MOV_RR | flags);
                self.out.push(pack_regs(dst, src));
            }
            Instr::MovRI { dst } => {
                self.out.push(OP_MOV_RI | flags);
                self.out.push(dst.0);
            }
            Instr::Alu1 { dst, a } => {
                self.out.push(OP_ALU1 | flags);
                self.out.push(pack_regs(dst, a));
            }
            Instr::Alu2 { dst, a, b } => {
                self.out.push(OP_ALU2 | flags);
                self.out.push(pack_regs(dst, a));
                self.out.push(b.0);
            }
            Instr::AluMem { dst, a, src } => {
                self.out.push(OP_ALU_MEM | flags);
                self.out.push(pack_regs(dst, a));
                self.out.push(size_code(src.size));
                self.encode_addr(src.addr);
            }
            Instr::JmpReg { target } => {
                self.out.push(OP_JMP | flags);
                self.out.push(target.0);
            }
            Instr::Rmw { mem, reg } => {
                self.out.push(OP_RMW | flags);
                self.out.push(pack_reg_size(reg, mem.size));
                self.encode_addr(mem.addr);
            }
            Instr::Nop => {
                self.out.push(OP_NOP | flags);
            }
        }
    }

    fn encode_ca(&mut self, ca: &CaRecord, flags: u8) {
        self.out.push(OP_CA | flags);
        let (code, payload) = high_level_code(ca.what);
        let mut tag = code << 2;
        if ca.phase == CaPhase::End {
            tag |= 0b01;
        }
        if ca.range.is_some() {
            tag |= 0b10;
        }
        self.out.push(tag);
        if let Some(p) = payload {
            write_uvarint(&mut self.out, p);
        }
        write_uvarint(&mut self.out, ca.issuer.0 as u64);
        write_uvarint(&mut self.out, ca.issuer_rid.0);
        write_uvarint(&mut self.out, ca.seq);
        if let Some(r) = ca.range {
            self.encode_addr(r.start);
            write_uvarint(&mut self.out, r.len);
        }
    }

    fn encode_memref(&mut self, m: MemRef) {
        self.out.push(size_code(m.size));
        self.encode_addr(m.addr);
    }

    fn encode_addr(&mut self, addr: u64) {
        let delta = addr as i64 - self.last_addr as i64;
        write_ivarint(&mut self.out, delta);
        self.last_addr = addr;
    }
}

/// Headroom covering any record with inline-capacity annotation lists (the
/// overwhelmingly common case) at full-width varints. Records spilling past
/// it are still encoded correctly — `Vec` grows — just without the
/// pre-reserved fast path.
const MAX_RECORD_BYTES: usize = 256;

/// Encodes a whole slice of records (convenience wrapper over [`Encoder`]).
pub fn encode(records: &[EventRecord]) -> Vec<u8> {
    let mut enc = Encoder::new();
    // Pre-size to the measured common case (~2–3 bytes/record) so steady
    // pushes never reallocate mid-stream.
    enc.out.reserve(records.len() * 4);
    for r in records {
        enc.push(r);
    }
    enc.finish()
}

/// Drains a [`LogRing`](crate::LogRing) segment straight into `enc` without
/// copying records out of the ring (the zero-copy batch-transport path: the
/// ring hands out borrows, the encoder appends). Returns the record count.
pub fn encode_ring(enc: &mut Encoder, ring: &mut crate::LogRing) -> usize {
    ring.drain_in_place(|rec| enc.push(rec))
}

/// Decodes a stream produced by [`encode`] / [`Encoder`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or corrupt input.
pub fn decode(bytes: &[u8]) -> Result<Vec<EventRecord>, DecodeError> {
    let mut d = Decoder {
        bytes,
        pos: 0,
        last_addr: 0,
        check: 0,
    };
    let mut out = Vec::new();
    if bytes.is_empty() {
        return Ok(out);
    }
    let fault = |d: &Decoder, f| match f {
        Fault::Corrupt(e) => e,
        Fault::Incomplete => DecodeError {
            at: d.pos,
            what: "truncated record",
        },
    };
    let mut rid = match d.read_uvarint("rid base") {
        Ok(v) => Rid(v),
        Err(f) => return Err(fault(&d, f)),
    };
    while d.pos < d.bytes.len() {
        let rec = match d.read_record(rid) {
            Ok(rec) => rec,
            Err(f) => return Err(fault(&d, f)),
        };
        rid = rec.rid.next();
        out.push(rec);
    }
    Ok(out)
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    last_addr: u64,
    check: u8,
}

impl<'a> Decoder<'a> {
    fn err(&self, what: &'static str) -> Fault {
        Fault::Corrupt(DecodeError { at: self.pos, what })
    }

    fn read_byte(&mut self, _what: &'static str) -> Result<u8, Fault> {
        let b = *self.bytes.get(self.pos).ok_or(Fault::Incomplete)?;
        self.pos += 1;
        self.check = fold_check(self.check, b);
        Ok(b)
    }

    /// Consumes a record's trailing checksum byte (kept outside the fold)
    /// and compares it against the chain state accumulated so far.
    fn read_check(&mut self) -> Result<(), Fault> {
        let got = *self.bytes.get(self.pos).ok_or(Fault::Incomplete)?;
        if got != self.check {
            return Err(self.err("record checksum mismatch"));
        }
        self.pos += 1;
        Ok(())
    }

    fn read_uvarint(&mut self, what: &'static str) -> Result<u64, Fault> {
        let mut shift = 0u32;
        let mut acc = 0u64;
        loop {
            let b = self.read_byte(what)?;
            acc |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(acc);
            }
            shift += 7;
            if shift >= 64 {
                return Err(self.err("varint overflow"));
            }
        }
    }

    fn read_ivarint(&mut self, what: &'static str) -> Result<i64, Fault> {
        let raw = self.read_uvarint(what)?;
        Ok(zigzag_decode(raw))
    }

    fn read_addr(&mut self) -> Result<u64, Fault> {
        let delta = self.read_ivarint("addr delta")?;
        let addr = (self.last_addr as i64 + delta) as u64;
        self.last_addr = addr;
        Ok(addr)
    }

    fn read_memref(&mut self) -> Result<MemRef, Fault> {
        let size =
            decode_size(self.read_byte("memref size")?).ok_or_else(|| self.err("bad size"))?;
        let addr = self.read_addr()?;
        Ok(MemRef::new(addr, size))
    }

    fn read_record(&mut self, rid: Rid) -> Result<EventRecord, Fault> {
        let head = self.read_byte("opcode")?;
        let opcode = head & 0x0f;
        let flags = head & 0xf0;
        let payload = if opcode == OP_CA {
            EventPayload::Ca(self.read_ca()?)
        } else {
            EventPayload::Instr(self.read_instr(opcode)?)
        };
        let mut rec = EventRecord {
            rid,
            payload,
            arcs: crate::record::ArcList::new(),
            produce_versions: crate::record::ProduceList::new(),
            consume_version: None,
            forwarded: flags & FLAG_FORWARDED != 0,
        };
        if flags & FLAG_ARCS != 0 {
            let n = self.read_uvarint("arc count")?;
            for _ in 0..n {
                let kind =
                    decode_arc_kind(self.read_byte("arc kind")?).ok_or(self.err("bad arc"))?;
                let src = ThreadId(self.read_uvarint("arc src")? as u16);
                let src_rid = Rid(self.read_uvarint("arc rid")?);
                rec.arcs.push(DependenceArc::new(src, src_rid, kind));
            }
        }
        if flags & FLAG_PRODUCE != 0 {
            let n = self.read_uvarint("produce count")?;
            for _ in 0..n {
                let v = self.read_version()?;
                let m = self.read_memref()?;
                let consumers = self.read_uvarint("consumer count")? as u32;
                rec.produce_versions.push((v, m, consumers));
            }
        }
        if flags & FLAG_CONSUME != 0 {
            let v = self.read_version()?;
            let m = self.read_memref()?;
            rec.consume_version = Some((v, m));
        }
        self.read_check()?;
        Ok(rec)
    }

    fn read_version(&mut self) -> Result<VersionId, Fault> {
        let consumer = ThreadId(self.read_uvarint("version tid")? as u16);
        let consumer_rid = Rid(self.read_uvarint("version rid")?);
        Ok(VersionId {
            consumer,
            consumer_rid,
        })
    }

    fn read_instr(&mut self, opcode: u8) -> Result<Instr, Fault> {
        Ok(match opcode {
            OP_LOAD => {
                let (reg, size) =
                    unpack_reg_size(self.read_byte("reg")?).ok_or(self.err("bad reg"))?;
                Instr::Load {
                    dst: reg,
                    src: MemRef::new(self.read_addr()?, size),
                }
            }
            OP_STORE => {
                let (reg, size) =
                    unpack_reg_size(self.read_byte("reg")?).ok_or(self.err("bad reg"))?;
                Instr::Store {
                    dst: MemRef::new(self.read_addr()?, size),
                    src: reg,
                }
            }
            OP_MOV_RR => {
                let (dst, src) = unpack_regs(self.read_byte("regs")?);
                Instr::MovRR { dst, src }
            }
            OP_MOV_RI => Instr::MovRI {
                dst: Reg(self.read_byte("reg")?),
            },
            OP_ALU1 => {
                let (dst, a) = unpack_regs(self.read_byte("regs")?);
                Instr::Alu1 { dst, a }
            }
            OP_ALU2 => {
                let (dst, a) = unpack_regs(self.read_byte("regs")?);
                let b = Reg(self.read_byte("reg b")?);
                Instr::Alu2 { dst, a, b }
            }
            OP_ALU_MEM => {
                let (dst, a) = unpack_regs(self.read_byte("regs")?);
                let size = decode_size(self.read_byte("size")?).ok_or(self.err("bad size"))?;
                Instr::AluMem {
                    dst,
                    a,
                    src: MemRef::new(self.read_addr()?, size),
                }
            }
            OP_JMP => Instr::JmpReg {
                target: Reg(self.read_byte("reg")?),
            },
            OP_RMW => {
                let (reg, size) =
                    unpack_reg_size(self.read_byte("reg")?).ok_or(self.err("bad reg"))?;
                Instr::Rmw {
                    mem: MemRef::new(self.read_addr()?, size),
                    reg,
                }
            }
            OP_NOP => Instr::Nop,
            _ => return Err(self.err("unknown opcode")),
        })
    }

    fn read_ca(&mut self) -> Result<CaRecord, Fault> {
        let tag = self.read_byte("ca tag")?;
        let code = tag >> 2;
        let needs_payload = matches!(code, 5..=7);
        let payload = if needs_payload {
            Some(self.read_uvarint("ca payload")?)
        } else {
            None
        };
        let err = self.err("bad CA kind");
        let what = decode_high_level(code, move || Ok(payload.unwrap_or(0)))?.ok_or(err)?;
        let phase = if tag & 0b01 != 0 {
            CaPhase::End
        } else {
            CaPhase::Begin
        };
        let has_range = tag & 0b10 != 0;
        let issuer = ThreadId(self.read_uvarint("ca issuer")? as u16);
        let issuer_rid = Rid(self.read_uvarint("ca issuer rid")?);
        let seq = self.read_uvarint("ca seq")?;
        let range = if has_range {
            let start = self.read_addr()?;
            let len = self.read_uvarint("ca len")?;
            Some(AddrRange::new(start, len))
        } else {
            None
        };
        Ok(CaRecord {
            what,
            phase,
            range,
            issuer,
            issuer_rid,
            seq,
        })
    }
}

/// Incremental decoder: the streaming counterpart of [`decode`].
///
/// Wire bytes are [`feed`](StreamDecoder::feed) in whatever chunks the
/// transport delivers — split points may fall anywhere, including inside a
/// varint — and complete records are pulled with
/// [`next_record`](StreamDecoder::next_record). A pull that reaches the end of the
/// buffered bytes mid-record rewinds to the record boundary and returns
/// `Ok(None)`: feed more bytes and retry. Delta-compression context
/// (rolling address reference, implicit record ids) carries across feeds,
/// so any chunking of the same stream decodes to the same records.
///
/// Memory stays bounded: consumed bytes are reclaimed on every `feed`, so
/// the internal buffer never holds more than one partial record plus the
/// most recent chunk ([`buffered`](StreamDecoder::buffered) reports the
/// current residency).
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (reclaimed on the next feed).
    pos: usize,
    /// Absolute stream offset of `buf[0]` (keeps error positions global).
    offset: usize,
    /// Record id of the next record, once the stream's base varint arrived.
    next_rid: Option<Rid>,
    last_addr: u64,
    /// Rolling checksum chain state, carried across feeds like `last_addr`.
    check: u8,
    records: u64,
}

impl StreamDecoder {
    /// A decoder with no bytes buffered.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Appends transport bytes, reclaiming the already-consumed prefix.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.offset += self.pos;
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently resident in the decode buffer (unconsumed tail plus
    /// any not-yet-reclaimed prefix).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether every fed byte has been consumed. `false` after the producer
    /// ends the stream means it was truncated mid-record.
    pub fn is_clean(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Decodes the next complete record, or `Ok(None)` when the buffered
    /// bytes end mid-record (feed more and retry).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the bytes are structurally invalid —
    /// corruption is permanent, unlike running out of buffered bytes.
    pub fn next_record(&mut self) -> Result<Option<EventRecord>, DecodeError> {
        if self.next_rid.is_none() {
            if self.pos == self.buf.len() {
                return Ok(None);
            }
            let mut d = Decoder {
                bytes: &self.buf[self.pos..],
                pos: 0,
                last_addr: self.last_addr,
                check: self.check,
            };
            match d.read_uvarint("rid base") {
                Ok(base) => {
                    self.next_rid = Some(Rid(base));
                    self.pos += d.pos;
                    self.check = d.check;
                }
                Err(Fault::Incomplete) => return Ok(None),
                Err(Fault::Corrupt(e)) => return Err(self.globalize(e)),
            }
        }
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        let rid = self.next_rid.expect("base varint was consumed");
        let mut d = Decoder {
            bytes: &self.buf[self.pos..],
            pos: 0,
            last_addr: self.last_addr,
            check: self.check,
        };
        match d.read_record(rid) {
            Ok(rec) => {
                self.pos += d.pos;
                self.last_addr = d.last_addr;
                self.check = d.check;
                self.next_rid = Some(rec.rid.next());
                self.records += 1;
                Ok(Some(rec))
            }
            Err(Fault::Incomplete) => Ok(None),
            Err(Fault::Corrupt(e)) => Err(self.globalize(e)),
        }
    }

    /// Rebases an error's position from the current record to the absolute
    /// stream offset.
    fn globalize(&self, e: DecodeError) -> DecodeError {
        DecodeError {
            at: self.offset + self.pos + e.at,
            what: e.what,
        }
    }
}

fn pack_regs(a: Reg, b: Reg) -> u8 {
    (a.0 << 4) | (b.0 & 0x0f)
}

fn unpack_regs(b: u8) -> (Reg, Reg) {
    (Reg(b >> 4), Reg(b & 0x0f))
}

fn size_code(size: u8) -> u8 {
    match size {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

fn decode_size(code: u8) -> Option<u8> {
    match code {
        0 => Some(1),
        1 => Some(2),
        2 => Some(4),
        3 => Some(8),
        _ => None,
    }
}

fn pack_reg_size(reg: Reg, size: u8) -> u8 {
    (reg.0 << 4) | size_code(size)
}

fn unpack_reg_size(b: u8) -> Option<(Reg, u8)> {
    Some((Reg(b >> 4), decode_size(b & 0x03)?))
}

fn arc_kind_code(k: ArcKind) -> u8 {
    match k {
        ArcKind::Raw => 0,
        ArcKind::War => 1,
        ArcKind::Waw => 2,
        ArcKind::Sync => 3,
    }
}

fn decode_arc_kind(b: u8) -> Option<ArcKind> {
    match b {
        0 => Some(ArcKind::Raw),
        1 => Some(ArcKind::War),
        2 => Some(ArcKind::Waw),
        3 => Some(ArcKind::Sync),
        _ => None,
    }
}

fn high_level_code(h: HighLevelKind) -> (u8, Option<u64>) {
    match h {
        HighLevelKind::Malloc => (0, None),
        HighLevelKind::Free => (1, None),
        HighLevelKind::Syscall(SyscallKind::ReadInput) => (2, None),
        HighLevelKind::Syscall(SyscallKind::WriteOutput) => (3, None),
        HighLevelKind::Syscall(SyscallKind::Other) => (4, None),
        HighLevelKind::Lock(l) => (5, Some(u64::from(l.0))),
        HighLevelKind::Unlock(l) => (6, Some(u64::from(l.0))),
        HighLevelKind::Barrier(b) => (7, Some(u64::from(b.0))),
    }
}

fn decode_high_level(
    b: u8,
    payload: impl FnOnce() -> Result<u64, Fault>,
) -> Result<Option<HighLevelKind>, Fault> {
    Ok(match b {
        0 => Some(HighLevelKind::Malloc),
        1 => Some(HighLevelKind::Free),
        2 => Some(HighLevelKind::Syscall(SyscallKind::ReadInput)),
        3 => Some(HighLevelKind::Syscall(SyscallKind::WriteOutput)),
        4 => Some(HighLevelKind::Syscall(SyscallKind::Other)),
        5 => Some(HighLevelKind::Lock(crate::isa::LockId(payload()? as u32))),
        6 => Some(HighLevelKind::Unlock(crate::isa::LockId(payload()? as u32))),
        7 => Some(HighLevelKind::Barrier(crate::isa::BarrierId(
            payload()? as u32
        ))),
        _ => None,
    })
}

fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    // Single-byte values (same-line address deltas, small ids) dominate the
    // streams; skip the staging buffer entirely for them.
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    // Emit into a fixed stack buffer, then append with one bounds-checked
    // memcpy instead of up to ten growth-checked pushes.
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = b;
            n += 1;
            break;
        }
        buf[n] = b | 0x80;
        n += 1;
    }
    out.extend_from_slice(&buf[..n]);
}

fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag_encode(v));
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            out.clear();
            write_uvarint(&mut out, v);
            let mut d = Decoder {
                bytes: &out,
                pos: 0,
                last_addr: 0,
                check: 0,
            };
            assert_eq!(d.read_uvarint("t").unwrap(), v);
        }
    }

    fn sample_records() -> Vec<EventRecord> {
        let m = MemRef::new(0x1000, 4);
        let n = MemRef::new(0x1004, 4);
        let mut recs = vec![
            EventRecord::instr(Rid(1), Instr::Load { dst: r(0), src: m }),
            EventRecord::instr(
                Rid(2),
                Instr::Alu2 {
                    dst: r(1),
                    a: r(0),
                    b: r(2),
                },
            ),
            EventRecord::instr(Rid(3), Instr::Store { dst: n, src: r(1) }),
            EventRecord::instr(Rid(4), Instr::JmpReg { target: r(1) }),
            EventRecord::ca(
                Rid(5),
                CaRecord {
                    what: HighLevelKind::Malloc,
                    phase: CaPhase::End,
                    range: Some(AddrRange::new(0x2000, 128)),
                    issuer: ThreadId(1),
                    issuer_rid: Rid(77),
                    seq: 3,
                },
            ),
        ];
        recs[2]
            .arcs
            .push(DependenceArc::new(ThreadId(1), Rid(9), ArcKind::Raw));
        recs[2]
            .arcs
            .push(DependenceArc::new(ThreadId(2), Rid(4), ArcKind::War));
        recs[0].consume_version = Some((
            VersionId {
                consumer: ThreadId(0),
                consumer_rid: Rid(1),
            },
            m,
        ));
        recs[3].produce_versions.push((
            VersionId {
                consumer: ThreadId(2),
                consumer_rid: Rid(42),
            },
            n,
            2,
        ));
        recs
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let recs = sample_records();
        let bytes = encode(&recs);
        let back = decode(&bytes).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn empty_stream() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn sequential_stream_is_compact() {
        // A stride-4 load loop — the common case — should approach ~4 bytes
        // per record: opcode, packed reg/size, 1-byte delta, and the
        // per-record integrity byte.
        let mut recs = Vec::new();
        for i in 0..1000u64 {
            recs.push(EventRecord::instr(
                Rid(i + 1),
                Instr::Load {
                    dst: r(0),
                    src: MemRef::new(0x10000 + i * 4, 4),
                },
            ));
        }
        let bytes = encode(&recs);
        let per_record = bytes.len() as f64 / recs.len() as f64;
        assert!(
            per_record < 4.5,
            "expected compact encoding, got {per_record}"
        );
        assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn truncated_stream_errors() {
        let recs = sample_records();
        let bytes = encode(&recs);
        let err = decode(&bytes[..bytes.len() - 2]);
        assert!(err.is_err());
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("invalid log stream"));
    }

    #[test]
    fn corrupt_opcode_errors() {
        let bytes = vec![0x00, 0x0f]; // rid base 0, opcode 0x0f = unknown
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let recs = sample_records();
        let bytes = encode(&recs);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode(&bad).is_err(),
                "flip at offset {i}/{} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn checksum_mismatch_is_corruption_not_incomplete() {
        // Flip a payload byte of the first record while keeping framing
        // intact: the streaming decoder must report a permanent error, not
        // "feed more bytes".
        let recs = sample_records();
        let mut bytes = encode(&recs);
        // Offset 2 is inside the first record's body (0 = rid base,
        // 1 = head byte with the consume flag, 2 = reg/size pack).
        bytes[2] ^= 0xFF;
        let mut sd = StreamDecoder::new();
        sd.feed(&bytes);
        let err = sd.next_record().expect_err("corruption is permanent");
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn encode_ring_drains_without_copying_out() {
        let recs = sample_records();
        let mut ring = crate::LogRing::new(recs.len());
        for r in &recs {
            ring.push(r.clone()).unwrap();
        }
        let mut enc = Encoder::new();
        assert_eq!(encode_ring(&mut enc, &mut ring), recs.len());
        assert!(ring.is_empty());
        assert_eq!(decode(&enc.finish()).unwrap(), recs);
    }

    #[test]
    fn stream_decoder_matches_batch_byte_at_a_time() {
        let recs = sample_records();
        let bytes = encode(&recs);
        let mut sd = StreamDecoder::new();
        let mut out = Vec::new();
        for b in &bytes {
            sd.feed(std::slice::from_ref(b));
            while let Some(rec) = sd.next_record().unwrap() {
                out.push(rec);
            }
            // One partial record at most is ever resident.
            assert!(sd.buffered() <= MAX_RECORD_BYTES);
        }
        assert_eq!(out, recs);
        assert!(sd.is_clean(), "every byte consumed");
        assert_eq!(sd.records(), recs.len() as u64);
    }

    #[test]
    fn stream_decoder_reports_partial_tail() {
        let bytes = encode(&sample_records());
        let mut sd = StreamDecoder::new();
        sd.feed(&bytes[..bytes.len() - 2]);
        while sd.next_record().unwrap().is_some() {}
        assert!(!sd.is_clean(), "truncated mid-record leaves a partial tail");
        // Feeding the missing tail completes the record.
        sd.feed(&bytes[bytes.len() - 2..]);
        assert!(sd.next_record().unwrap().is_some());
        assert!(sd.is_clean());
    }

    #[test]
    fn stream_decoder_flags_corruption() {
        let mut sd = StreamDecoder::new();
        sd.feed(&[0x00, 0x0f]); // rid base 0, opcode 0x0f = unknown
        let err = sd.next_record().expect_err("corrupt opcode");
        assert!(err.to_string().contains("invalid log stream"));
    }

    #[test]
    fn encoder_reports_rate() {
        let mut enc = Encoder::new();
        assert_eq!(enc.bytes_per_record(), 0.0);
        for rec in sample_records() {
            enc.push(&rec);
        }
        assert_eq!(enc.records(), 5);
        assert!(enc.bytes_per_record() > 0.0);
    }
}
