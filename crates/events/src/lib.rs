//! Event vocabulary for the ParaLog online parallel-monitoring platform.
//!
//! This crate defines the data that flows between the monitored application
//! and its lifeguards (Figure 1/2 of the ASPLOS 2010 paper):
//!
//! * [`isa`] — the instruction-grain ISA of the monitored application and the
//!   high-level operations ([`Op`]) routed through the wrapper library;
//! * [`record`] — per-thread event stream records ([`EventRecord`]), the
//!   ConflictAlert broadcast records ([`CaRecord`]) and the handler-facing
//!   metadata operations ([`MetaOp`]);
//! * [`arc`] — inter-thread happened-before [`DependenceArc`]s captured from
//!   cache coherence traffic;
//! * [`ring`] — the bounded per-thread [`LogRing`] with full/empty
//!   backpressure, the transport between application and lifeguard cores;
//! * [`codec`] — a lossless varint/delta compression codec substantiating the
//!   "~1 byte per compressed record" assumption.
//!
//! # Example
//!
//! ```rust
//! use paralog_events::{EventRecord, Instr, LogRing, MemRef, Reg, Rid};
//!
//! let mut ring = LogRing::new(16);
//! let load = Instr::Load { dst: Reg::new(0), src: MemRef::new(0x1000, 4) };
//! ring.push(EventRecord::instr(Rid(1), load)).expect("ring has space");
//! let record = ring.pop().expect("record available");
//! assert_eq!(record.rid, Rid(1));
//! ```

#![warn(missing_debug_implementations)]

pub mod arc;
pub mod codec;
pub mod inline;
pub mod isa;
pub mod record;
pub mod ring;
pub mod types;

pub use arc::{ArcKind, DependenceArc};
pub use inline::InlineVec;
pub use isa::{AccessKind, BarrierId, Instr, LockId, MemRef, Op, Reg, SyscallKind, NUM_REGS};
pub use record::{
    check_view, dataflow_view, ArcList, CaPhase, CaRecord, EventPayload, EventRecord,
    HighLevelKind, MetaOp, ProduceList, VersionId,
};
pub use ring::{LogRing, DEFAULT_CAPACITY};
pub use types::{blocks_of, Addr, AddrRange, BlockId, Rid, ThreadId, LINE_BYTES};
