//! The per-thread log buffer connecting an application core to its lifeguard
//! core.
//!
//! LBA instantiates the event stream as a circular log buffer (e.g. 64 KB) in
//! the last-level cache; with compression the average record is under 1 byte
//! (§2). If the buffer is full the *application* core stalls; if it is empty
//! the *lifeguard* core stalls. [`LogRing`] models exactly that contract, with
//! capacity expressed in records.
//!
//! The ring additionally supports in-place *annotation* of a still-buffered
//! record, which the TSO version protocol uses to attach a `consume_version`
//! note to an already-retired load (§5.5, Figure 5).

use crate::record::EventRecord;
use crate::types::Rid;
use std::collections::VecDeque;

/// Default capacity in records: a 64 KB buffer at ~1 byte per compressed
/// record (§2).
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A single-producer single-consumer log buffer with stall accounting.
#[derive(Debug)]
pub struct LogRing {
    buf: VecDeque<EventRecord>,
    capacity: usize,
    produced: u64,
    consumed: u64,
    full_rejections: u64,
    empty_rejections: u64,
    closed: bool,
}

impl LogRing {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log ring capacity must be non-zero");
        LogRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            produced: 0,
            consumed: 0,
            full_rejections: 0,
            empty_rejections: 0,
            closed: false,
        }
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the ring is at capacity (producer must stall).
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total records ever popped.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// How many pushes were rejected because the ring was full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// How many pops found the ring empty.
    pub fn empty_rejections(&self) -> u64 {
        self.empty_rejections
    }

    /// Marks the producing thread as finished; the consumer can distinguish
    /// "empty for now" from "no more records will ever arrive".
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether the producer has finished and all records were consumed.
    pub fn is_drained(&self) -> bool {
        self.closed && self.buf.is_empty()
    }

    /// Whether the producer has closed the ring.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Appends a record.
    ///
    /// # Errors
    ///
    /// Returns the record back if the ring is full; the caller (the
    /// application core) must stall and retry.
    // The "large" Err payload is the point: full rings hand the record
    // back to the producer without boxing it onto the heap.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, record: EventRecord) -> Result<(), EventRecord> {
        // Closed-ness is checked before capacity: a push-after-close on a
        // full ring is a producer bug, not a backpressure event, and must
        // not be miscounted as a `full_rejection`.
        debug_assert!(!self.closed, "push after close");
        if self.closed {
            // Release builds (assert compiled out): refuse the record
            // without polluting the backpressure accounting.
            return Err(record);
        }
        if self.is_full() {
            self.full_rejections += 1;
            return Err(record);
        }
        self.buf.push_back(record);
        self.produced += 1;
        Ok(())
    }

    /// Delivers the oldest record *in place*: `f` receives a borrow of the
    /// record, which is then discarded without ever being moved or cloned
    /// out of the ring. This is the zero-copy delivery path the lifeguard
    /// engines use — the hardware analogue is the event-delivery unit
    /// reading the log buffer directly from the last-level cache.
    ///
    /// Returns `None` (and counts an empty rejection) if the ring is empty.
    pub fn pop_with<R>(&mut self, f: impl FnOnce(&EventRecord) -> R) -> Option<R> {
        match self.buf.front() {
            Some(rec) => {
                let out = f(rec);
                self.buf.pop_front();
                self.consumed += 1;
                Some(out)
            }
            None => {
                self.empty_rejections += 1;
                None
            }
        }
    }

    /// Drains every buffered record through `f` by reference — the batch
    /// analogue of [`LogRing::pop_with`] (e.g. handing a whole ring segment
    /// to the compression codec without copying records out). Returns the
    /// number of records drained. An empty ring counts no rejection: a bulk
    /// drain of nothing is a no-op, not a consumer stall.
    pub fn drain_in_place(&mut self, mut f: impl FnMut(&EventRecord)) -> usize {
        let n = self.buf.len();
        for rec in &self.buf {
            f(rec);
        }
        self.buf.clear();
        self.consumed += n as u64;
        n
    }

    /// Removes and returns the oldest record, or `None` if the ring is empty
    /// (the lifeguard core must stall and retry).
    pub fn pop(&mut self) -> Option<EventRecord> {
        match self.buf.pop_front() {
            Some(r) => {
                self.consumed += 1;
                Some(r)
            }
            None => {
                self.empty_rejections += 1;
                None
            }
        }
    }

    /// Peeks at the oldest record without consuming it.
    pub fn peek(&self) -> Option<&EventRecord> {
        self.buf.front()
    }

    /// Applies `f` to every buffered record, counting how many report a
    /// modification (TSO drain-time annotation of all pre-drain readers of a
    /// block, §5.5).
    pub fn annotate_matching<F>(&mut self, mut f: F) -> usize
    where
        F: FnMut(&mut EventRecord) -> bool,
    {
        let mut n = 0;
        for rec in self.buf.iter_mut() {
            if f(rec) {
                n += 1;
            }
        }
        n
    }

    /// Mutates the still-buffered record with id `rid` in place.
    ///
    /// Returns `true` if the record was found (i.e. the consumer has not yet
    /// popped it). Used by the TSO order-capturing hardware to annotate a
    /// pending load record with a `consume_version` note.
    pub fn annotate<F>(&mut self, rid: Rid, f: F) -> bool
    where
        F: FnOnce(&mut EventRecord),
    {
        // Records are pushed in rid order, one per retired event, so the
        // offset of `rid` from the oldest buffered record is direct.
        let oldest_rid = match self.buf.front() {
            Some(r) => r.rid,
            None => return false,
        };
        if rid < oldest_rid {
            return false;
        }
        let offset = (rid.0 - oldest_rid.0) as usize;
        match self.buf.get_mut(offset) {
            Some(rec) if rec.rid == rid => {
                f(rec);
                true
            }
            // High-level records can interleave CA records that share the rid
            // counter; fall back to a scan if the direct index misses.
            _ => {
                for rec in self.buf.iter_mut() {
                    if rec.rid == rid {
                        f(rec);
                        return true;
                    }
                }
                false
            }
        }
    }
}

impl Default for LogRing {
    fn default() -> Self {
        LogRing::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, MemRef};
    use crate::record::VersionId;
    use crate::types::ThreadId;

    fn rec(rid: u64) -> EventRecord {
        EventRecord::instr(Rid(rid), Instr::Nop)
    }

    #[test]
    fn fifo_order_and_counters() {
        let mut ring = LogRing::new(4);
        for i in 1..=3 {
            ring.push(rec(i)).unwrap();
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pop().unwrap().rid, Rid(1));
        assert_eq!(ring.pop().unwrap().rid, Rid(2));
        assert_eq!(ring.produced(), 3);
        assert_eq!(ring.consumed(), 2);
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut ring = LogRing::new(2);
        ring.push(rec(1)).unwrap();
        ring.push(rec(2)).unwrap();
        let rejected = ring.push(rec(3));
        assert!(rejected.is_err());
        assert_eq!(rejected.unwrap_err().rid, Rid(3));
        assert_eq!(ring.full_rejections(), 1);
        // Draining one slot lets the push proceed.
        ring.pop().unwrap();
        ring.push(rec(3)).unwrap();
        assert!(ring.is_full());
    }

    #[test]
    fn pop_with_delivers_borrow_and_consumes() {
        let mut ring = LogRing::new(4);
        ring.push(rec(1)).unwrap();
        ring.push(rec(2)).unwrap();
        let seen = ring.pop_with(|r| r.rid).unwrap();
        assert_eq!(seen, Rid(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.consumed(), 1);
        assert!(ring.pop_with(|r| r.rid).is_some());
        assert!(ring.pop_with(|_| ()).is_none());
        assert_eq!(ring.empty_rejections(), 1);
    }

    #[test]
    fn drain_in_place_visits_all_without_rejections() {
        let mut ring = LogRing::new(8);
        for i in 1..=5 {
            ring.push(rec(i)).unwrap();
        }
        let mut rids = Vec::new();
        assert_eq!(ring.drain_in_place(|r| rids.push(r.rid.0)), 5);
        assert_eq!(rids, vec![1, 2, 3, 4, 5]);
        assert!(ring.is_empty());
        assert_eq!(ring.consumed(), 5);
        assert_eq!(ring.drain_in_place(|_| ()), 0);
        assert_eq!(
            ring.empty_rejections(),
            0,
            "bulk drain of nothing is not a stall"
        );
    }

    #[test]
    fn empty_pop_counts() {
        let mut ring = LogRing::new(2);
        assert!(ring.pop().is_none());
        assert_eq!(ring.empty_rejections(), 1);
    }

    #[test]
    fn close_and_drain() {
        let mut ring = LogRing::new(2);
        ring.push(rec(1)).unwrap();
        ring.close();
        assert!(ring.is_closed());
        assert!(!ring.is_drained());
        ring.pop().unwrap();
        assert!(ring.is_drained());
    }

    #[test]
    fn annotate_buffered_record() {
        let mut ring = LogRing::new(8);
        for i in 1..=4 {
            ring.push(rec(i)).unwrap();
        }
        let v = VersionId {
            consumer: ThreadId(0),
            consumer_rid: Rid(3),
        };
        let m = MemRef::new(0x40, 4);
        assert!(ring.annotate(Rid(3), |r| r.consume_version = Some((v, m))));
        ring.pop();
        ring.pop();
        let third = ring.pop().unwrap();
        assert_eq!(third.consume_version, Some((v, m)));
    }

    #[test]
    fn annotate_missing_record_fails() {
        let mut ring = LogRing::new(8);
        ring.push(rec(5)).unwrap();
        assert!(!ring.annotate(Rid(4), |_| {}));
        assert!(!ring.annotate(Rid(6), |_| {}));
        let mut empty = LogRing::new(2);
        assert!(!empty.annotate(Rid(1), |_| {}));
    }

    #[test]
    fn annotate_with_interleaved_duplicate_rids_scans() {
        // CA records can share a rid with a neighbouring record in rare
        // shapes; the scan fallback must still find the right record.
        let mut ring = LogRing::new(8);
        ring.push(rec(1)).unwrap();
        ring.push(rec(1)).unwrap(); // duplicate rid on purpose
        ring.push(rec(3)).unwrap();
        assert!(ring.annotate(Rid(3), |r| {
            r.produce_versions.push((
                VersionId {
                    consumer: ThreadId(1),
                    consumer_rid: Rid(3),
                },
                MemRef::new(0, 4),
                1,
            ));
        }));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = LogRing::new(0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn push_after_close_refused_without_rejection_count() {
        // Release builds compile the assert out; the ring must still
        // refuse the record without polluting backpressure accounting.
        let mut ring = LogRing::new(1);
        ring.push(rec(1)).unwrap();
        ring.close();
        assert!(ring.push(rec(2)).is_err());
        assert_eq!(ring.full_rejections(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "push after close")]
    fn push_after_close_asserts_even_when_full() {
        let mut ring = LogRing::new(1);
        ring.push(rec(1)).unwrap();
        ring.close();
        // A closed full ring is a producer bug — the closed check must win
        // over (and not be miscounted as) a full rejection.
        let _ = ring.push(rec(2));
    }
}
