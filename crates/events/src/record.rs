//! Event records — the unit of the per-thread event stream — and the
//! metadata-operation events delivered to lifeguard handlers.
//!
//! Figure 1/2 of the paper: the event-capture hardware turns each retired
//! instruction (and each rare high-level event) into a compressed record; the
//! event-delivery hardware on the lifeguard side decompresses records and
//! invokes registered handlers. [`EventRecord`] is the on-stream form;
//! [`MetaOp`] is the handler-facing form (after accelerators have absorbed,
//! filtered or coalesced events).

use crate::arc::DependenceArc;
use crate::inline::InlineVec;
use crate::isa::{AccessKind, Instr, MemRef, Reg, SyscallKind};
use crate::types::{AddrRange, Rid, ThreadId};
use std::fmt;

/// Inline-capacity arc list: most records carry zero arcs, contended ones
/// one or two; more spills to the heap.
pub type ArcList = InlineVec<DependenceArc, 2>;

/// Inline-capacity produce-version list (one entry per SC-violating remote
/// reader — almost always zero or one).
pub type ProduceList = InlineVec<(VersionId, MemRef, u32), 1>;

/// Identifier of a TSO metadata version: the paper combines the *consumer*
/// thread's id with its current event record id (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionId {
    /// Thread that will consume the versioned metadata.
    pub consumer: ThreadId,
    /// Record id of the consuming (SC-violating) load.
    pub consumer_rid: Rid,
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v<{},{}>", self.consumer, self.consumer_rid)
    }
}

/// The high-level event class named by a ConflictAlert message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HighLevelKind {
    /// Heap allocation.
    Malloc,
    /// Heap release.
    Free,
    /// System call of the given kind.
    Syscall(SyscallKind),
    /// Lock acquisition (captured for lifeguards like LockSet).
    Lock(crate::isa::LockId),
    /// Lock release.
    Unlock(crate::isa::LockId),
    /// Barrier participation.
    Barrier(crate::isa::BarrierId),
}

impl HighLevelKind {
    /// Whether two kinds belong to the same subscription class: payloads
    /// (lock/barrier identity) are ignored, syscall kinds are distinguished.
    /// ConflictAlert policies subscribe per class, not per dynamic instance.
    pub fn class_eq(&self, other: &HighLevelKind) -> bool {
        match (self, other) {
            (HighLevelKind::Malloc, HighLevelKind::Malloc)
            | (HighLevelKind::Free, HighLevelKind::Free)
            | (HighLevelKind::Lock(_), HighLevelKind::Lock(_))
            | (HighLevelKind::Unlock(_), HighLevelKind::Unlock(_))
            | (HighLevelKind::Barrier(_), HighLevelKind::Barrier(_)) => true,
            (HighLevelKind::Syscall(a), HighLevelKind::Syscall(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for HighLevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HighLevelKind::Malloc => f.write_str("malloc"),
            HighLevelKind::Free => f.write_str("free"),
            HighLevelKind::Syscall(k) => write!(f, "syscall:{k}"),
            HighLevelKind::Lock(l) => write!(f, "lock:{}", l.0),
            HighLevelKind::Unlock(l) => write!(f, "unlock:{}", l.0),
            HighLevelKind::Barrier(b) => write!(f, "barrier:{}", b.0),
        }
    }
}

/// Whether a ConflictAlert record marks the beginning or end of its high-level
/// event (§5.4: CA-Begin / CA-End).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaPhase {
    /// Broadcast before the call.
    Begin,
    /// Broadcast after the call.
    End,
}

/// A ConflictAlert record as it appears in an event stream.
///
/// The issuing thread's own stream carries the same record (with
/// `issuer == self`), which is how its own lifeguard learns to perform the
/// metadata update for the event; remote lifeguards use the record to flush
/// accelerator state and to order themselves against the issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaRecord {
    /// What kind of high-level event this is.
    pub what: HighLevelKind,
    /// Begin or end of the event.
    pub phase: CaPhase,
    /// Optional memory-range parameter (malloc/free extent, syscall buffer).
    pub range: Option<AddrRange>,
    /// Thread that issued the high-level event.
    pub issuer: ThreadId,
    /// Record id of this CA record *in the issuer's stream*.
    pub issuer_rid: Rid,
    /// Global sequence number of the broadcast (total order over all CAs).
    pub seq: u64,
}

/// Payload of one event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPayload {
    /// A retired application instruction.
    Instr(Instr),
    /// A ConflictAlert broadcast record.
    Ca(CaRecord),
}

/// One record of a per-thread event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Per-thread record id (retirement counter value, §5.1).
    pub rid: Rid,
    /// What happened.
    pub payload: EventPayload,
    /// Inter-thread dependence arcs that must be satisfied before delivery.
    /// Inline up to two arcs, so capturing the common case never allocates.
    pub arcs: ArcList,
    /// TSO annotation: versions this record's lifeguard must *produce*
    /// (copy current metadata) before processing the record, together with
    /// the number of reader records that will consume each (§5.5). Inline
    /// one entry, so annotation of the common case never allocates.
    pub produce_versions: ProduceList,
    /// TSO annotation: version this record's lifeguard must *consume*
    /// (read versioned metadata instead of current) when processing.
    pub consume_version: Option<(VersionId, MemRef)>,
    /// Whether this load was satisfied by store-to-load forwarding: its
    /// metadata read follows the forwarding store in its own stream and must
    /// never be redirected to a remote writer's version (§5.5).
    pub forwarded: bool,
}

impl EventRecord {
    /// Creates a plain instruction record with no arcs or annotations.
    pub fn instr(rid: Rid, instr: Instr) -> Self {
        EventRecord {
            rid,
            payload: EventPayload::Instr(instr),
            arcs: ArcList::new(),
            produce_versions: ProduceList::new(),
            consume_version: None,
            forwarded: false,
        }
    }

    /// Creates a ConflictAlert record.
    pub fn ca(rid: Rid, ca: CaRecord) -> Self {
        EventRecord {
            rid,
            payload: EventPayload::Ca(ca),
            arcs: ArcList::new(),
            produce_versions: ProduceList::new(),
            consume_version: None,
            forwarded: false,
        }
    }

    /// The instruction payload, if this is an instruction record.
    pub fn as_instr(&self) -> Option<&Instr> {
        match &self.payload {
            EventPayload::Instr(i) => Some(i),
            EventPayload::Ca(_) => None,
        }
    }
}

/// A metadata operation delivered to a lifeguard event handler.
///
/// This is the post-accelerator view: Inheritance Tracking may coalesce a
/// chain of instruction records into a single [`MetaOp::MemToMem`]; Idempotent
/// Filters may drop [`MetaOp::CheckAccess`] events entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// metadata(dst) ← metadata(src): load.
    MemToReg { dst: Reg, src: MemRef },
    /// metadata(dst) ← metadata(src): store.
    RegToMem { dst: MemRef, src: Reg },
    /// metadata(dst) ← metadata(src): register move.
    RegToReg { dst: Reg, src: Reg },
    /// metadata(dst) ← clean (immediate overwrite).
    ImmToReg { dst: Reg },
    /// metadata(dst) ← clean: a store of provably-clean data, produced by
    /// Inheritance Tracking when a register's row inherits from an
    /// immediate.
    ImmToMem { dst: MemRef },
    /// metadata(dst) ← metadata(src): memory-to-memory copy produced by IT.
    MemToMem { dst: MemRef, src: MemRef },
    /// metadata(dst) ← metadata(a) ⊔ metadata(b) (binary ALU).
    AluRR { dst: Reg, a: Reg, b: Option<Reg> },
    /// metadata(dst) ← metadata(a) ⊔ metadata(src) (ALU with memory source).
    AluRM { dst: Reg, a: Reg, src: MemRef },
    /// Invariant check on a memory access (AddrCheck-style).
    CheckAccess { mem: MemRef, kind: AccessKind },
    /// Critical-use check of an indirect jump target.
    CheckJmp { target: Reg },
    /// Atomic read-modify-write (lock word traffic).
    RmwOp { mem: MemRef, reg: Reg },
}

impl MetaOp {
    /// The memory operand this op reads metadata for, if any.
    pub fn mem_src(&self) -> Option<MemRef> {
        match *self {
            MetaOp::MemToReg { src, .. }
            | MetaOp::MemToMem { src, .. }
            | MetaOp::AluRM { src, .. } => Some(src),
            MetaOp::CheckAccess { mem, .. } | MetaOp::RmwOp { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// The memory operand this op writes metadata for, if any.
    pub fn mem_dst(&self) -> Option<MemRef> {
        match *self {
            MetaOp::RegToMem { dst, .. }
            | MetaOp::MemToMem { dst, .. }
            | MetaOp::ImmToMem { dst } => Some(dst),
            _ => None,
        }
    }
}

/// The one-to-one instruction → metadata-op decoding used when Inheritance
/// Tracking is disabled (the non-accelerated path of Figure 8).
///
/// Returns the op for the *propagation* (dataflow-tracking) view. Lifeguards
/// that only check accesses (AddrCheck) instead use [`check_view`].
pub fn dataflow_view(instr: &Instr) -> Option<MetaOp> {
    match *instr {
        Instr::Load { dst, src } => Some(MetaOp::MemToReg { dst, src }),
        Instr::Store { dst, src } => Some(MetaOp::RegToMem { dst, src }),
        Instr::MovRR { dst, src } => Some(MetaOp::RegToReg { dst, src }),
        Instr::MovRI { dst } => Some(MetaOp::ImmToReg { dst }),
        Instr::Alu1 { dst, a } => Some(MetaOp::AluRR { dst, a, b: None }),
        Instr::Alu2 { dst, a, b } => Some(MetaOp::AluRR { dst, a, b: Some(b) }),
        Instr::AluMem { dst, a, src } => Some(MetaOp::AluRM { dst, a, src }),
        Instr::JmpReg { target } => Some(MetaOp::CheckJmp { target }),
        Instr::Rmw { mem, reg } => Some(MetaOp::RmwOp { mem, reg }),
        Instr::Nop => None,
    }
}

/// The access-check decoding used by memory-checker lifeguards: every memory
/// access becomes a [`MetaOp::CheckAccess`].
pub fn check_view(instr: &Instr) -> Option<MetaOp> {
    instr
        .mem_access()
        .map(|(mem, kind)| MetaOp::CheckAccess { mem, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Rid;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn instr_record_roundtrip() {
        let i = Instr::MovRI { dst: r(1) };
        let rec = EventRecord::instr(Rid(4), i);
        assert_eq!(rec.as_instr(), Some(&i));
        assert!(rec.arcs.is_empty());
        assert!(rec.consume_version.is_none());
    }

    #[test]
    fn ca_record_has_no_instr() {
        let ca = CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(AddrRange::new(0x1000, 64)),
            issuer: ThreadId(0),
            issuer_rid: Rid(10),
            seq: 1,
        };
        let rec = EventRecord::ca(Rid(5), ca);
        assert!(rec.as_instr().is_none());
        match rec.payload {
            EventPayload::Ca(c) => assert_eq!(c.what, HighLevelKind::Malloc),
            EventPayload::Instr(_) => panic!("expected CA payload"),
        }
    }

    #[test]
    fn dataflow_view_covers_all_dataflow_instrs() {
        let m = MemRef::new(0x80, 4);
        assert!(matches!(
            dataflow_view(&Instr::Load { dst: r(0), src: m }),
            Some(MetaOp::MemToReg { .. })
        ));
        assert!(matches!(
            dataflow_view(&Instr::Alu2 {
                dst: r(0),
                a: r(1),
                b: r(2)
            }),
            Some(MetaOp::AluRR { b: Some(_), .. })
        ));
        assert!(matches!(
            dataflow_view(&Instr::JmpReg { target: r(3) }),
            Some(MetaOp::CheckJmp { .. })
        ));
        assert_eq!(dataflow_view(&Instr::Nop), None);
    }

    #[test]
    fn check_view_only_covers_memory_accesses() {
        let m = MemRef::new(0x80, 4);
        assert!(matches!(
            check_view(&Instr::Load { dst: r(0), src: m }),
            Some(MetaOp::CheckAccess {
                kind: AccessKind::Read,
                ..
            })
        ));
        assert!(matches!(
            check_view(&Instr::Store { dst: m, src: r(0) }),
            Some(MetaOp::CheckAccess {
                kind: AccessKind::Write,
                ..
            })
        ));
        assert_eq!(check_view(&Instr::MovRI { dst: r(0) }), None);
    }

    #[test]
    fn meta_op_operand_queries() {
        let m = MemRef::new(0x80, 4);
        let n = MemRef::new(0x200, 4);
        let op = MetaOp::MemToMem { dst: n, src: m };
        assert_eq!(op.mem_src(), Some(m));
        assert_eq!(op.mem_dst(), Some(n));
        assert_eq!(MetaOp::ImmToReg { dst: r(0) }.mem_src(), None);
    }

    #[test]
    fn version_id_display() {
        let v = VersionId {
            consumer: ThreadId(0),
            consumer_rid: Rid(2),
        };
        assert_eq!(v.to_string(), "v<T0,#2>");
    }
}
