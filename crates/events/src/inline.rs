//! A hand-rolled inline small-vector for the event-capture hot path.
//!
//! Every retired instruction materializes an [`EventRecord`]; with `Vec`
//! fields, each record that carries even one dependence arc or TSO
//! annotation costs a heap allocation on the capture path and another on
//! clone-to-ring delivery. [`InlineVec`] stores up to `N` elements inline
//! (the overwhelmingly common case is zero or one arc per record) and only
//! spills to the heap beyond that, making the common capture/deliver cycle
//! allocation-free.
//!
//! The element type must be `Copy`: events are plain-old-data and the
//! inline buffer is `MaybeUninit`-backed, so copyability keeps the type
//! free of drop obligations.
//!
//! [`EventRecord`]: crate::record::EventRecord

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::Deref;

/// A small-vector holding up to `N` elements inline before spilling.
pub struct InlineVec<T: Copy, const N: usize> {
    /// Inline storage; the first `len` slots are initialized iff `spill`
    /// is empty.
    inline: [MaybeUninit<T>; N],
    /// Initialized prefix length of `inline` (unused once spilled).
    len: u8,
    /// Heap storage holding *all* elements once length exceeds `N`.
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub const fn new() -> Self {
        assert!(
            N > 0 && N <= u8::MAX as usize,
            "inline capacity out of range"
        );
        InlineVec {
            inline: [const { MaybeUninit::uninit() }; N],
            len: 0,
            spill: Vec::new(),
        }
    }

    #[inline]
    fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled() {
            self.spill.len()
        } else {
            self.len as usize
        }
    }

    /// Whether the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether elements currently live on the heap (diagnostic aid).
    pub fn is_spilled(&self) -> bool {
        self.spilled()
    }

    /// All elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spilled() {
            &self.spill
        } else {
            // SAFETY: the first `len` inline slots are initialized (struct
            // invariant) and `MaybeUninit<T>` has `T`'s layout.
            unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr() as *const T, self.len as usize)
            }
        }
    }

    /// Appends an element, spilling to the heap past `N`.
    pub fn push(&mut self, value: T) {
        if self.spilled() {
            self.spill.push(value);
            return;
        }
        let len = self.len as usize;
        if len < N {
            self.inline[len] = MaybeUninit::new(value);
            self.len += 1;
            return;
        }
        // First spill: move the inline prefix to the heap, reusing any
        // capacity a previous `clear` retained.
        self.spill.reserve(N * 2);
        for slot in &self.inline[..N] {
            // SAFETY: `len == N` here, so every inline slot is initialized.
            self.spill.push(unsafe { slot.assume_init_read() });
        }
        self.spill.push(value);
        self.len = 0;
    }

    /// Drops all elements (retains any heap capacity already paid for).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Iterates the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        // Flat copy: `T: Copy` makes the inline array (including any
        // uninitialized tail, which is never read) bitwise-copyable, and the
        // struct invariant carries over unchanged. This runs on the
        // clone-to-ring delivery hot path.
        InlineVec {
            inline: self.inline,
            len: self.len,
            spill: self.spill.clone(),
        }
    }
}

impl<T: Copy, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = InlineVec::new();
        out.extend(iter);
        out
    }
}

impl<T: Copy, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        v.into_iter().collect()
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert!(!v.is_spilled(), "fits inline");
        assert_eq!(v.as_slice(), &[1, 2]);
        v.push(3);
        assert!(v.is_spilled(), "third element exceeds inline capacity");
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn clone_eq_and_debug() {
        let mut a: InlineVec<u8, 2> = InlineVec::new();
        a.extend([5, 6, 7]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "[5, 6, 7]");
        let c: InlineVec<u8, 2> = [5, 6].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn from_vec_and_deref() {
        let v: InlineVec<u8, 2> = vec![9, 8].into();
        assert!(!v.is_spilled());
        // Deref coercion to slice APIs.
        assert_eq!(v.first(), Some(&9));
        assert_eq!(v.iter().copied().max(), Some(9));
        let w: InlineVec<u8, 2> = vec![1, 2, 3, 4].into();
        assert!(w.is_spilled());
        assert_eq!(&w[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn clear_resets_both_tiers() {
        let mut v: InlineVec<u8, 1> = InlineVec::new();
        v.push(1);
        v.clear();
        assert!(v.is_empty());
        v.extend([1, 2, 3]);
        assert!(v.is_spilled());
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn iterate_by_reference() {
        let mut v: InlineVec<u16, 2> = InlineVec::new();
        v.extend([10, 20]);
        let sum: u16 = (&v).into_iter().sum();
        assert_eq!(sum, 30);
    }
}
