//! The instruction-grain ISA of the monitored application.
//!
//! ParaLog monitors x86 binaries; lifeguard semantics, however, only depend on
//! the *dataflow shape* of each instruction — which registers/memory locations
//! are sources, which is the destination, and whether the instruction is a
//! "critical use" such as an indirect jump. This module defines a compact
//! RISC-ish ISA that captures exactly that shape, which is all the event
//! capture hardware of Figure 1 extracts anyway (address computation, memory
//! access, data movement, computation).
//!
//! High-level operations (`malloc`/`free`/locks/barriers/system calls) are
//! [`Op`] variants rather than instructions, mirroring the paper's event mux
//! which routes *rare* events differently from *frequent* ones.

use crate::types::{Addr, AddrRange};
use std::fmt;

/// Number of architectural registers tracked per thread.
pub const NUM_REGS: usize = 16;

/// An architectural register of the monitored application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register index, guaranteed `< NUM_REGS` for registers
    /// constructed through [`Reg::new`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a register, validating the index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_REGS`.
    pub fn new(idx: u8) -> Reg {
        assert!(
            (idx as usize) < NUM_REGS,
            "register index {idx} out of range (< {NUM_REGS})"
        );
        Reg(idx)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A memory operand: address plus access size in bytes (1, 2, 4 or 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address of the access.
    pub addr: Addr,
    /// Access width in bytes.
    pub size: u8,
}

impl MemRef {
    /// Creates a memory operand.
    pub fn new(addr: Addr, size: u8) -> MemRef {
        MemRef { addr, size }
    }

    /// The accessed bytes as an address range.
    #[inline]
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.addr, self.size as u64)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m[{:#x};{}]", self.addr, self.size)
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (both a read and a write for ordering).
    Rmw,
}

impl AccessKind {
    /// Whether the access observes memory.
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Rmw)
    }

    /// Whether the access mutates memory.
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }
}

/// One dynamic instruction of the monitored application.
///
/// Variants map one-to-one onto the dataflow patterns the lifeguards care
/// about. Taint/initializedness propagation is defined over sources and
/// destinations; AddrCheck-style lifeguards only look at [`Instr::mem_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst ← mem` (load).
    Load { dst: Reg, src: MemRef },
    /// `mem ← src` (store).
    Store { dst: MemRef, src: Reg },
    /// `dst ← src` (register move).
    MovRR { dst: Reg, src: Reg },
    /// `dst ← imm` (immediate load; clears propagated state).
    MovRI { dst: Reg },
    /// `dst ← op(a)` (unary computation; propagates `a`'s state).
    Alu1 { dst: Reg, a: Reg },
    /// `dst ← op(a, b)` (binary computation; joins both states).
    Alu2 { dst: Reg, a: Reg, b: Reg },
    /// `dst ← op(a, mem)` (computation with a memory source).
    AluMem { dst: Reg, a: Reg, src: MemRef },
    /// Indirect jump through `target` — a *critical use* for TaintCheck.
    JmpReg { target: Reg },
    /// Atomic read-modify-write on `mem` using `reg` (lock primitives).
    Rmw { mem: MemRef, reg: Reg },
    /// Computation with no tracked dataflow.
    Nop,
}

impl Instr {
    /// The memory access performed by this instruction, if any.
    pub fn mem_access(&self) -> Option<(MemRef, AccessKind)> {
        match *self {
            Instr::Load { src, .. } => Some((src, AccessKind::Read)),
            Instr::Store { dst, .. } => Some((dst, AccessKind::Write)),
            Instr::AluMem { src, .. } => Some((src, AccessKind::Read)),
            Instr::Rmw { mem, .. } => Some((mem, AccessKind::Rmw)),
            _ => None,
        }
    }

    /// The destination register, if the instruction writes one.
    pub fn dst_reg(&self) -> Option<Reg> {
        match *self {
            Instr::Load { dst, .. }
            | Instr::MovRR { dst, .. }
            | Instr::MovRI { dst }
            | Instr::Alu1 { dst, .. }
            | Instr::Alu2 { dst, .. }
            | Instr::AluMem { dst, .. } => Some(dst),
            Instr::Rmw { reg, .. } => Some(reg),
            Instr::Store { .. } | Instr::JmpReg { .. } | Instr::Nop => None,
        }
    }

    /// Source registers of the instruction (up to two).
    pub fn src_regs(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Store { src, .. } => [Some(src), None],
            Instr::MovRR { src, .. } => [Some(src), None],
            Instr::Alu1 { a, .. } => [Some(a), None],
            Instr::Alu2 { a, b, .. } => [Some(a), Some(b)],
            Instr::AluMem { a, .. } => [Some(a), None],
            Instr::JmpReg { target } => [Some(target), None],
            Instr::Rmw { reg, .. } => [Some(reg), None],
            Instr::Load { .. } | Instr::MovRI { .. } | Instr::Nop => [None, None],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Load { dst, src } => write!(f, "mov {dst} <- {src}"),
            Instr::Store { dst, src } => write!(f, "mov {dst} <- {src}"),
            Instr::MovRR { dst, src } => write!(f, "mov {dst} <- {src}"),
            Instr::MovRI { dst } => write!(f, "mov {dst} <- imm"),
            Instr::Alu1 { dst, a } => write!(f, "alu {dst} <- {a}"),
            Instr::Alu2 { dst, a, b } => write!(f, "alu {dst} <- {a}, {b}"),
            Instr::AluMem { dst, a, src } => write!(f, "alu {dst} <- {a}, {src}"),
            Instr::JmpReg { target } => write!(f, "jmp *{target}"),
            Instr::Rmw { mem, reg } => write!(f, "xchg {mem}, {reg}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

/// Kind of a modeled system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// `read()`-like: the kernel writes unverified input into a user buffer.
    /// TaintCheck taints the buffer (§5.4).
    ReadInput,
    /// `write()`-like: the kernel reads a user buffer; TaintCheck checks the
    /// buffer has no tainted bytes flowing to critical sinks.
    WriteOutput,
    /// Any other system call (no buffer semantics).
    Other,
}

impl fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SyscallKind::ReadInput => "read",
            SyscallKind::WriteOutput => "write",
            SyscallKind::Other => "syscall",
        };
        f.write_str(s)
    }
}

/// Identifier of an application lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifier of an application barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// One operation of an application thread's program: either an instruction or
/// a high-level (rare) event routed through the wrapper library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A frequent, instruction-grain event.
    Instr(Instr),
    /// Heap allocation of `range` (resolved at generation time).
    Malloc { range: AddrRange },
    /// Heap release of `range`.
    Free { range: AddrRange },
    /// Acquire `lock`, spinning on its lock word at `addr`.
    Lock { lock: LockId, addr: Addr },
    /// Release `lock` by storing to its lock word at `addr`.
    Unlock { lock: LockId, addr: Addr },
    /// All-thread barrier.
    Barrier { barrier: BarrierId },
    /// System call, optionally touching a user buffer.
    Syscall {
        kind: SyscallKind,
        buf: Option<AddrRange>,
    },
}

impl Op {
    /// Whether this is a rare, high-level event (routed via ConflictAlert).
    pub fn is_high_level(&self) -> bool {
        !matches!(self, Op::Instr(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn reg_new_validates() {
        assert_eq!(Reg::new(15).index(), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_rejects_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn mem_access_classification() {
        let m = MemRef::new(0x100, 4);
        assert_eq!(
            Instr::Load { dst: r(0), src: m }.mem_access(),
            Some((m, AccessKind::Read))
        );
        assert_eq!(
            Instr::Store { dst: m, src: r(1) }.mem_access(),
            Some((m, AccessKind::Write))
        );
        assert_eq!(
            Instr::Rmw { mem: m, reg: r(1) }.mem_access(),
            Some((m, AccessKind::Rmw))
        );
        assert_eq!(Instr::MovRI { dst: r(0) }.mem_access(), None);
        assert!(AccessKind::Rmw.reads() && AccessKind::Rmw.writes());
        assert!(AccessKind::Read.reads() && !AccessKind::Read.writes());
    }

    #[test]
    fn dataflow_shape() {
        let m = MemRef::new(0x40, 8);
        let alu = Instr::Alu2 {
            dst: r(2),
            a: r(0),
            b: r(1),
        };
        assert_eq!(alu.dst_reg(), Some(r(2)));
        assert_eq!(alu.src_regs(), [Some(r(0)), Some(r(1))]);
        let st = Instr::Store { dst: m, src: r(3) };
        assert_eq!(st.dst_reg(), None);
        assert_eq!(st.src_regs(), [Some(r(3)), None]);
        assert_eq!(Instr::Nop.dst_reg(), None);
    }

    #[test]
    fn high_level_classification() {
        assert!(Op::Malloc {
            range: AddrRange::new(0, 8)
        }
        .is_high_level());
        assert!(!Op::Instr(Instr::Nop).is_high_level());
        assert!(Op::Syscall {
            kind: SyscallKind::Other,
            buf: None
        }
        .is_high_level());
    }

    #[test]
    fn displays_are_informative() {
        let m = MemRef::new(0x100, 4);
        assert!(Instr::Load { dst: r(0), src: m }.to_string().contains("r0"));
        assert!(Instr::JmpReg { target: r(5) }.to_string().contains("*r5"));
        assert_eq!(SyscallKind::ReadInput.to_string(), "read");
    }
}
