//! Inter-thread dependence arcs.
//!
//! The order-capturing hardware observes cache-coherence messages and records
//! *happened-before* dependence arcs in the event stream of the thread at the
//! **receiving end** of the arc (§5.1): if thread `t`'s event `i` must be
//! processed before thread `t'`'s event `i'`, then `t'`'s record for `i'`
//! carries a [`DependenceArc`] naming `(t, i)`.

use crate::types::{Rid, ThreadId};
use std::fmt;

/// The conflict type that gave rise to an arc.
///
/// Lifeguard enforcement treats all kinds identically; the distinction feeds
/// statistics and the TSO logic (only `War` arcs may be SC-violating and
/// reversed into versioned metadata, §5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcKind {
    /// Read-after-write: source wrote, destination reads.
    Raw,
    /// Write-after-read: source read, destination writes.
    War,
    /// Write-after-write.
    Waw,
    /// Synchronization edge materialized by lock/barrier traffic.
    Sync,
}

impl fmt::Display for ArcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArcKind::Raw => "RAW",
            ArcKind::War => "WAR",
            ArcKind::Waw => "WAW",
            ArcKind::Sync => "SYNC",
        };
        f.write_str(s)
    }
}

/// A happened-before edge from `(src, src_rid)` to the event record that
/// carries the arc.
///
/// Enforcement rule (§5.2): the carrying record may only be delivered to its
/// lifeguard once `progress[src] >= src_rid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DependenceArc {
    /// Thread at the producing end of the arc.
    pub src: ThreadId,
    /// Record id of the producing event in `src`'s stream.
    pub src_rid: Rid,
    /// Conflict type.
    pub kind: ArcKind,
}

impl DependenceArc {
    /// Creates an arc.
    pub fn new(src: ThreadId, src_rid: Rid, kind: ArcKind) -> Self {
        DependenceArc { src, src_rid, kind }
    }

    /// Whether `self` is implied by `other` for the same source thread
    /// (an arc to an earlier or equal record of the same thread adds no
    /// ordering information).
    pub fn implied_by(&self, other: &DependenceArc) -> bool {
        self.src == other.src && self.src_rid <= other.src_rid
    }
}

impl fmt::Display for DependenceArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}{})", self.kind, self.src, self.src_rid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implication_is_per_thread() {
        let a = DependenceArc::new(ThreadId(1), Rid(5), ArcKind::Raw);
        let b = DependenceArc::new(ThreadId(1), Rid(7), ArcKind::War);
        let c = DependenceArc::new(ThreadId(2), Rid(7), ArcKind::War);
        assert!(a.implied_by(&b));
        assert!(!b.implied_by(&a));
        assert!(a.implied_by(&a));
        assert!(!a.implied_by(&c));
    }

    #[test]
    fn display_mentions_source() {
        let a = DependenceArc::new(ThreadId(3), Rid(9), ArcKind::Waw);
        assert_eq!(a.to_string(), "WAW(T3#9)");
    }
}
