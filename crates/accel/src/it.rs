//! Inheritance Tracking (IT) with delayed advertising (§4.1–§4.2, Figure 3).
//!
//! IT tracks, in hardware, the *inherits-from* memory address of each
//! application register. Propagation chains like
//! `load r0←A; mov r1←r0; store B←r1` collapse into a single delivered
//! `mem_to_mem(B, A)` event instead of three handler invocations.
//!
//! Holding a row `(reg → A)` means the lifeguard's read of `metadata(A)` has
//! been *deferred*; anything that may change `metadata(A)` before delivery is
//! a **conflict**:
//!
//! * *Local conflicts* (a store of this thread overwrites A) are detected by
//!   checking every store against the table and flushing affected rows first
//!   — same as the sequential design.
//! * *Remote conflicts* (another thread's store, Figure 3's event `j`) cannot
//!   be seen locally. **Delayed advertising** closes the hole: the thread's
//!   advertised progress is `min(rid held in the table) - 1`, so the remote
//!   lifeguard's arc check keeps the conflicting write gated until every
//!   deferred read has been delivered.
//! * *High-level conflicts* (e.g. a `free` in MEMCHECK-style lifeguards)
//!   arrive as ConflictAlert records and flush the whole table.

use paralog_events::{Instr, MemRef, MetaOp, Reg, Rid, NUM_REGS};

/// What a register's deferred metadata state is inherited from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItSource {
    /// A memory location: the lifeguard's read of `metadata(addr)` is
    /// deferred — remote writes to it are conflicts, and delayed
    /// advertising must cover the row's record id.
    Mem(MemRef),
    /// An immediate (or a chain of immediates): the metadata value is known
    /// clean. No memory read is deferred, so clean rows neither conflict
    /// with remote events nor hold back advertised progress.
    Clean,
}

/// One IT table row: where the register's metadata is inherited from, and
/// the record id of the deferring event (the RID field added in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItEntry {
    /// The inherits-from source.
    pub src: ItSource,
    /// Record id of the event that created (or propagated) the inheritance.
    pub rid: Rid,
}

impl ItEntry {
    /// The deferred memory operand, if this row inherits from memory.
    pub fn mem(&self) -> Option<MemRef> {
        match self.src {
            ItSource::Mem(m) => Some(m),
            ItSource::Clean => None,
        }
    }
}

/// Reasons the table (or part of it) was flushed — each is a distinct
/// mechanism in the paper and is counted separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// A local event conflicted with rows.
    LocalConflict,
    /// A dependence stall flushed everything to publish accurate progress
    /// (the no-deadlock rule of §4.2).
    DependenceStall,
    /// A ConflictAlert record flushed everything (§4.3).
    ConflictAlert,
    /// The advertising-lag threshold forced a refresh (§4.2).
    Threshold,
    /// A TSO versioned access required materializing same-address rows
    /// (§5.5, "Hardware Accelerators Revisited").
    Versioned,
    /// Timesliced monitoring switched application threads: IT rows describe
    /// the *previous* thread's registers and must be materialized.
    ContextSwitch,
}

/// IT statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ItStats {
    /// Events absorbed without delivery.
    pub absorbed: u64,
    /// Metadata ops delivered to the lifeguard.
    pub delivered: u64,
    /// Rows flushed due to local conflicts.
    pub local_conflict_flushes: u64,
    /// Full-table flushes on dependence stalls.
    pub stall_flushes: u64,
    /// Full-table flushes on ConflictAlerts.
    pub ca_flushes: u64,
    /// Threshold-forced flushes.
    pub threshold_flushes: u64,
}

/// The Inheritance Tracking accelerator for one lifeguard thread.
#[derive(Debug)]
pub struct InheritanceTracker {
    rows: [Option<ItEntry>; NUM_REGS],
    /// Record id of the last event processed through the tracker.
    last_processed: Rid,
    /// Optional bound on `last_processed - advertised progress` (§4.2).
    threshold: Option<u64>,
    stats: ItStats,
}

impl InheritanceTracker {
    /// Creates an empty tracker with the given advertising-lag threshold
    /// (`None` disables threshold flushes).
    pub fn new(threshold: Option<u64>) -> Self {
        InheritanceTracker {
            rows: [None; NUM_REGS],
            last_processed: Rid::ZERO,
            threshold,
            stats: ItStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ItStats {
        self.stats
    }

    /// The row currently held for `reg` (diagnostic).
    pub fn row(&self, reg: Reg) -> Option<ItEntry> {
        self.rows[reg.index()]
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.rows.iter().flatten().count()
    }

    /// Number of rows deferring a memory read (the ones flushes target).
    pub fn live_mem_rows(&self) -> usize {
        self.rows
            .iter()
            .flatten()
            .filter(|e| e.mem().is_some())
            .count()
    }

    /// The progress this lifeguard may advertise: the youngest record id such
    /// that *all* work at or before it is complete. Holding a row for rid `m`
    /// caps progress at `m - 1` (delayed advertising, §4.2).
    pub fn advertisable_progress(&self) -> Rid {
        // Only memory-inheriting rows defer a metadata read; clean rows hold
        // no remote-visible state and do not delay advertising.
        let min_mem = self
            .rows
            .iter()
            .flatten()
            .filter(|e| e.mem().is_some())
            .map(|e| e.rid)
            .min();
        match min_mem {
            Some(min_held) => Rid(min_held.0.saturating_sub(1)).min(self.last_processed),
            None => self.last_processed,
        }
    }

    /// Processes one instruction event. Returns the metadata ops to deliver
    /// to the lifeguard, in order (flushes first); an empty vector means the
    /// event was fully absorbed into the table.
    pub fn process(&mut self, instr: &Instr, rid: Rid) -> Vec<MetaOp> {
        let mut out = Vec::new();
        // Local-conflict detection: a memory write may overwrite an
        // inherits-from location; affected rows must be delivered *before*
        // the write's own metadata effect (Figure 3's sequential rule).
        if let Some((mem, kind)) = instr.mem_access() {
            if kind.writes() {
                self.flush_overlapping(mem, &mut out, FlushReason::LocalConflict);
            }
        }
        match *instr {
            Instr::Load { dst, src } => {
                self.rows[dst.index()] = Some(ItEntry {
                    src: ItSource::Mem(src),
                    rid,
                });
                self.stats.absorbed += 1;
            }
            Instr::MovRR { dst, src } | Instr::Alu1 { dst, a: src } => {
                match self.rows[src.index()] {
                    Some(entry) => {
                        // Copy the row, RID included (Figure 3, event i+1).
                        self.rows[dst.index()] = Some(entry);
                        self.stats.absorbed += 1;
                    }
                    None => {
                        self.rows[dst.index()] = None;
                        out.push(MetaOp::RegToReg { dst, src });
                    }
                }
            }
            Instr::MovRI { dst } => {
                // Immediates are clean sources: absorb (deliver lazily).
                self.rows[dst.index()] = Some(ItEntry {
                    src: ItSource::Clean,
                    rid,
                });
                self.stats.absorbed += 1;
            }
            Instr::Alu2 { dst, a, b } => {
                // join(clean, x) = x, so single-inheritance still covers
                // every combination with at most one memory source; only
                // mem⊔mem (rare in real code) needs materialization.
                let ra = self.rows[a.index()];
                let rb = self.rows[b.index()];
                match (ra.map(|e| e.src), rb.map(|e| e.src)) {
                    (Some(ItSource::Clean), Some(ItSource::Clean)) => {
                        self.rows[dst.index()] = Some(ItEntry {
                            src: ItSource::Clean,
                            rid,
                        });
                        self.stats.absorbed += 1;
                    }
                    (Some(ItSource::Mem(_)), Some(ItSource::Clean)) => {
                        self.rows[dst.index()] = ra;
                        self.stats.absorbed += 1;
                    }
                    (Some(ItSource::Clean), Some(ItSource::Mem(_))) => {
                        self.rows[dst.index()] = rb;
                        self.stats.absorbed += 1;
                    }
                    (Some(ItSource::Clean), None) => {
                        self.rows[dst.index()] = None;
                        out.push(MetaOp::RegToReg { dst, src: b });
                    }
                    (None, Some(ItSource::Clean)) => {
                        self.rows[dst.index()] = None;
                        out.push(MetaOp::RegToReg { dst, src: a });
                    }
                    _ => {
                        self.flush_reg(a, &mut out);
                        self.flush_reg(b, &mut out);
                        self.rows[dst.index()] = None;
                        out.push(MetaOp::AluRR { dst, a, b: Some(b) });
                    }
                }
            }
            Instr::AluMem { dst, a, src } => {
                match self.rows[a.index()].map(|e| e.src) {
                    Some(ItSource::Clean) => {
                        // clean ⊔ mem = mem: behaves like a load of `src`.
                        self.rows[dst.index()] = Some(ItEntry {
                            src: ItSource::Mem(src),
                            rid,
                        });
                        self.stats.absorbed += 1;
                    }
                    _ => {
                        self.flush_reg(a, &mut out);
                        self.rows[dst.index()] = None;
                        out.push(MetaOp::AluRM { dst, a, src });
                    }
                }
            }
            Instr::Store { dst, src } => {
                match self.rows[src.index()].map(|e| e.src) {
                    Some(ItSource::Mem(from)) => {
                        // The coalesced event IT exists for (Figure 3, i+2).
                        out.push(MetaOp::MemToMem { dst, src: from });
                        // The row stays: later stores of the same register
                        // keep propagating from the original address.
                    }
                    Some(ItSource::Clean) => out.push(MetaOp::ImmToMem { dst }),
                    None => out.push(MetaOp::RegToMem { dst, src }),
                }
            }
            Instr::JmpReg { target } => {
                match self.rows[target.index()].map(|e| e.src) {
                    Some(ItSource::Clean) => {
                        // A provably-clean target cannot trip the check.
                        self.stats.absorbed += 1;
                    }
                    Some(ItSource::Mem(_)) => {
                        self.flush_reg(target, &mut out);
                        out.push(MetaOp::CheckJmp { target });
                    }
                    None => out.push(MetaOp::CheckJmp { target }),
                }
            }
            Instr::Rmw { mem, reg } => {
                self.flush_reg(reg, &mut out);
                out.push(MetaOp::RmwOp { mem, reg });
            }
            Instr::Nop => {}
        }
        self.last_processed = rid;
        self.stats.delivered += out.len() as u64;
        // Threshold rule: never let advertising lag exceed the bound.
        if let Some(limit) = self.threshold {
            if self.last_processed.0 - self.advertisable_progress().0 > limit {
                let mut flushed = self.flush_all(FlushReason::Threshold);
                out.append(&mut flushed);
            }
        }
        out
    }

    /// Flushes deferred rows: each deferred load is delivered as an explicit
    /// `MemToReg`. Used on dependence stalls, ConflictAlerts and threshold
    /// overruns.
    ///
    /// Clean rows hold no deferred *memory* state — they neither conflict
    /// with remote events nor delay advertised progress — so they survive
    /// every flush except a context switch (where the physical registers
    /// change identity and the rows must be materialized for the old
    /// thread's lifeguard).
    pub fn flush_all(&mut self, reason: FlushReason) -> Vec<MetaOp> {
        let flush_clean = reason == FlushReason::ContextSwitch;
        let mut out = Vec::new();
        for idx in 0..NUM_REGS {
            let keep_clean = matches!(
                self.rows[idx],
                Some(ItEntry {
                    src: ItSource::Clean,
                    ..
                })
            ) && !flush_clean;
            if keep_clean {
                continue;
            }
            if let Some(entry) = self.rows[idx].take() {
                out.push(match entry.src {
                    ItSource::Mem(src) => MetaOp::MemToReg {
                        dst: Reg(idx as u8),
                        src,
                    },
                    ItSource::Clean => MetaOp::ImmToReg {
                        dst: Reg(idx as u8),
                    },
                });
            }
        }
        match reason {
            FlushReason::DependenceStall => self.stats.stall_flushes += 1,
            FlushReason::ConflictAlert => self.stats.ca_flushes += 1,
            FlushReason::Threshold => self.stats.threshold_flushes += 1,
            FlushReason::LocalConflict | FlushReason::Versioned | FlushReason::ContextSwitch => {}
        }
        self.stats.delivered += out.len() as u64;
        out
    }

    /// Notes that record `rid` was processed outside [`process`]
    /// (ConflictAlert records, filtered checks) so that advertised progress
    /// keeps advancing.
    ///
    /// [`process`]: InheritanceTracker::process
    pub fn note_processed(&mut self, rid: Rid) {
        self.last_processed = self.last_processed.max(rid);
    }

    /// Drops the row for `reg` without delivering it — used when an event
    /// bypasses [`process`] but overwrites the register (TSO versioned
    /// deliveries, §5.5), making any held inheritance stale.
    ///
    /// [`process`]: InheritanceTracker::process
    pub fn clear_reg(&mut self, reg: Reg) {
        self.rows[reg.index()] = None;
    }

    /// Materializes `reg`'s row (if any) as a delivered op — used by events
    /// that bypass [`process`] but read the register, whose lifeguard-side
    /// state is stale while a row is held (§5.5).
    ///
    /// [`process`]: InheritanceTracker::process
    pub fn flush_reg_public(&mut self, reg: Reg) -> Vec<MetaOp> {
        let mut out = Vec::new();
        self.flush_reg(reg, &mut out);
        self.stats.delivered += out.len() as u64;
        out
    }

    /// Flushes rows whose inherits-from operand overlaps `mem` (TSO versioned
    /// accesses and selective CA ranges).
    pub fn flush_overlapping_public(&mut self, mem: MemRef) -> Vec<MetaOp> {
        let mut out = Vec::new();
        self.flush_overlapping(mem, &mut out, FlushReason::Versioned);
        self.stats.delivered += out.len() as u64;
        out
    }

    fn flush_overlapping(&mut self, mem: MemRef, out: &mut Vec<MetaOp>, reason: FlushReason) {
        let range = mem.range();
        for idx in 0..NUM_REGS {
            if let Some(entry) = self.rows[idx] {
                let Some(src) = entry.mem() else { continue };
                if src.range().overlaps(&range) {
                    self.rows[idx] = None;
                    out.push(MetaOp::MemToReg {
                        dst: Reg(idx as u8),
                        src,
                    });
                    if reason == FlushReason::LocalConflict {
                        self.stats.local_conflict_flushes += 1;
                    }
                }
            }
        }
    }

    fn flush_reg(&mut self, reg: Reg, out: &mut Vec<MetaOp>) {
        if let Some(entry) = self.rows[reg.index()].take() {
            out.push(match entry.src {
                ItSource::Mem(src) => MetaOp::MemToReg { dst: reg, src },
                ItSource::Clean => MetaOp::ImmToReg { dst: reg },
            });
        }
    }
}

impl Default for InheritanceTracker {
    fn default() -> Self {
        InheritanceTracker::new(Some(4096))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 4)
    }

    #[test]
    fn figure3_coalescing_chain() {
        // i:   mov r0 <- A      (absorbed)
        // i+1: mov r1 <- r0     (absorbed, row copied with RID)
        // i+2: mov B  <- r1     (delivers mem_to_mem(B, A))
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        let b = m(0x200);
        assert!(it
            .process(&Instr::Load { dst: r(0), src: a }, Rid(10))
            .is_empty());
        assert!(it
            .process(
                &Instr::MovRR {
                    dst: r(1),
                    src: r(0)
                },
                Rid(11)
            )
            .is_empty());
        assert_eq!(
            it.row(r(1)),
            Some(ItEntry {
                src: ItSource::Mem(a),
                rid: Rid(10)
            })
        );
        let ops = it.process(&Instr::Store { dst: b, src: r(1) }, Rid(12));
        assert_eq!(ops, vec![MetaOp::MemToMem { dst: b, src: a }]);
        // Row survives the store (Figure 3 keeps %ebx = (A, i)).
        assert_eq!(
            it.row(r(1)),
            Some(ItEntry {
                src: ItSource::Mem(a),
                rid: Rid(10)
            })
        );
    }

    #[test]
    fn figure3_delayed_advertising_progress() {
        // Reproduces the progress values of Figure 3(b).
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        let c = m(0x300);
        let d = m(0x400);
        let i = 10u64;
        it.process(&Instr::Load { dst: r(0), src: a }, Rid(i)); // i
        assert_eq!(it.advertisable_progress(), Rid(i - 1));
        it.process(
            &Instr::MovRR {
                dst: r(1),
                src: r(0),
            },
            Rid(i + 1),
        ); // i+1
        assert_eq!(it.advertisable_progress(), Rid(i - 1));
        it.process(
            &Instr::Store {
                dst: m(0x200),
                src: r(1),
            },
            Rid(i + 2),
        ); // i+2
        assert_eq!(
            it.advertisable_progress(),
            Rid(i - 1),
            "rows still hold rid i"
        );
        it.process(&Instr::Load { dst: r(0), src: c }, Rid(i + 3)); // i+3 overwrites r0
        assert_eq!(
            it.advertisable_progress(),
            Rid(i - 1),
            "r1 still holds rid i"
        );
        it.process(&Instr::Load { dst: r(1), src: d }, Rid(i + 4)); // i+4 overwrites r1
                                                                    // Now the oldest held rid is i+3 → progress = i+2 >= i, so the remote
                                                                    // write j to A may finally be delivered.
        assert_eq!(it.advertisable_progress(), Rid(i + 2));
    }

    #[test]
    fn local_conflict_flushes_before_store() {
        // Sequential rule: store to A flushes rows inheriting from A first.
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        it.process(&Instr::Load { dst: r(0), src: a }, Rid(1));
        let ops = it.process(&Instr::Store { dst: a, src: r(5) }, Rid(2));
        assert_eq!(
            ops,
            vec![
                MetaOp::MemToReg { dst: r(0), src: a },
                MetaOp::RegToMem { dst: a, src: r(5) },
            ],
            "flush precedes the store's own effect"
        );
        assert_eq!(it.row(r(0)), None);
        assert_eq!(it.stats().local_conflict_flushes, 1);
    }

    #[test]
    fn partial_overlap_also_conflicts() {
        let mut it = InheritanceTracker::new(None);
        it.process(
            &Instr::Load {
                dst: r(0),
                src: MemRef::new(0x100, 8),
            },
            Rid(1),
        );
        let ops = it.process(
            &Instr::Store {
                dst: MemRef::new(0x104, 4),
                src: r(2),
            },
            Rid(2),
        );
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], MetaOp::MemToReg { .. }));
    }

    #[test]
    fn two_source_alu_materializes_sources() {
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        let b = m(0x200);
        it.process(&Instr::Load { dst: r(0), src: a }, Rid(1));
        it.process(&Instr::Load { dst: r(1), src: b }, Rid(2));
        let ops = it.process(
            &Instr::Alu2 {
                dst: r(2),
                a: r(0),
                b: r(1),
            },
            Rid(3),
        );
        assert_eq!(
            ops,
            vec![
                MetaOp::MemToReg { dst: r(0), src: a },
                MetaOp::MemToReg { dst: r(1), src: b },
                MetaOp::AluRR {
                    dst: r(2),
                    a: r(0),
                    b: Some(r(1))
                },
            ]
        );
        assert_eq!(it.live_rows(), 0);
    }

    #[test]
    fn unary_alu_absorbs_like_mov() {
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        it.process(&Instr::Load { dst: r(0), src: a }, Rid(1));
        assert!(it
            .process(&Instr::Alu1 { dst: r(3), a: r(0) }, Rid(2))
            .is_empty());
        assert_eq!(
            it.row(r(3)),
            Some(ItEntry {
                src: ItSource::Mem(a),
                rid: Rid(1)
            })
        );
    }

    #[test]
    fn mov_from_untracked_reg_delivers() {
        let mut it = InheritanceTracker::new(None);
        let ops = it.process(
            &Instr::MovRR {
                dst: r(1),
                src: r(0),
            },
            Rid(1),
        );
        assert_eq!(
            ops,
            vec![MetaOp::RegToReg {
                dst: r(1),
                src: r(0)
            }]
        );
    }

    #[test]
    fn jmp_materializes_target_then_checks() {
        let mut it = InheritanceTracker::new(None);
        let a = m(0x100);
        it.process(&Instr::Load { dst: r(0), src: a }, Rid(1));
        let ops = it.process(&Instr::JmpReg { target: r(0) }, Rid(2));
        assert_eq!(
            ops,
            vec![
                MetaOp::MemToReg { dst: r(0), src: a },
                MetaOp::CheckJmp { target: r(0) },
            ]
        );
    }

    #[test]
    fn flush_all_delivers_every_row() {
        let mut it = InheritanceTracker::new(None);
        it.process(
            &Instr::Load {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
        );
        it.process(
            &Instr::Load {
                dst: r(1),
                src: m(0x200),
            },
            Rid(2),
        );
        let ops = it.flush_all(FlushReason::DependenceStall);
        assert_eq!(ops.len(), 2);
        assert_eq!(it.live_rows(), 0);
        assert_eq!(it.stats().stall_flushes, 1);
        assert_eq!(it.advertisable_progress(), Rid(2), "accurate after flush");
    }

    #[test]
    fn threshold_forces_refresh() {
        let mut it = InheritanceTracker::new(Some(5));
        it.process(
            &Instr::Load {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
        );
        for i in 2..=5u64 {
            assert!(
                it.process(&Instr::Nop, Rid(i)).is_empty(),
                "lag within threshold at {i}"
            );
        }
        // At rid 6 the lag is 6 - 0 = 6 > 5: the event triggers a flush.
        let ops = it.process(&Instr::Nop, Rid(6));
        assert_eq!(ops.len(), 1);
        assert_eq!(it.stats().threshold_flushes, 1);
        assert_eq!(it.advertisable_progress(), Rid(6));
    }

    #[test]
    fn versioned_flush_targets_one_address() {
        let mut it = InheritanceTracker::new(None);
        it.process(
            &Instr::Load {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
        );
        it.process(
            &Instr::Load {
                dst: r(1),
                src: m(0x200),
            },
            Rid(2),
        );
        let ops = it.flush_overlapping_public(m(0x100));
        assert_eq!(
            ops,
            vec![MetaOp::MemToReg {
                dst: r(0),
                src: m(0x100)
            }]
        );
        assert_eq!(it.live_rows(), 1);
    }

    #[test]
    fn absorbed_and_delivered_counters() {
        let mut it = InheritanceTracker::new(None);
        it.process(
            &Instr::Load {
                dst: r(0),
                src: m(0x100),
            },
            Rid(1),
        );
        it.process(
            &Instr::Store {
                dst: m(0x200),
                src: r(0),
            },
            Rid(2),
        );
        let s = it.stats();
        assert_eq!(s.absorbed, 1);
        assert_eq!(s.delivered, 1);
    }
}
