//! Idempotent Filters (IF) — §2, §4.1.
//!
//! Many lifeguard checks are *idempotent*: if the metadata a check depends on
//! has not changed since an identical earlier check, re-running it is
//! redundant. IF caches recently seen check events and filters repeats.
//! ADDRCHECK is the canonical client: two checks of the same address are
//! idempotent unless a `malloc`/`free` intervened — so the filter is
//! invalidated by allocation-library ConflictAlerts (and, in general, by
//! configurable local events).

use paralog_events::{AccessKind, AddrRange, MemRef};

/// IF statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfStats {
    /// Checks filtered out (cache hits).
    pub hits: u64,
    /// Checks that missed and were delivered.
    pub misses: u64,
    /// Full-cache invalidations.
    pub invalidations: u64,
    /// Entries dropped by range-selective invalidation.
    pub range_invalidated: u64,
}

impl IfStats {
    /// Fraction of checks filtered.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IfKey {
    addr: u64,
    size: u8,
    writes: bool,
}

/// The Idempotent Filter cache for one lifeguard thread.
#[derive(Debug)]
pub struct IdempotentFilter {
    entries: Vec<(IfKey, u64)>,
    capacity: usize,
    tick: u64,
    stats: IfStats,
    /// Whether read and write checks are interchangeable (true for
    /// ADDRCHECK, whose check is identical for loads and stores).
    unify_kinds: bool,
}

impl IdempotentFilter {
    /// Creates a filter caching up to `capacity` distinct checks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, unify_kinds: bool) -> Self {
        assert!(capacity > 0, "filter capacity must be non-zero");
        IdempotentFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: IfStats::default(),
            unify_kinds,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> IfStats {
        self.stats
    }

    /// Live entries (diagnostic).
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    fn key(&self, mem: MemRef, kind: AccessKind) -> IfKey {
        IfKey {
            addr: mem.addr,
            size: mem.size,
            writes: if self.unify_kinds {
                false
            } else {
                kind.writes()
            },
        }
    }

    /// Processes a check event. Returns `true` if the check is redundant
    /// (filtered); `false` if it must be delivered (and is now cached).
    pub fn filter(&mut self, mem: MemRef, kind: AccessKind) -> bool {
        self.tick += 1;
        let key = self.key(mem, kind);
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((key, self.tick));
        false
    }

    /// Drops every cached check (ConflictAlert or local conflicting event).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.stats.invalidations += 1;
    }

    /// Drops cached checks overlapping `range` (range-selective CA, §5.4).
    pub fn invalidate_range(&mut self, range: AddrRange) {
        let before = self.entries.len();
        self.entries
            .retain(|(k, _)| !range.overlaps(&AddrRange::new(k.addr, k.size as u64)));
        self.stats.range_invalidated += (before - self.entries.len()) as u64;
    }
}

impl Default for IdempotentFilter {
    fn default() -> Self {
        IdempotentFilter::new(64, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(addr: u64) -> MemRef {
        MemRef::new(addr, 4)
    }

    #[test]
    fn repeat_checks_are_filtered() {
        let mut f = IdempotentFilter::new(8, true);
        assert!(
            !f.filter(m(0x100), AccessKind::Read),
            "first check delivered"
        );
        assert!(f.filter(m(0x100), AccessKind::Read), "repeat filtered");
        assert!(
            f.filter(m(0x100), AccessKind::Write),
            "unified kinds filter too"
        );
        assert_eq!(f.stats().hits, 2);
        assert!((f.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_kinds_when_not_unified() {
        let mut f = IdempotentFilter::new(8, false);
        assert!(!f.filter(m(0x100), AccessKind::Read));
        assert!(
            !f.filter(m(0x100), AccessKind::Write),
            "write check is distinct"
        );
        assert!(f.filter(m(0x100), AccessKind::Write));
    }

    #[test]
    fn different_sizes_are_distinct_checks() {
        let mut f = IdempotentFilter::new(8, true);
        assert!(!f.filter(MemRef::new(0x100, 4), AccessKind::Read));
        assert!(!f.filter(MemRef::new(0x100, 8), AccessKind::Read));
    }

    #[test]
    fn lru_capacity_eviction() {
        let mut f = IdempotentFilter::new(2, true);
        f.filter(m(0x100), AccessKind::Read);
        f.filter(m(0x200), AccessKind::Read);
        f.filter(m(0x100), AccessKind::Read); // touch 0x100
        f.filter(m(0x300), AccessKind::Read); // evicts 0x200
        assert!(f.filter(m(0x100), AccessKind::Read));
        assert!(!f.filter(m(0x200), AccessKind::Read), "0x200 was evicted");
    }

    #[test]
    fn invalidate_all_clears() {
        let mut f = IdempotentFilter::new(8, true);
        f.filter(m(0x100), AccessKind::Read);
        f.invalidate_all();
        assert_eq!(f.live(), 0);
        assert!(
            !f.filter(m(0x100), AccessKind::Read),
            "must re-deliver after CA"
        );
        assert_eq!(f.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_range_is_selective() {
        let mut f = IdempotentFilter::new(8, true);
        f.filter(m(0x100), AccessKind::Read);
        f.filter(m(0x200), AccessKind::Read);
        f.invalidate_range(AddrRange::new(0x100, 0x10));
        assert!(
            !f.filter(m(0x100), AccessKind::Read),
            "in-range entry dropped"
        );
        assert!(
            f.filter(m(0x200), AccessKind::Read),
            "out-of-range entry kept"
        );
        assert_eq!(f.stats().range_invalidated, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = IdempotentFilter::new(0, true);
    }
}
