//! ParaLog's parallelized lifeguard hardware accelerators (§4).
//!
//! Three accelerators make instruction-grain monitoring affordable, each
//! keeping state that *remote* events can silently invalidate in the parallel
//! setting:
//!
//! | Accelerator | Caches | Instruction-level remote conflicts | High-level remote conflicts |
//! |---|---|---|---|
//! | [`InheritanceTracker`] (IT) | inherits-from addresses per register | **delayed advertising** | ConflictAlert flush |
//! | [`IdempotentFilter`] (IF) | recently seen checks | delayed advertising | ConflictAlert invalidation |
//! | [`MetadataTlb`] (M-TLB) | app→metadata page mappings | — (mappings change only on high-level events) | ConflictAlert flush |
//!
//! # Example: the Figure 3 scenario
//!
//! ```rust
//! use paralog_accel::InheritanceTracker;
//! use paralog_events::{Instr, MemRef, MetaOp, Reg, Rid};
//!
//! let mut it = InheritanceTracker::new(None);
//! let a = MemRef::new(0x100, 4);
//! let b = MemRef::new(0x200, 4);
//! // load r0 <- A; mov r1 <- r0; store B <- r1
//! assert!(it.process(&Instr::Load { dst: Reg::new(0), src: a }, Rid(10)).is_empty());
//! assert!(it.process(&Instr::MovRR { dst: Reg::new(1), src: Reg::new(0) }, Rid(11)).is_empty());
//! let ops = it.process(&Instr::Store { dst: b, src: Reg::new(1) }, Rid(12));
//! assert_eq!(ops, vec![MetaOp::MemToMem { dst: b, src: a }]);
//! // Delayed advertising: progress stays before rid 10 while rows hold it.
//! assert_eq!(it.advertisable_progress(), Rid(9));
//! ```

#![warn(missing_debug_implementations)]

pub mod ifilter;
pub mod it;
pub mod mtlb;

pub use ifilter::{IdempotentFilter, IfStats};
pub use it::{FlushReason, InheritanceTracker, ItEntry, ItStats};
pub use mtlb::{MetadataTlb, MtlbStats, PAGE_BYTES};
