//! Metadata TLB (M-TLB) — §2, §4.1.
//!
//! Almost every handler computes a metadata address from an application
//! address; through the two-level shadow structure that walk can cost more
//! than half the handler's instructions. The M-TLB caches the most frequent
//! application-page → metadata-page mappings.
//!
//! Lifeguards that de-allocate metadata pages (to save space after `free`)
//! make M-TLB entries stale — a *high-level remote conflict* — so the M-TLB
//! subscribes to allocation-library ConflictAlerts and flushes affected
//! entries (§4.4).

use paralog_events::{Addr, AddrRange};

/// Application page size assumed by the mapping cache.
pub const PAGE_BYTES: u64 = 4096;

/// M-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtlbStats {
    /// Lookups that hit the mapping cache.
    pub hits: u64,
    /// Lookups that required the two-level walk.
    pub misses: u64,
    /// Entries dropped by flushes.
    pub flushed: u64,
}

impl MtlbStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The Metadata TLB for one lifeguard thread.
#[derive(Debug)]
pub struct MetadataTlb {
    /// `(app_page, lru)` pairs; the mapped metadata page is recomputable, so
    /// only presence matters for the timing model.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    tick: u64,
    stats: MtlbStats,
}

impl MetadataTlb {
    /// Creates an M-TLB with `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "M-TLB capacity must be non-zero");
        MetadataTlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: MtlbStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MtlbStats {
        self.stats
    }

    /// Live entries (diagnostic).
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// Looks up the mapping for `app_addr`'s page. Returns `true` on a hit
    /// (fast metadata address computation); on a miss the entry is installed
    /// and the caller charges the two-level-walk cost.
    pub fn lookup(&mut self, app_addr: Addr) -> bool {
        self.tick += 1;
        let page = app_addr / PAGE_BYTES;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((page, self.tick));
        false
    }

    /// Drops every mapping.
    pub fn flush_all(&mut self) {
        self.stats.flushed += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Drops mappings for pages overlapping `range` (a freed allocation).
    pub fn flush_range(&mut self, range: AddrRange) {
        let first = range.start / PAGE_BYTES;
        let last = if range.is_empty() {
            first
        } else {
            (range.end() - 1) / PAGE_BYTES
        };
        let before = self.entries.len();
        self.entries.retain(|(p, _)| *p < first || *p > last);
        self.stats.flushed += (before - self.entries.len()) as u64;
    }
}

impl Default for MetadataTlb {
    fn default() -> Self {
        MetadataTlb::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_within_page() {
        let mut t = MetadataTlb::new(4);
        assert!(!t.lookup(0x1000));
        assert!(t.lookup(0x1ffc), "same page hits");
        assert!(!t.lookup(0x2000), "next page misses");
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
        assert!((t.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction() {
        let mut t = MetadataTlb::new(2);
        t.lookup(0x1000); // page 1
        t.lookup(0x2000); // page 2
        t.lookup(0x1000); // touch page 1
        t.lookup(0x3000); // evicts page 2
        assert!(t.lookup(0x1000));
        assert!(!t.lookup(0x2000), "page 2 was evicted");
    }

    #[test]
    fn flush_range_drops_covered_pages() {
        let mut t = MetadataTlb::new(8);
        t.lookup(0x1000);
        t.lookup(0x2000);
        t.lookup(0x5000);
        // A freed allocation spanning pages 1-2.
        t.flush_range(AddrRange::new(0x1800, 0x1000));
        assert!(!t.lookup(0x1000));
        assert!(!t.lookup(0x2000));
        assert!(t.lookup(0x5000), "unrelated page survives");
        assert_eq!(t.stats().flushed, 2);
    }

    #[test]
    fn flush_all_clears() {
        let mut t = MetadataTlb::new(8);
        t.lookup(0x1000);
        t.flush_all();
        assert_eq!(t.live(), 0);
        assert!(!t.lookup(0x1000));
    }

    #[test]
    fn empty_range_flush_is_noop_for_other_pages() {
        let mut t = MetadataTlb::new(8);
        t.lookup(0x5000);
        t.flush_range(AddrRange::new(0x1000, 0));
        assert!(t.lookup(0x5000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = MetadataTlb::new(0);
    }
}
