//! Microbenchmarks for the lifeguard concurrency layer.
//!
//! Two questions, answered on real OS threads:
//!
//! * **`concurrent_replay`** — what does the generic [`LockedConcurrent`]
//!   fallback's mutex cost an IF-class analysis, versus the lock-free
//!   [`AddrCheckConcurrent`] this PR ships? Each series replays identical
//!   check-heavy per-thread streams through both forms; the ratio is the
//!   §5.3 serialization tax quoted in the PR description / ROADMAP.
//! * **`concurrent_versions`** — what does the §5.5 produce→consume
//!   hand-off cost through the sharded [`ConcurrentVersionTable`], both
//!   uncontended (one thread doing the whole lifecycle, comparable with
//!   `versions_micro`'s sequential numbers) and as a genuine cross-thread
//!   hand-off with a parked consumer?
//!
//! [`LockedConcurrent`]: paralog_lifeguards::LockedConcurrent
//! [`AddrCheckConcurrent`]: paralog_lifeguards::AddrCheckConcurrent

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paralog_events::{
    AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, MemRef, Reg, Rid, ThreadId,
    VersionId,
};
use paralog_lifeguards::{
    AddrCheckConcurrent, ConcurrentLifeguard, LifeguardFactory, LifeguardKind, LockedConcurrent,
};
use paralog_meta::ConcurrentVersionTable;
use std::time::Duration;

const HEAP: AddrRange = AddrRange {
    start: 0x1000_0000,
    len: 0x1000_0000,
};

/// Records per thread and per iteration in the replay series.
const RECORDS: u64 = 4096;

/// One thread's arc-free, violation-free check stream: a malloc of its own
/// slab, then loads and stores inside it — the §5.3 fast-path shape where
/// the locked fallback's mutex is pure overhead.
fn check_stream(tid: u16) -> Vec<EventRecord> {
    let slab = AddrRange::new(HEAP.start + u64::from(tid) * 0x10_000, 0x8000);
    let mut recs = vec![EventRecord::ca(
        Rid(1),
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(slab),
            issuer: ThreadId(tid),
            issuer_rid: Rid(1),
            seq: u64::MAX, // own-stream record: no cross-thread ordering
        },
    )];
    for i in 0..RECORDS {
        let mem = MemRef::new(slab.start + (i * 16) % (slab.len - 8), 8);
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(Rid(i + 2), instr));
    }
    recs
}

/// Replays one pre-built stream per thread against `conc` on real threads.
fn replay(conc: &dyn ConcurrentLifeguard, streams: &[Vec<EventRecord>]) {
    std::thread::scope(|scope| {
        for (tid, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let tid = ThreadId(tid as u16);
                for rec in stream {
                    conc.apply(tid, rec, None);
                }
            });
        }
    });
}

fn bench_concurrent_replay(c: &mut Criterion) {
    for threads in [2usize, 4] {
        let streams: Vec<Vec<EventRecord>> = (0..threads as u16).map(check_stream).collect();
        let mut group = c.benchmark_group("concurrent_replay");
        group.sample_size(10);
        group.throughput(Throughput::Elements(threads as u64 * RECORDS));

        // The lock-free §5.3 form this PR ships for the IF class.
        let lockfree = AddrCheckConcurrent::new(HEAP);
        group.bench_function(BenchmarkId::new("lockfree", threads), |b| {
            b.iter(|| {
                replay(&lockfree, &streams);
                black_box(lockfree.fingerprint())
            })
        });

        // The generic mutex-serialized fallback AddrCheck used before.
        // SAFETY: the bundled AddrCheck family is self-contained.
        let locked =
            unsafe { LockedConcurrent::new(LifeguardKind::AddrCheck.build(HEAP), threads) };
        group.bench_function(BenchmarkId::new("locked", threads), |b| {
            b.iter(|| {
                replay(&locked, &streams);
                black_box(locked.fingerprint())
            })
        });
        group.finish();
    }
}

const VERSIONS: u64 = 2048;

fn vid(t: u16, r: u64) -> VersionId {
    VersionId {
        consumer: ThreadId(t),
        consumer_rid: Rid(r),
    }
}

fn bench_concurrent_versions(c: &mut Criterion) {
    let range = AddrRange::new(0x1000, 16);
    let snapshot = || vec![0b01u8; 16];

    let mut group = c.benchmark_group("concurrent_versions");
    group.throughput(Throughput::Elements(VERSIONS));

    // Uncontended lifecycle: one thread produces and consumes through the
    // shared table — the sharding + atomic-flag overhead versus the
    // sequential `VersionTable` measured in `versions_micro`.
    group.bench_function("uncontended", |b| {
        b.iter(|| {
            let table = ConcurrentVersionTable::new(2);
            for r in 1..=VERSIONS {
                table.produce(vid(0, r), range, snapshot(), 1);
                black_box(table.consume(vid(0, r)));
            }
            black_box(table.outstanding())
        })
    });

    // Cross-thread hand-off: a producer thread publishes while the consumer
    // thread polls/parks and consumes — the actual §5.5 threaded-replay
    // shape (consumer-side wait included).
    group.bench_function("handoff", |b| {
        b.iter(|| {
            let table = ConcurrentVersionTable::new(1);
            std::thread::scope(|scope| {
                let t = &table;
                scope.spawn(move || {
                    for r in 1..=VERSIONS {
                        t.produce(vid(0, r), range, snapshot(), 1);
                    }
                });
                scope.spawn(move || {
                    for r in 1..=VERSIONS {
                        loop {
                            if let Some(v) = t.consume(vid(0, r)) {
                                black_box(v);
                                break;
                            }
                            t.wait_available(vid(0, r), Duration::from_micros(50));
                        }
                    }
                });
            });
            black_box(table.peak_outstanding())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent_replay, bench_concurrent_versions);
criterion_main!(benches);
