//! Microbenchmarks for the lifeguard concurrency layer.
//!
//! Two questions, answered on real OS threads:
//!
//! * **`concurrent_replay` / `memcheck_replay` / `lockset_replay` /
//!   `happensbefore_replay`** — what does the generic [`LockedConcurrent`]
//!   fallback's mutex cost each bundled analysis, versus its hand-written
//!   lock-free §5.3 form? Each series replays identical fast-path-shaped
//!   per-thread streams through both forms; the ratio is the serialization
//!   tax quoted in the PR description / ROADMAP ([`AddrCheckConcurrent`]
//!   for the IF class, [`MemCheckConcurrent`] for dataflow propagation,
//!   [`LockSetConcurrent`] and [`HappensBeforeConcurrent`] for the
//!   fast-path/slow-path race-detection class).
//! * **`concurrent_versions`** — what does the §5.5 produce→consume
//!   hand-off cost through the sharded [`ConcurrentVersionTable`], both
//!   uncontended (one thread doing the whole lifecycle, comparable with
//!   `versions_micro`'s sequential numbers) and as a genuine cross-thread
//!   hand-off with a parked consumer?
//!
//! [`LockedConcurrent`]: paralog_lifeguards::LockedConcurrent
//! [`AddrCheckConcurrent`]: paralog_lifeguards::AddrCheckConcurrent
//! [`MemCheckConcurrent`]: paralog_lifeguards::MemCheckConcurrent
//! [`LockSetConcurrent`]: paralog_lifeguards::LockSetConcurrent
//! [`HappensBeforeConcurrent`]: paralog_lifeguards::HappensBeforeConcurrent

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paralog_events::{
    AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, LockId, MemRef, Reg, Rid,
    ThreadId, VersionId,
};
use paralog_lifeguards::{
    AddrCheckConcurrent, ConcurrentLifeguard, HappensBeforeConcurrent, LifeguardFactory,
    LifeguardKind, LockSetConcurrent, LockedConcurrent, MemCheckConcurrent,
};
use paralog_meta::ConcurrentVersionTable;
use std::time::Duration;

const HEAP: AddrRange = AddrRange {
    start: 0x1000_0000,
    len: 0x1000_0000,
};

/// Records per thread and per iteration in the replay series.
const RECORDS: u64 = 4096;

/// One thread's arc-free, violation-free check stream: a malloc of its own
/// slab, then loads and stores inside it — the §5.3 fast-path shape where
/// the locked fallback's mutex is pure overhead.
fn check_stream(tid: u16) -> Vec<EventRecord> {
    let slab = AddrRange::new(HEAP.start + u64::from(tid) * 0x10_000, 0x8000);
    let mut recs = vec![EventRecord::ca(
        Rid(1),
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(slab),
            issuer: ThreadId(tid),
            issuer_rid: Rid(1),
            seq: u64::MAX, // own-stream record: no cross-thread ordering
        },
    )];
    for i in 0..RECORDS {
        let mem = MemRef::new(slab.start + (i * 16) % (slab.len - 8), 8);
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(Rid(i + 2), instr));
    }
    recs
}

/// Replays one pre-built stream per thread against `conc` on real threads.
fn replay(conc: &dyn ConcurrentLifeguard, streams: &[Vec<EventRecord>]) {
    std::thread::scope(|scope| {
        for (tid, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let tid = ThreadId(tid as u16);
                for rec in stream {
                    conc.apply(tid, rec, None);
                }
            });
        }
    });
}

/// One thread's lock-disciplined check stream for LOCKSET: acquire an own
/// lock, then loads and stores inside an exclusive slab — after the first
/// touch every access is the §5.3 fast path (same-thread `Exclusive`
/// re-access, a single load-acquire), where the locked fallback's mutex is
/// pure overhead.
fn lockset_stream(tid: u16) -> Vec<EventRecord> {
    // Data space well below the sync-object region.
    let slab = AddrRange::new(0x0100_0000 + u64::from(tid) * 0x10_000, 0x8000);
    let mut recs = vec![EventRecord::ca(
        Rid(1),
        CaRecord {
            what: HighLevelKind::Lock(LockId(u32::from(tid))),
            phase: CaPhase::End,
            range: None,
            issuer: ThreadId(tid),
            issuer_rid: Rid(1),
            seq: u64::MAX, // own-stream record: no cross-thread ordering
        },
    )];
    for i in 0..RECORDS {
        // 32-byte (8-granule) accesses — the memcpy/struct-sweep shape —
        // so each record is a run of Eraser state-machine checks: after the
        // first pass all of them are the §5.3 fast path (same-thread
        // `Exclusive` re-access), where the locked fallback still pays its
        // mutex plus the sequential handler's per-record bookkeeping.
        let mem = MemRef::new(slab.start + (i * 32) % (slab.len - 32), 32);
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(Rid(i + 2), instr));
    }
    recs
}

/// One thread's sync-disciplined check stream for HAPPENSBEFORE: one `Rmw`
/// on an own per-thread sync word establishes the thread's epoch, then loads
/// and stores inside an exclusive slab — after the first touch of each
/// granule every access is the §5.3 fast path (same-epoch re-access, a
/// single load-acquire), where the locked fallback's mutex is pure overhead.
fn happensbefore_stream(tid: u16) -> Vec<EventRecord> {
    let own_lock = paralog_lifeguards::lockset::SYNC_SPACE_START + u64::from(tid) * 64;
    // Data space well below the sync-object region.
    let slab = AddrRange::new(0x0100_0000 + u64::from(tid) * 0x10_000, 0x8000);
    let mut recs = vec![EventRecord::instr(
        Rid(1),
        Instr::Rmw {
            mem: MemRef::new(own_lock, 8),
            reg: Reg(0),
        },
    )];
    for i in 0..RECORDS {
        // 32-byte (8-granule) accesses — the memcpy/struct-sweep shape —
        // so each record is a run of FastTrack epoch checks: after the
        // first pass all of them are same-epoch re-accesses.
        let mem = MemRef::new(slab.start + (i * 32) % (slab.len - 32), 32);
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(Rid(i + 2), instr));
    }
    recs
}

/// Benchmarks one bundled analysis' hand-written lock-free form against the
/// generic [`LockedConcurrent`] wrapping of the same family, over identical
/// per-thread streams on real threads.
fn bench_lockfree_vs_locked(
    c: &mut Criterion,
    group_name: &str,
    kind: LifeguardKind,
    lockfree: &dyn Fn(usize) -> Box<dyn ConcurrentLifeguard>,
    stream: fn(u16) -> Vec<EventRecord>,
) {
    for threads in [2usize, 4] {
        let streams: Vec<Vec<EventRecord>> = (0..threads as u16).map(stream).collect();
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        group.throughput(Throughput::Elements(threads as u64 * RECORDS));

        // The hand-written lock-free §5.3 form.
        let free = lockfree(threads);
        group.bench_function(BenchmarkId::new("lockfree", threads), |b| {
            b.iter(|| {
                replay(&*free, &streams);
                black_box(free.fingerprint())
            })
        });

        // The generic mutex-serialized fallback this analysis used before
        // it graduated.
        // SAFETY: the bundled families are self-contained.
        let locked = unsafe { LockedConcurrent::new(kind.build(HEAP), threads) };
        group.bench_function(BenchmarkId::new("locked", threads), |b| {
            b.iter(|| {
                replay(&locked, &streams);
                black_box(locked.fingerprint())
            })
        });
        group.finish();
    }
}

fn bench_concurrent_replay(c: &mut Criterion) {
    // The IF-class check stream through AddrCheck (the PR 4 series).
    bench_lockfree_vs_locked(
        c,
        "concurrent_replay",
        LifeguardKind::AddrCheck,
        &|_| Box::new(AddrCheckConcurrent::new(HEAP)),
        check_stream,
    );
    // Dataflow (definedness) propagation through MemCheck.
    bench_lockfree_vs_locked(
        c,
        "memcheck_replay",
        LifeguardKind::MemCheck,
        &|threads| Box::new(MemCheckConcurrent::new(threads)),
        check_stream,
    );
    // Eraser state-machine checks through LockSet.
    bench_lockfree_vs_locked(
        c,
        "lockset_replay",
        LifeguardKind::LockSet,
        &|threads| Box::new(LockSetConcurrent::new(threads)),
        lockset_stream,
    );
    // FastTrack epoch checks through HappensBefore.
    bench_lockfree_vs_locked(
        c,
        "happensbefore_replay",
        LifeguardKind::HappensBefore,
        &|threads| Box::new(HappensBeforeConcurrent::new(threads)),
        happensbefore_stream,
    );
}

/// Records per thread in the delta-vs-cas matrix series (the quick-profile
/// shape; `bench_concurrent` regenerates the checked-in full matrix).
const MATRIX_RECORDS: u64 = 2048;

/// The delta-merge vs. CAS-per-access replay matrix as a criterion group:
/// the exact streams behind the checked-in `BENCH_concurrent.json`
/// ([`paralog_bench::concurrent_matrix`]), swept over 8/16 threads and the
/// low/medium/high Zipf sharing profiles. `bench_concurrent` owns the
/// checked-in numbers; this group exists for interactive `cargo bench`
/// comparisons with criterion's statistics.
fn bench_delta_vs_cas(c: &mut Criterion) {
    use paralog_bench::concurrent_matrix::{
        build_concurrent, replay as replay_mode, stream, KINDS, PROFILES, THREADS,
    };
    use paralog_lifeguards::ReplayMode;

    for kind in KINDS {
        for threads in THREADS {
            for profile in PROFILES {
                let streams: Vec<Vec<EventRecord>> = (0..threads as u16)
                    .map(|t| stream(kind, t, MATRIX_RECORDS, profile))
                    .collect();
                let mut group = c.benchmark_group(format!("delta_vs_cas/{kind}/{}", profile.name));
                group.sample_size(10);
                group.throughput(Throughput::Elements(threads as u64 * MATRIX_RECORDS));
                for mode in [ReplayMode::CasPerAccess, ReplayMode::DeltaMerge] {
                    group.bench_function(BenchmarkId::new(mode.to_string(), threads), |b| {
                        b.iter(|| {
                            let lg = build_concurrent(kind, threads);
                            replay_mode(&*lg, &streams, mode);
                            black_box(lg.fingerprint())
                        })
                    });
                }
                group.finish();
            }
        }
    }
}

const VERSIONS: u64 = 2048;

fn vid(t: u16, r: u64) -> VersionId {
    VersionId {
        consumer: ThreadId(t),
        consumer_rid: Rid(r),
    }
}

fn bench_concurrent_versions(c: &mut Criterion) {
    let range = AddrRange::new(0x1000, 16);
    let snapshot = || vec![0b01u8; 16];

    let mut group = c.benchmark_group("concurrent_versions");
    group.throughput(Throughput::Elements(VERSIONS));

    // Uncontended lifecycle: one thread produces and consumes through the
    // shared table — the sharding + atomic-flag overhead versus the
    // sequential `VersionTable` measured in `versions_micro`.
    group.bench_function("uncontended", |b| {
        b.iter(|| {
            let table = ConcurrentVersionTable::new(2);
            for r in 1..=VERSIONS {
                table.produce(vid(0, r), range, snapshot(), 1);
                black_box(table.consume(vid(0, r)));
            }
            black_box(table.outstanding())
        })
    });

    // Cross-thread hand-off: a producer thread publishes while the consumer
    // thread polls/parks and consumes — the actual §5.5 threaded-replay
    // shape (consumer-side wait included).
    group.bench_function("handoff", |b| {
        b.iter(|| {
            let table = ConcurrentVersionTable::new(1);
            std::thread::scope(|scope| {
                let t = &table;
                scope.spawn(move || {
                    for r in 1..=VERSIONS {
                        t.produce(vid(0, r), range, snapshot(), 1);
                    }
                });
                scope.spawn(move || {
                    for r in 1..=VERSIONS {
                        loop {
                            if let Some(v) = t.consume(vid(0, r)) {
                                black_box(v);
                                break;
                            }
                            t.wait_available(vid(0, r), Duration::from_micros(50));
                        }
                    }
                });
            });
            black_box(table.peak_outstanding())
        })
    });
    group.finish();

    // Reclamation under the cross-thread hand-off: the producer strides one
    // version per dense chunk (maximal allocation rate) while the consumer
    // retires them and advances its shard epoch at batch-boundary cadence.
    // `reclaim_on` pays the drain-queue/sweep bookkeeping and reuses spare
    // chunks; `reclaim_off` is the grow-only baseline.
    const SWEEP_CHUNKS: u64 = 512;
    const SWEEP_EPOCH: u64 = 64;
    let mut group = c.benchmark_group("concurrent_reclamation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SWEEP_CHUNKS));
    for on in [true, false] {
        let name = if on { "reclaim_on" } else { "reclaim_off" };
        group.bench_function(name, |b| {
            b.iter(|| {
                let table = ConcurrentVersionTable::new(1).with_reclamation(on);
                let cvid = |c: u64| vid(0, c * ConcurrentVersionTable::CHUNK_RIDS + 1);
                std::thread::scope(|scope| {
                    let t = &table;
                    scope.spawn(move || {
                        for c in 0..SWEEP_CHUNKS {
                            t.produce(cvid(c), range, snapshot(), 1);
                        }
                    });
                    scope.spawn(move || {
                        for c in 0..SWEEP_CHUNKS {
                            loop {
                                if let Some(v) = t.consume(cvid(c)) {
                                    black_box(v);
                                    break;
                                }
                                t.wait_available(cvid(c), Duration::from_micros(50));
                            }
                            if c % SWEEP_EPOCH == 0 {
                                t.advance_epoch(ThreadId(0));
                            }
                        }
                    });
                });
                black_box(table.peak_dense_resident())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_concurrent_replay,
    bench_delta_vs_cas,
    bench_concurrent_versions
);
criterion_main!(benches);
