//! Prints Table 1 and measures workload generation (the "input" of every
//! other experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paralog_workloads::{Benchmark, WorkloadSpec};

fn bench_generation(c: &mut Criterion) {
    println!("{}", paralog_core::experiment::table1());
    let mut g = c.benchmark_group("table1-workload-gen");
    for bench in [Benchmark::Lu, Benchmark::Swaptions] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{bench}")),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    WorkloadSpec::benchmark(bench, 8)
                        .scale(0.2)
                        .build()
                        .total_ops()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
