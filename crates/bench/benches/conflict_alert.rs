//! The §7 SWAPTIONS ConflictAlert study: malloc/free churn under the
//! conservative CA barrier vs the flush-only ablation the paper sketches
//! ("induce dependence arcs by touching the allocated/freed cache blocks").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paralog_bench::BENCH_SCALE;
use paralog_core::{CaMode, MonitorConfig, MonitoringMode, Platform};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::{Benchmark, WorkloadSpec};

fn bench_ca(c: &mut Criterion) {
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(BENCH_SCALE * 4.0)
        .build();
    // Print the ablation numbers once.
    for (name, mode) in [
        ("barrier", CaMode::Barrier),
        ("flush-only", CaMode::FlushOnly),
    ] {
        let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck);
        cfg.ca_mode = mode;
        let m = Platform::run(&w, &cfg).metrics;
        println!(
            "swaptions AddrCheck CA {name}: {} cycles, {} broadcasts, wait-dep {}",
            m.execution_cycles(),
            m.ca_broadcasts,
            m.lifeguard_totals().wait_dependence
        );
    }
    let mut g = c.benchmark_group("conflict-alert");
    g.sample_size(10);
    for (name, mode) in [
        ("barrier", CaMode::Barrier),
        ("flush-only", CaMode::FlushOnly),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck);
            cfg.ca_mode = mode;
            b.iter(|| Platform::run(&w, &cfg).metrics.execution_cycles())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ca);
criterion_main!(benches);
