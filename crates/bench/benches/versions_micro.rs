//! Microbenchmark for the flat two-level `VersionTable`.
//!
//! Measures the §5.5 produce→consume lifecycle — windowed churn (the shape
//! a TSO drain produces: versions retire a few records after they are
//! published), availability polling, and the consume-miss/bypass path —
//! against a `naive` baseline reimplementing the seed's `HashMap`-keyed
//! table verbatim. The ratio between the two series is the satellite
//! speedup quoted in the PR description.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paralog_events::{AddrRange, Rid, ThreadId, VersionId};
use paralog_meta::{ConcurrentVersionTable, VersionTable};
use std::collections::HashMap;

/// The seed's version table: `HashMap` keyed by the full `VersionId`.
/// Kept here as the before/after baseline.
#[derive(Default)]
struct NaiveVersionTable {
    entries: HashMap<VersionId, (AddrRange, Vec<u8>, u32)>,
    bypassed: HashMap<VersionId, u32>,
}

impl NaiveVersionTable {
    fn produce(&mut self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        let already = self.bypassed.remove(&id).unwrap_or(0);
        let remaining = consumers.saturating_sub(already);
        if remaining == 0 {
            return;
        }
        self.entries.insert(id, (range, snapshot, remaining));
    }

    fn bypass(&mut self, id: VersionId) {
        *self.bypassed.entry(id).or_insert(0) += 1;
    }

    fn is_available(&self, id: VersionId) -> bool {
        self.entries.contains_key(&id)
    }

    fn consume(&mut self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let entry = self.entries.get_mut(&id)?;
        entry.2 -= 1;
        if entry.2 == 0 {
            let (range, bytes, _) = self.entries.remove(&id).expect("present");
            Some((range, bytes))
        } else {
            Some((entry.0, entry.1.clone()))
        }
    }
}

const THREADS: u16 = 4;
const OPS: u64 = 4096;
/// Outstanding window between produce and consume (§5.5 drains are short).
const WINDOW: u64 = 32;

fn vid(t: u16, r: u64) -> VersionId {
    VersionId {
        consumer: ThreadId(t),
        consumer_rid: Rid(r),
    }
}

/// Windowed produce→consume churn across `THREADS` consumer threads:
/// `op(id, true)` publishes, `op(id, false)` retires.
fn churn(op: &mut impl FnMut(VersionId, bool)) {
    for r in 1..=OPS {
        for t in 0..THREADS {
            op(vid(t, r), true);
            if r > WINDOW {
                op(vid(t, r - WINDOW), false);
            }
        }
    }
    for r in (OPS - WINDOW + 1).max(1)..=OPS {
        for t in 0..THREADS {
            op(vid(t, r), false);
        }
    }
}

fn bench_versions(c: &mut Criterion) {
    let snapshot = || vec![0b01u8; 16];
    let range = AddrRange::new(0x1000, 16);

    let mut group = c.benchmark_group("versions_churn");
    group.throughput(Throughput::Elements(OPS * u64::from(THREADS)));
    group.bench_function(BenchmarkId::new("flat", WINDOW), |b| {
        b.iter(|| {
            let mut table = VersionTable::new();
            churn(&mut |id, produce| {
                if produce {
                    table.produce(id, range, snapshot(), 1);
                } else {
                    black_box(table.consume(id));
                }
            });
            black_box(table.peak_outstanding())
        })
    });
    group.bench_function(BenchmarkId::new("naive", WINDOW), |b| {
        b.iter(|| {
            let mut table = NaiveVersionTable::default();
            churn(&mut |id, produce| {
                if produce {
                    table.produce(id, range, snapshot(), 1);
                } else {
                    black_box(table.consume(id));
                }
            });
            black_box(table.entries.len())
        })
    });
    group.finish();

    // Availability polling: the consumer side's stall loop re-checks the
    // same id until the producer publishes (the hot read).
    let mut group = c.benchmark_group("versions_poll");
    group.throughput(Throughput::Elements(OPS));
    let mut flat = VersionTable::new();
    let mut naive = NaiveVersionTable::default();
    for t in 0..THREADS {
        for r in 1..=WINDOW {
            flat.produce(vid(t, r), range, snapshot(), 1);
            naive.produce(vid(t, r), range, snapshot(), 1);
        }
    }
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in 1..=OPS {
                hits += u64::from(flat.is_available(vid((r % 4) as u16, r % (WINDOW * 2) + 1)));
            }
            black_box(hits)
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in 1..=OPS {
                hits += u64::from(naive.is_available(vid((r % 4) as u16, r % (WINDOW * 2) + 1)));
            }
            black_box(hits)
        })
    });
    group.finish();

    // Epoch reclamation's cost on a chunk-striding sweep (one version per
    // dense chunk, the worst allocation rate per op): `on` frees drained
    // chunks at each simulated batch boundary and reuses spares, `off` is
    // the grow-only baseline that keeps every touched chunk resident. The
    // ratio is the price of bounded residency; the soak suite pins the
    // bound itself.
    const SWEEP_CHUNKS: u64 = 1024;
    const SWEEP_EPOCH: u64 = 64;
    let mut group = c.benchmark_group("versions_reclamation");
    group.throughput(Throughput::Elements(SWEEP_CHUNKS));
    for on in [true, false] {
        group.bench_function(if on { "reclaim_on" } else { "reclaim_off" }, |b| {
            b.iter(|| {
                let table = ConcurrentVersionTable::new(1).with_reclamation(on);
                for c in 0..SWEEP_CHUNKS {
                    let id = vid(0, c * ConcurrentVersionTable::CHUNK_RIDS + 1);
                    table.produce(id, range, snapshot(), 1);
                    black_box(table.consume(id));
                    if c % SWEEP_EPOCH == 0 {
                        table.advance_epoch(ThreadId(0));
                    }
                }
                black_box(table.peak_dense_resident())
            })
        });
    }
    group.finish();

    // Bypass-heavy runs: every consumer outruns its producer (§5.5 without
    // the stall), the worst case for table occupancy bookkeeping.
    let mut group = c.benchmark_group("versions_bypass");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut table = VersionTable::new();
            for r in 1..=OPS {
                let id = vid(0, r);
                table.bypass(id);
                table.produce(id, range, snapshot(), 1);
            }
            black_box(table.outstanding())
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut table = NaiveVersionTable::default();
            for r in 1..=OPS {
                let id = vid(0, r);
                table.bypass(id);
                table.produce(id, range, snapshot(), 1);
            }
            black_box(table.entries.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);
