//! Criterion bench over the Figure 6 pipeline (reduced scale): measures the
//! three monitoring schemes end-to-end on one representative benchmark per
//! class, and prints the full reduced-scale table once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paralog_bench::BENCH_SCALE;
use paralog_core::experiment::{figure6, render_figure6};
use paralog_core::{MonitorConfig, MonitoringMode, Platform};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::{Benchmark, WorkloadSpec};

fn bench_modes(c: &mut Criterion) {
    // Print the full (reduced-scale) Figure 6 once for inspection.
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let cells = figure6(lifeguard, &Benchmark::all(), BENCH_SCALE);
        println!("{}", render_figure6(lifeguard, &cells));
    }
    let mut g = c.benchmark_group("figure6");
    g.sample_size(10);
    for (bench, k) in [
        (Benchmark::Lu, 4),
        (Benchmark::Barnes, 4),
        (Benchmark::Swaptions, 4),
    ] {
        let w = WorkloadSpec::benchmark(bench, k).scale(BENCH_SCALE).build();
        for mode in [
            MonitoringMode::None,
            MonitoringMode::Timesliced,
            MonitoringMode::Parallel,
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("{bench}-{k}t"), format!("{mode}")),
                &w,
                |b, w| {
                    let cfg = MonitorConfig::new(mode, LifeguardKind::TaintCheck);
                    b.iter(|| Platform::run(w, &cfg).metrics.execution_cycles())
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
