//! Criterion bench over the Figure 7 pipeline (reduced scale): the parallel
//! monitoring run whose lifeguard-time decomposition the figure reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paralog_bench::BENCH_SCALE;
use paralog_core::experiment::{figure7, render_figure7};
use paralog_core::{MonitorConfig, MonitoringMode, Platform};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::{Benchmark, WorkloadSpec};

fn bench_breakdown(c: &mut Criterion) {
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let bars = figure7(lifeguard, &Benchmark::all(), BENCH_SCALE);
        println!("{}", render_figure7(lifeguard, &bars));
    }
    let mut g = c.benchmark_group("figure7");
    g.sample_size(10);
    for bench in [Benchmark::Swaptions, Benchmark::Barnes] {
        let w = WorkloadSpec::benchmark(bench, 4).scale(BENCH_SCALE).build();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{bench}")),
            &w,
            |b, w| {
                let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
                b.iter(|| {
                    let m = Platform::run(w, &cfg).metrics;
                    (m.lifeguard_totals().wait_dependence, m.execution_cycles())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
