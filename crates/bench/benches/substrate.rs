//! Substrate microbenchmarks: coherence access, order capture and the log
//! ring — the per-event costs of the simulated hardware itself.

use criterion::{criterion_group, criterion_main, Criterion};
use paralog_events::{AccessKind, EventRecord, Instr, LogRing, Rid, ThreadId};
use paralog_order::{CapturePolicy, OrderCapture, Reduction};
use paralog_sim::{MachineConfig, MemorySystem};
use std::hint::black_box;

fn bench_coherence(c: &mut Criterion) {
    c.bench_function("substrate/coherence-l1-hit", |b| {
        let mut m = MemorySystem::new(&MachineConfig::paper(4));
        m.access(0, Rid(1), 0x1000, 4, AccessKind::Read);
        let mut rid = 1u64;
        b.iter(|| {
            rid += 1;
            black_box(m.access(0, Rid(rid), 0x1000, 4, AccessKind::Read).latency)
        })
    });
    c.bench_function("substrate/coherence-ping-pong", |b| {
        let mut m = MemorySystem::new(&MachineConfig::paper(4));
        let mut rid = 0u64;
        b.iter(|| {
            rid += 2;
            m.access(0, Rid(rid), 0x2000, 4, AccessKind::Write);
            black_box(
                m.access(1, Rid(rid + 1), 0x2000, 4, AccessKind::Write)
                    .touches
                    .len(),
            )
        })
    });
}

fn bench_capture(c: &mut Criterion) {
    c.bench_function("substrate/capture-transitive", |b| {
        let mut cap = OrderCapture::new(8, CapturePolicy::PerBlock, Reduction::Transitive);
        let mut rid = 0u64;
        b.iter(|| {
            rid += 1;
            black_box(cap.on_conflict(
                ThreadId((rid % 7 + 1) as u16),
                Rid(rid),
                ThreadId(0),
                Rid(rid),
                paralog_events::ArcKind::Raw,
            ))
        })
    });
}

fn bench_ring(c: &mut Criterion) {
    c.bench_function("substrate/ring-push-pop", |b| {
        let mut ring = LogRing::new(1024);
        let mut rid = 0u64;
        b.iter(|| {
            rid += 1;
            ring.push(EventRecord::instr(Rid(rid), Instr::Nop)).unwrap();
            black_box(ring.pop().is_some())
        })
    });
}

criterion_group!(benches, bench_coherence, bench_capture, bench_ring);
criterion_main!(benches);
