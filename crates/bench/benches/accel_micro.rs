//! Microbenchmarks of the three accelerators: the Figure 3 IT chain,
//! IF filtering and M-TLB lookup — the per-event fast paths whose costs the
//! platform's cost model abstracts.

use criterion::{criterion_group, criterion_main, Criterion};
use paralog_accel::{IdempotentFilter, InheritanceTracker, MetadataTlb};
use paralog_events::{AccessKind, Instr, MemRef, Reg, Rid};
use std::hint::black_box;

fn bench_it(c: &mut Criterion) {
    c.bench_function("it/figure3-chain", |b| {
        let mut it = InheritanceTracker::new(None);
        let a = MemRef::new(0x100, 4);
        let out = MemRef::new(0x200, 4);
        let mut rid = 0u64;
        b.iter(|| {
            rid += 3;
            let mut n = 0;
            n += it
                .process(
                    &Instr::Load {
                        dst: Reg(0),
                        src: a,
                    },
                    Rid(rid),
                )
                .len();
            n += it
                .process(
                    &Instr::MovRR {
                        dst: Reg(1),
                        src: Reg(0),
                    },
                    Rid(rid + 1),
                )
                .len();
            n += it
                .process(
                    &Instr::Store {
                        dst: out,
                        src: Reg(1),
                    },
                    Rid(rid + 2),
                )
                .len();
            black_box(n)
        })
    });
    c.bench_function("it/progress-computation", |b| {
        let mut it = InheritanceTracker::new(None);
        for i in 0..8u64 {
            it.process(
                &Instr::Load {
                    dst: Reg(i as u8),
                    src: MemRef::new(0x100 + i * 64, 4),
                },
                Rid(i + 1),
            );
        }
        b.iter(|| black_box(it.advertisable_progress()))
    });
}

fn bench_if(c: &mut Criterion) {
    c.bench_function("if/hit", |b| {
        let mut f = IdempotentFilter::new(64, true);
        let m = MemRef::new(0x100, 4);
        f.filter(m, AccessKind::Read);
        b.iter(|| black_box(f.filter(m, AccessKind::Read)))
    });
    c.bench_function("if/miss-insert", |b| {
        let mut f = IdempotentFilter::new(64, true);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            black_box(f.filter(MemRef::new(addr, 4), AccessKind::Read))
        })
    });
}

fn bench_mtlb(c: &mut Criterion) {
    c.bench_function("mtlb/hit", |b| {
        let mut t = MetadataTlb::new(32);
        t.lookup(0x1000);
        b.iter(|| black_box(t.lookup(0x1040)))
    });
}

criterion_group!(benches, bench_it, bench_if, bench_mtlb);
criterion_main!(benches);
