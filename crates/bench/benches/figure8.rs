//! Criterion bench over the Figure 8 pipeline (reduced scale): accelerated
//! vs non-accelerated monitoring, and the capture-policy variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paralog_bench::BENCH_SCALE;
use paralog_core::experiment::{figure8, render_figure8};
use paralog_core::{MonitorConfig, MonitoringMode, Platform};
use paralog_lifeguards::LifeguardKind;
use paralog_order::{CapturePolicy, Reduction};
use paralog_workloads::{Benchmark, WorkloadSpec};

fn bench_accelerators(c: &mut Criterion) {
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let groups = figure8(lifeguard, &Benchmark::all(), BENCH_SCALE);
        println!("{}", render_figure8(lifeguard, &groups));
    }
    let mut g = c.benchmark_group("figure8");
    g.sample_size(10);
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
        .scale(BENCH_SCALE)
        .build();
    let configs = [
        (
            "accel-aggressive",
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
        ),
        (
            "accel-limited",
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_capture(CapturePolicy::PerCore, Reduction::Direct),
        ),
        (
            "no-accel",
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .without_accelerators(),
        ),
    ];
    for (name, cfg) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| Platform::run(&w, cfg).metrics.execution_cycles())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_accelerators);
criterion_main!(benches);
