//! Microbenchmark for the flat two-level shadow memory.
//!
//! Measures `get`/`set` singles and `join_range`/`set_range`/`copy_range`
//! at 1-byte, 64-byte and 4 KiB ranges for 1/2/8-bit metadata, against a
//! `naive` baseline that reimplements the seed's `HashMap`-chunked,
//! per-byte shadow verbatim. The ratio between the two series is the
//! tentpole speedup quoted in the PR description.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paralog_events::AddrRange;
use paralog_meta::{ShadowMemory, CHUNK_APP_BYTES};
use std::collections::HashMap;

/// The seed's shadow memory: `HashMap` first level, per-application-byte
/// read-modify-write everywhere. Kept here as the before/after baseline.
struct NaiveShadow {
    bits: u32,
    chunks: HashMap<u64, Box<[u8]>>,
}

impl NaiveShadow {
    fn new(bits: u32) -> Self {
        NaiveShadow {
            bits,
            chunks: HashMap::new(),
        }
    }

    fn max_value(&self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    fn chunk_bytes(&self) -> usize {
        (CHUNK_APP_BYTES * self.bits as u64 / 8) as usize
    }

    fn locate(addr: u64, bits: u32) -> (u64, usize, u32) {
        let chunk = addr / CHUNK_APP_BYTES;
        let bit_offset = (addr % CHUNK_APP_BYTES) * bits as u64;
        (chunk, (bit_offset / 8) as usize, (bit_offset % 8) as u32)
    }

    fn get(&self, addr: u64) -> u8 {
        let (chunk, byte, shift) = Self::locate(addr, self.bits);
        match self.chunks.get(&chunk) {
            Some(data) => (data[byte] >> shift) & self.max_value(),
            None => 0,
        }
    }

    fn set(&mut self, addr: u64, value: u8) {
        let bits = self.bits;
        let chunk_bytes = self.chunk_bytes();
        let (chunk, byte, shift) = Self::locate(addr, bits);
        let data = self
            .chunks
            .entry(chunk)
            .or_insert_with(|| vec![0u8; chunk_bytes].into_boxed_slice());
        let mask = ((1u16 << bits) - 1) as u8;
        data[byte] = (data[byte] & !(mask << shift)) | (value << shift);
    }

    fn join_range(&self, range: AddrRange) -> u8 {
        let mut acc = 0;
        for a in range.start..range.end() {
            acc |= self.get(a);
        }
        acc
    }

    fn set_range(&mut self, range: AddrRange, value: u8) {
        for a in range.start..range.end() {
            self.set(a, value);
        }
    }

    fn copy_range(&mut self, dst: u64, src: u64, len: u64) {
        for i in 0..len {
            let v = self.get(src + i);
            self.set(dst + i, v);
        }
    }
}

/// Slightly unaligned base so head/tail mask paths are exercised.
const BASE: u64 = 0x1000_0003;
/// Copy destination two chunks away, same lane phase as `BASE`.
const COPY_DST: u64 = BASE + 2 * CHUNK_APP_BYTES;

fn bench_ranges(c: &mut Criterion) {
    for bits in [1u32, 2, 8] {
        let mut g = c.benchmark_group(format!("shadow_micro/{bits}bit"));
        g.sample_size(10);
        for len in [1u64, 64, 4096] {
            g.throughput(Throughput::Bytes(len));
            let range = AddrRange::new(BASE, len);
            let value = 1u8;

            let mut flat = ShadowMemory::new(bits);
            flat.set_range(AddrRange::new(BASE, 8192), value);
            let mut naive = NaiveShadow::new(bits);
            naive.set_range(AddrRange::new(BASE, 8192), value);

            g.bench_with_input(BenchmarkId::new("join_range/flat", len), &len, |b, _| {
                b.iter(|| black_box(flat.join_range(black_box(range))))
            });
            g.bench_with_input(BenchmarkId::new("join_range/naive", len), &len, |b, _| {
                b.iter(|| black_box(naive.join_range(black_box(range))))
            });
            g.bench_with_input(BenchmarkId::new("set_range/flat", len), &len, |b, _| {
                b.iter(|| flat.set_range(black_box(range), value))
            });
            g.bench_with_input(BenchmarkId::new("set_range/naive", len), &len, |b, _| {
                b.iter(|| naive.set_range(black_box(range), value))
            });
            g.bench_with_input(BenchmarkId::new("copy_range/flat", len), &len, |b, _| {
                b.iter(|| flat.copy_range(black_box(COPY_DST), black_box(BASE), len))
            });
            g.bench_with_input(BenchmarkId::new("copy_range/naive", len), &len, |b, _| {
                b.iter(|| naive.copy_range(black_box(COPY_DST), black_box(BASE), len))
            });
        }
        // Single-byte get/set (the per-event fast path). Reset the group
        // throughput so these don't inherit the range loop's 4096 bytes.
        g.throughput(Throughput::Bytes(1));
        let mut flat = ShadowMemory::new(bits);
        flat.set(BASE, 1);
        let mut naive = NaiveShadow::new(bits);
        naive.set(BASE, 1);
        g.bench_function("get/flat", |b| {
            b.iter(|| black_box(flat.get(black_box(BASE))))
        });
        g.bench_function("get/naive", |b| {
            b.iter(|| black_box(naive.get(black_box(BASE))))
        });
        g.bench_function("set/flat", |b| b.iter(|| flat.set(black_box(BASE + 7), 1)));
        g.bench_function("set/naive", |b| {
            b.iter(|| naive.set(black_box(BASE + 7), 1))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_ranges);
criterion_main!(benches);
