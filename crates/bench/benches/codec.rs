//! Log-compression codec throughput and the bytes-per-record claim (§2:
//! compressed records average under ~1 byte; our codec's measured rate on
//! real workload streams is printed for EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paralog_events::codec::{decode, encode, Encoder};
use paralog_events::{dataflow_view, EventRecord, Op, Rid};
use paralog_workloads::{Benchmark, WorkloadSpec};
use std::hint::black_box;

fn records_of(bench: Benchmark) -> Vec<EventRecord> {
    let w = WorkloadSpec::benchmark(bench, 1).scale(0.3).build();
    let mut rid = 0u64;
    w.threads[0]
        .iter()
        .filter_map(|op| match op {
            Op::Instr(i) => {
                rid += 1;
                let _ = dataflow_view(i);
                Some(EventRecord::instr(Rid(rid), *i))
            }
            _ => None,
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    for bench in [Benchmark::Lu, Benchmark::Barnes] {
        let records = records_of(bench);
        let mut enc = Encoder::new();
        for r in &records {
            enc.push(r);
        }
        println!(
            "codec: {} stream averages {:.2} bytes/record over {} records",
            bench,
            enc.bytes_per_record(),
            enc.records()
        );
        let bytes = encode(&records);
        let mut g = c.benchmark_group(format!("codec/{bench}"));
        g.throughput(Throughput::Elements(records.len() as u64));
        g.bench_function("encode", |b| b.iter(|| black_box(encode(&records).len())));
        g.bench_function("decode", |b| {
            b.iter(|| black_box(decode(&bytes).unwrap().len()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
