//! The delta-merge vs. CAS-per-access replay matrix.
//!
//! One module feeds three consumers: the `bench_concurrent` binary that
//! regenerates the checked-in `BENCH_concurrent.json`, the CI bench-smoke
//! step that diffs a fresh quick profile against that file, and the
//! `concurrent_micro` criterion group. All three therefore measure the
//! exact same streams: per-thread record sequences whose *shared*-region
//! addresses are Zipf-skewed (`theta`), swept across low/medium/high
//! sharing so the contention knob — not the workload shape — is what
//! separates the two [`ReplayMode`]s.
//!
//! The lifeguard forms are driven directly (no backend, no dependence
//! arcs): CAS mode applies each record through
//! [`ConcurrentLifeguard::apply`]; delta mode buffers through
//! [`DeltaLifeguard::apply_delta`] and publishes every
//! [`FLUSH_EVERY`] records — the arc-boundary cadence the threaded
//! backend exhibits on real captures.

use paralog_events::{
    AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, LockId, MemRef, Reg, Rid,
    SyscallKind, ThreadId,
};
use paralog_lifeguards::{
    ConcurrentLifeguard, DeltaLifeguard, HappensBeforeConcurrent, LifeguardKind, LockSetConcurrent,
    MemCheckConcurrent, ReplayMode, TaintConcurrent,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

/// Records between delta publishes — the modeled arc-boundary cadence.
pub const FLUSH_EVERY: usize = 256;

/// Thread counts the matrix sweeps.
pub const THREADS: [usize; 2] = [8, 16];

/// Shared-region size in 8-byte words (small enough that the high-sharing
/// profile's Zipf head is genuinely hot).
const SHARED_WORDS: u64 = 1024;

/// Base of the shared region (mirrors the workload generator layout).
const SHARED_BASE: u64 = 0x6000_0000;

/// One point on the sharing axis.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Label used in series keys ("low" / "medium" / "high").
    pub name: &'static str,
    /// Fraction of accesses aimed at the shared region.
    pub shared_fraction: f64,
    /// Zipf exponent over shared words (hotter head as it grows).
    pub theta: f64,
}

/// The low/medium/high sharing sweep.
pub const PROFILES: [Profile; 3] = [
    Profile {
        name: "low",
        shared_fraction: 0.05,
        theta: 0.6,
    },
    Profile {
        name: "medium",
        shared_fraction: 0.35,
        theta: 0.9,
    },
    Profile {
        name: "high",
        shared_fraction: 0.85,
        theta: 1.2,
    },
];

/// The lifeguards with genuine delta-merge forms (AddrCheck's is a
/// pass-through over the same CAS code, so there is nothing to compare).
pub const KINDS: [LifeguardKind; 4] = [
    LifeguardKind::TaintCheck,
    LifeguardKind::MemCheck,
    LifeguardKind::LockSet,
    LifeguardKind::HappensBefore,
];

/// A fresh concurrent form of `kind` for `threads` lanes.
///
/// # Panics
///
/// Panics for kinds outside [`KINDS`].
pub fn build_concurrent(kind: LifeguardKind, threads: usize) -> Box<dyn DeltaLifeguard> {
    match kind {
        LifeguardKind::TaintCheck => Box::new(TaintConcurrent::new(threads)),
        LifeguardKind::MemCheck => Box::new(MemCheckConcurrent::new(threads)),
        LifeguardKind::LockSet => Box::new(LockSetConcurrent::new(threads)),
        LifeguardKind::HappensBefore => Box::new(HappensBeforeConcurrent::new(threads)),
        other => panic!("{other:?} has no delta-merge form to benchmark"),
    }
}

/// Cumulative Zipf weights over `SHARED_WORDS` ranks.
fn zipf_cdf(theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(SHARED_WORDS as usize);
    let mut total = 0.0f64;
    for rank in 0..SHARED_WORDS {
        total += 1.0 / ((rank + 1) as f64).powf(theta);
        cdf.push(total);
    }
    cdf
}

/// Builds one thread's record stream for `kind` under `profile`.
///
/// LOCKSET streams open by acquiring a common lock so shared accesses are
/// consistently protected: the interesting cost is the Eraser
/// state-machine transitions and candidate-set refinement, not an
/// unbounded violation flood. HAPPENSBEFORE streams open by acquiring a
/// *per-thread* lock word and release it on a fixed cadence, so per-thread
/// clocks keep advancing and epoch installs stay hot (a constant clock
/// would collapse every access into the same-epoch no-op); shared words
/// race once, poison, and thereafter exercise the absorbing-sentinel fast
/// path — the REPORTED bit keeps the violation flood bounded at one per
/// word. The byte-shadow analyses open with a
/// metadata *source* over both regions — `read()` taint for TAINTCHECK,
/// a malloc'd-undefined heap for MEMCHECK — so the replayed accesses move
/// nonzero metadata. Without that, every shadow store writes clean zero,
/// the CAS path never even materializes a chunk, and the "baseline" being
/// compared against is a no-op. Accesses come in load/store pairs over
/// one drawn address (read a location, write it back), the shape that
/// actually propagates metadata through the register file.
pub fn stream(kind: LifeguardKind, tid: u16, records: u64, profile: Profile) -> Vec<EventRecord> {
    let mut rng = StdRng::seed_from_u64(
        0xC0_FFEE ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(tid) + 1)),
    );
    let cdf = zipf_cdf(profile.theta);
    let total = *cdf.last().expect("non-empty");
    let slab = AddrRange::new(0x0100_0000 + u64::from(tid) * 0x1_0000, 0x8000);
    let mut recs = Vec::with_capacity(records as usize + 1);
    let mut rid = 0u64;
    let mut next_rid = || {
        rid += 1;
        Rid(rid)
    };
    // HAPPENSBEFORE advances clocks through sync-space accesses (64-byte
    // spaced lock words); each thread uses its own so replay stays
    // deterministic without cross-stream arcs.
    let own_lock = paralog_lifeguards::lockset::SYNC_SPACE_START + u64::from(tid) * 64;
    match kind {
        LifeguardKind::LockSet => {
            recs.push(EventRecord::ca(
                next_rid(),
                CaRecord {
                    what: HighLevelKind::Lock(LockId(0)),
                    phase: CaPhase::End,
                    range: None,
                    issuer: ThreadId(tid),
                    issuer_rid: Rid(1),
                    seq: u64::MAX, // own-stream record: no cross-thread ordering
                },
            ));
        }
        LifeguardKind::HappensBefore => {
            recs.push(EventRecord::instr(
                next_rid(),
                Instr::Rmw {
                    mem: MemRef::new(own_lock, 8),
                    reg: Reg(0),
                },
            ));
        }
        _ => {
            // Metadata source: taint (TAINTCHECK) or malloc'd-undefined
            // (MEMCHECK) over both the shared region and the private slab.
            let what = if kind == LifeguardKind::TaintCheck {
                HighLevelKind::Syscall(SyscallKind::ReadInput)
            } else {
                HighLevelKind::Malloc
            };
            for range in [AddrRange::new(SHARED_BASE, SHARED_WORDS * 8), slab] {
                let rid = next_rid();
                recs.push(EventRecord::ca(
                    rid,
                    CaRecord {
                        what,
                        phase: CaPhase::End,
                        range: Some(range),
                        issuer: ThreadId(tid),
                        issuer_rid: rid,
                        seq: u64::MAX, // own-stream record: no cross-thread ordering
                    },
                ));
            }
        }
    }
    let mut private_cursor = 0u64;
    let mut addr = slab.start;
    for i in 0..records {
        // Clock-advance cadence: a release (sync store) every 61 records
        // keeps HAPPENSBEFORE's epochs moving (see the stream docs).
        if kind == LifeguardKind::HappensBefore && i % 61 == 0 {
            recs.push(EventRecord::instr(
                next_rid(),
                Instr::Store {
                    dst: MemRef::new(own_lock, 8),
                    src: Reg(0),
                },
            ));
            continue;
        }
        let mem = if i % 2 == 0 {
            // Draw a fresh target and read it...
            addr = if rng.gen_bool(profile.shared_fraction) {
                let u = rng.gen::<f64>() * total;
                let word = cdf
                    .partition_point(|&c| c < u)
                    .min(SHARED_WORDS as usize - 1) as u64;
                SHARED_BASE + word * 8
            } else {
                private_cursor = (private_cursor + 8) % (slab.len - 8);
                slab.start + private_cursor
            };
            MemRef::new(addr, 8)
        } else {
            // ...then write the same location back.
            MemRef::new(addr, 8)
        };
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(next_rid(), instr));
    }
    recs
}

/// Replays pre-built per-thread streams on real threads in `mode`.
pub fn replay(lg: &dyn DeltaLifeguard, streams: &[Vec<EventRecord>], mode: ReplayMode) {
    std::thread::scope(|scope| {
        for (t, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let tid = ThreadId(t as u16);
                match mode {
                    ReplayMode::CasPerAccess => {
                        let conc: &dyn ConcurrentLifeguard = lg;
                        for rec in stream {
                            conc.apply(tid, rec, None);
                        }
                    }
                    ReplayMode::DeltaMerge => {
                        for (i, rec) in stream.iter().enumerate() {
                            lg.apply_delta(tid, rec, None);
                            if (i + 1) % FLUSH_EVERY == 0 {
                                lg.flush_delta(tid);
                            }
                        }
                        lg.flush_delta(tid);
                    }
                }
            });
        }
    });
}

/// The full measured matrix plus the parameters it ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// Records per thread per measurement.
    pub records_per_thread: u64,
    /// `"<Kind>/t<threads>/<profile>/<mode>"` → best-of-iters ns/record.
    pub series: BTreeMap<String, f64>,
}

/// Series key for one matrix cell.
pub fn series_key(
    kind: LifeguardKind,
    threads: usize,
    profile: &Profile,
    mode: ReplayMode,
) -> String {
    format!("{kind:?}/t{threads}/{}/{mode}", profile.name)
}

/// Measures one cell: best-of-`iters` ns/record, fresh lifeguard state per
/// iteration so accumulated metadata never favors the later mode.
pub fn measure_cell(
    kind: LifeguardKind,
    threads: usize,
    profile: Profile,
    mode: ReplayMode,
    records_per_thread: u64,
    iters: usize,
) -> f64 {
    let streams: Vec<Vec<EventRecord>> = (0..threads as u16)
        .map(|t| stream(kind, t, records_per_thread, profile))
        .collect();
    let total_records = (threads as u64 * records_per_thread) as f64;
    // One discarded warm-up round: the first replay after process start
    // pays allocator and page-fault warm-up the committed baselines
    // (measured hot) never see, which made `--check` quick profiles flaky.
    replay(&*build_concurrent(kind, threads), &streams, mode);
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let lg = build_concurrent(kind, threads);
        let start = Instant::now();
        replay(&*lg, &streams, mode);
        let ns = start.elapsed().as_nanos() as f64;
        best = best.min(ns / total_records);
    }
    best
}

/// Measures one cell under both modes with the iterations *interleaved*
/// (cas, delta, cas, delta, …) rather than block-sequential. Scheduler
/// and frequency drift on a shared box then hits both modes roughly
/// equally, so the delta/cas ratio stays meaningful even when absolute
/// numbers wander between runs.
pub fn measure_cell_pair(
    kind: LifeguardKind,
    threads: usize,
    profile: Profile,
    records_per_thread: u64,
    iters: usize,
) -> (f64, f64) {
    let streams: Vec<Vec<EventRecord>> = (0..threads as u16)
        .map(|t| stream(kind, t, records_per_thread, profile))
        .collect();
    let total_records = (threads as u64 * records_per_thread) as f64;
    // One discarded warm-up round per mode before the scored window: the
    // process's first replay of each shape pays allocator and page-fault
    // warm-up that the committed baselines (measured hot) never see, which
    // made `--check` quick profiles regress spuriously on cold runners.
    // The streams are deterministic (see `streams_are_deterministic`), so
    // the warm-up replays exactly the work the scored rounds measure.
    for mode in [ReplayMode::CasPerAccess, ReplayMode::DeltaMerge] {
        replay(&*build_concurrent(kind, threads), &streams, mode);
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..iters.max(1) {
        for (slot, mode) in [ReplayMode::CasPerAccess, ReplayMode::DeltaMerge]
            .into_iter()
            .enumerate()
        {
            let lg = build_concurrent(kind, threads);
            let start = Instant::now();
            replay(&*lg, &streams, mode);
            let ns = start.elapsed().as_nanos() as f64;
            best[slot] = best[slot].min(ns / total_records);
        }
    }
    (best[0], best[1])
}

/// Runs the whole matrix.
pub fn run_matrix(records_per_thread: u64, iters: usize) -> MatrixResult {
    let mut series = BTreeMap::new();
    for kind in KINDS {
        for threads in THREADS {
            for profile in PROFILES {
                let (cas, delta) =
                    measure_cell_pair(kind, threads, profile, records_per_thread, iters);
                series.insert(
                    series_key(kind, threads, &profile, ReplayMode::CasPerAccess),
                    cas,
                );
                series.insert(
                    series_key(kind, threads, &profile, ReplayMode::DeltaMerge),
                    delta,
                );
            }
        }
    }
    MatrixResult {
        records_per_thread,
        series,
    }
}

/// Serializes a result as the checked-in `BENCH_concurrent.json` schema.
pub fn to_json(result: &MatrixResult) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"records_per_thread\": {},\n",
        result.records_per_thread
    ));
    out.push_str("  \"series\": {\n");
    let last = result.series.len().saturating_sub(1);
    for (i, (key, ns)) in result.series.iter().enumerate() {
        out.push_str(&format!("    \"{key}\": {ns:.1}"));
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses the `BENCH_concurrent.json` schema written by [`to_json`].
/// Hand-rolled (the workspace takes no external dependencies) and
/// deliberately strict about shape: `None` on anything unexpected.
pub fn parse_json(text: &str) -> Option<MatrixResult> {
    let field = |name: &str| -> Option<&str> {
        let tag = format!("\"{name}\"");
        let at = text.find(&tag)? + tag.len();
        let rest = text[at..].trim_start().strip_prefix(':')?;
        Some(rest.trim_start())
    };
    if !field("schema")?.starts_with('1') {
        return None;
    }
    let records_per_thread: u64 = {
        let rest = field("records_per_thread")?;
        let end = rest.find(|c: char| !c.is_ascii_digit())?;
        rest[..end].parse().ok()?
    };
    let series_text = field("series")?.strip_prefix('{')?;
    let series_text = &series_text[..series_text.find('}')?];
    let mut series = BTreeMap::new();
    for entry in series_text.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value: f64 = value.trim().parse().ok()?;
        series.insert(key.to_string(), value);
    }
    if series.is_empty() {
        return None;
    }
    Some(MatrixResult {
        records_per_thread,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let mut series = BTreeMap::new();
        for kind in KINDS {
            for mode in [ReplayMode::CasPerAccess, ReplayMode::DeltaMerge] {
                series.insert(series_key(kind, 8, &PROFILES[2], mode), 12.5);
            }
        }
        let result = MatrixResult {
            records_per_thread: 4096,
            series,
        };
        let parsed = parse_json(&to_json(&result)).expect("own output parses");
        assert_eq!(parsed, result);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("").is_none());
        assert!(parse_json("{\"schema\": 2}").is_none());
        assert!(
            parse_json("{\"schema\": 1, \"records_per_thread\": 4096, \"series\": {}}").is_none()
        );
    }

    #[test]
    fn streams_are_deterministic() {
        // The warm-up round in `measure_cell_pair` is only a valid warm-up
        // (and `--check` only a valid diff against the committed baseline)
        // if stream generation is a pure function of (kind, tid, records,
        // profile): same inputs, bit-identical records, every call.
        for kind in KINDS {
            for profile in PROFILES {
                for tid in [0u16, 3] {
                    let a = stream(kind, tid, 257, profile);
                    let b = stream(kind, tid, 257, profile);
                    assert_eq!(
                        a, b,
                        "{kind:?}/{}/t{tid} streams diverged across calls",
                        profile.name
                    );
                }
            }
        }
    }

    #[test]
    fn modes_agree_on_fingerprint_across_the_matrix() {
        // The bench harness itself must preserve the tentpole invariant:
        // both replay modes land on bit-identical metadata for every
        // matrix cell shape. Records are interleaved round-robin on one OS
        // thread — a deterministic schedule, since racing first-touch
        // attribution is explicitly outside the parity contract.
        for kind in KINDS {
            for profile in PROFILES {
                let streams: Vec<Vec<EventRecord>> =
                    (0..4u16).map(|t| stream(kind, t, 192, profile)).collect();
                let longest = streams.iter().map(Vec::len).max().unwrap();
                let cas = build_concurrent(kind, 4);
                let delta = build_concurrent(kind, 4);
                for i in 0..longest {
                    for (t, s) in streams.iter().enumerate() {
                        let Some(rec) = s.get(i) else { continue };
                        let tid = ThreadId(t as u16);
                        let conc: &dyn ConcurrentLifeguard = &*cas;
                        conc.apply(tid, rec, None);
                        delta.apply_delta(tid, rec, None);
                        if (i + 1) % 37 == 0 {
                            delta.flush_delta(tid);
                        }
                    }
                }
                for t in 0..streams.len() {
                    delta.flush_delta(ThreadId(t as u16));
                }
                let cas: &dyn ConcurrentLifeguard = &*cas;
                let delta: &dyn ConcurrentLifeguard = &*delta;
                assert_eq!(
                    cas.fingerprint(),
                    delta.fingerprint(),
                    "{kind:?}/{} fingerprints diverged across modes",
                    profile.name
                );
            }
        }
    }
}
