//! Regenerates Figure 8: 8-thread slowdowns for not-accelerated vs
//! accelerated monitoring, with the limited (per-core) vs aggressive
//! (per-block + transitive reduction) dependence-capture variants.
//!
//! Usage: `cargo run --release -p paralog-bench --bin figure8 [--quick] [--scale F]`

use paralog_bench::{quick_requested, scale_from_args, FULL_SCALE};
use paralog_core::experiment::{figure8, render_figure8};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::Benchmark;

fn main() {
    let scale = scale_from_args(if quick_requested() { 0.25 } else { FULL_SCALE });
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let groups = figure8(lifeguard, &Benchmark::all(), scale);
        println!("{}", render_figure8(lifeguard, &groups));
    }
}
