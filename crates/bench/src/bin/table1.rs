//! Prints Table 1: the simulated machine parameters and benchmark inputs.
//!
//! Usage: `cargo run --release -p paralog-bench --bin table1`

fn main() {
    println!("{}", paralog_core::experiment::table1());
}
