//! Regenerates (or checks) the checked-in `BENCH_shadow.json`: the flat
//! two-level shadow-memory suite — range primitives at 64 B/4 KiB and the
//! single-byte fast path across 1/2/8-bit metadata.
//!
//! Usage mirrors `bench_concurrent`:
//!
//! * `cargo run --release -p paralog-bench --bin bench_shadow`
//!   — run the full suite, print it, and rewrite `BENCH_shadow.json`
//!   at the repository root (override with `--out <path>`);
//! * `... --bin bench_shadow -- --check` — run a quick profile and diff it
//!   against the checked-in baseline, emitting a non-blocking GitHub
//!   Actions `::warning::` line per regressed series. Always exits 0.

use paralog_bench::concurrent_matrix::to_json;
use paralog_bench::snapshot::{check_against, shadow_matrix};
use std::path::PathBuf;

const FULL_REPS: u64 = 2048;
const FULL_ITERS: usize = 7;
/// Quick profiles keep the full rep count (so per-call numbers stay
/// comparable to the committed baseline — fixed per-round overhead
/// amortizes identically) and only cut the best-of window.
const QUICK_REPS: u64 = FULL_REPS;
const QUICK_ITERS: usize = 3;

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shadow.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = default_out();
    let mut i = 0;
    let mut checking = false;
    let mut quick = false;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => checking = true,
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out requires a path"));
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --check, --quick, --out <path>)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (reps, iters) = if checking || quick {
        (QUICK_REPS, QUICK_ITERS)
    } else {
        (FULL_REPS, FULL_ITERS)
    };
    let result = shadow_matrix(reps, iters);
    println!("shadow suite ({reps} calls/round, ns/call, best of {iters}):");
    for (key, ns) in &result.series {
        println!("  {key:<24} {ns:10.1}");
    }
    if checking {
        std::process::exit(check_against("BENCH_shadow.json", &out, &result));
    }
    std::fs::write(&out, to_json(&result)).expect("write BENCH_shadow.json");
    println!("wrote {}", out.display());
}
