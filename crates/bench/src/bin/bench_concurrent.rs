//! Regenerates (or checks) the checked-in `BENCH_concurrent.json`: the
//! delta-merge vs. CAS-per-access replay matrix over 8/16 threads and the
//! low/medium/high Zipf sharing sweep.
//!
//! Usage:
//!
//! * `cargo run --release -p paralog-bench --bin bench_concurrent`
//!   — run the full matrix, print it, and rewrite `BENCH_concurrent.json`
//!   at the repository root (override with `--out <path>`);
//! * `... --bin bench_concurrent -- --check` — run a quick profile and
//!   diff it against the checked-in baseline, emitting a GitHub Actions
//!   `::warning::` line per series that regressed by more than
//!   `snapshot::REGRESSION_TOLERANCE`. Always exits 0: the smoke step is
//!   non-blocking by design (shared CI runners jitter far too much for a
//!   hard gate).
//!
//! The streams are deterministic (fixed seeds); only the wall-clock
//! numbers vary run to run, which is why `--check` compares against a
//! generous tolerance and only warns.

use paralog_bench::concurrent_matrix::{run_matrix, to_json, MatrixResult};
use paralog_bench::snapshot::check_against;
use std::path::PathBuf;

/// Full-run records per thread / iterations (iterations generous because
/// single-core CI boxes jitter; best-of damps it).
const FULL_RECORDS: u64 = 16384;
const FULL_ITERS: usize = 7;

/// Quick-profile records per thread / iterations (the CI smoke shape).
const QUICK_RECORDS: u64 = 2048;
const QUICK_ITERS: usize = 3;

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_concurrent.json")
}

fn print_matrix(result: &MatrixResult) {
    println!(
        "concurrent replay matrix ({} records/thread, ns/record, best of N):",
        result.records_per_thread
    );
    for (key, ns) in &result.series {
        println!("  {key:<32} {ns:8.1}");
    }
    // The headline comparison: per (kind, threads, profile), how delta
    // fares against CAS.
    for (key, delta_ns) in &result.series {
        let Some(cell) = key.strip_suffix("/delta") else {
            continue;
        };
        if let Some(cas_ns) = result.series.get(&format!("{cell}/cas")) {
            println!("  {cell:<32} delta/cas = {:.2}", delta_ns / cas_ns);
        }
    }
}

fn check(out: &std::path::Path) -> i32 {
    let fresh = run_matrix(QUICK_RECORDS, QUICK_ITERS);
    print_matrix(&fresh);
    check_against("BENCH_concurrent.json", out, &fresh)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = default_out();
    let mut i = 0;
    let mut checking = false;
    let mut quick = false;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => checking = true,
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out requires a path"));
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --check, --quick, --out <path>)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if checking {
        std::process::exit(check(&out));
    }
    let (records, iters) = if quick {
        (QUICK_RECORDS, QUICK_ITERS)
    } else {
        (FULL_RECORDS, FULL_ITERS)
    };
    let result = run_matrix(records, iters);
    print_matrix(&result);
    std::fs::write(&out, to_json(&result)).expect("write BENCH_concurrent.json");
    println!("wrote {}", out.display());
}
