//! Regenerates (or checks) the checked-in `BENCH_concurrent.json`: the
//! delta-merge vs. CAS-per-access replay matrix over 8/16 threads and the
//! low/medium/high Zipf sharing sweep.
//!
//! Usage:
//!
//! * `cargo run --release -p paralog-bench --bin bench_concurrent`
//!   — run the full matrix, print it, and rewrite `BENCH_concurrent.json`
//!   at the repository root (override with `--out <path>`);
//! * `... --bin bench_concurrent -- --check` — run a quick profile and
//!   diff it against the checked-in baseline, emitting a GitHub Actions
//!   `::warning::` line per series that regressed by more than
//!   [`REGRESSION_TOLERANCE`]. Always exits 0: the smoke step is
//!   non-blocking by design (shared CI runners jitter far too much for a
//!   hard gate).
//!
//! The streams are deterministic (fixed seeds); only the wall-clock
//! numbers vary run to run, which is why `--check` compares against a
//! generous tolerance and only warns.

use paralog_bench::concurrent_matrix::{parse_json, run_matrix, to_json, MatrixResult};
use std::path::PathBuf;

/// A series must be at least this many times slower than the baseline
/// before `--check` warns (>30% regression).
const REGRESSION_TOLERANCE: f64 = 1.3;

/// Full-run records per thread / iterations (iterations generous because
/// single-core CI boxes jitter; best-of damps it).
const FULL_RECORDS: u64 = 16384;
const FULL_ITERS: usize = 7;

/// Quick-profile records per thread / iterations (the CI smoke shape).
const QUICK_RECORDS: u64 = 2048;
const QUICK_ITERS: usize = 3;

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_concurrent.json")
}

fn print_matrix(result: &MatrixResult) {
    println!(
        "concurrent replay matrix ({} records/thread, ns/record, best of N):",
        result.records_per_thread
    );
    for (key, ns) in &result.series {
        println!("  {key:<32} {ns:8.1}");
    }
    // The headline comparison: per (kind, threads, profile), how delta
    // fares against CAS.
    for (key, delta_ns) in &result.series {
        let Some(cell) = key.strip_suffix("/delta") else {
            continue;
        };
        if let Some(cas_ns) = result.series.get(&format!("{cell}/cas")) {
            println!("  {cell:<32} delta/cas = {:.2}", delta_ns / cas_ns);
        }
    }
}

fn check(out: &PathBuf) -> i32 {
    let Ok(text) = std::fs::read_to_string(out) else {
        println!(
            "::warning::BENCH_concurrent.json missing at {} — run bench_concurrent to regenerate",
            out.display()
        );
        return 0;
    };
    let Some(baseline) = parse_json(&text) else {
        println!(
            "::warning::BENCH_concurrent.json is unparseable — run bench_concurrent to regenerate"
        );
        return 0;
    };
    let fresh = run_matrix(QUICK_RECORDS, QUICK_ITERS);
    print_matrix(&fresh);
    let mut regressed = 0usize;
    for (key, fresh_ns) in &fresh.series {
        let Some(base_ns) = baseline.series.get(key) else {
            println!("::warning::series {key} missing from BENCH_concurrent.json baseline");
            continue;
        };
        if *fresh_ns > base_ns * REGRESSION_TOLERANCE {
            regressed += 1;
            println!(
                "::warning::bench regression: {key} {fresh_ns:.1} ns/record vs baseline {base_ns:.1} (>{:.0}%)",
                (REGRESSION_TOLERANCE - 1.0) * 100.0
            );
        }
    }
    println!(
        "bench-smoke: {} series checked, {regressed} regressed past the {REGRESSION_TOLERANCE}x tolerance (non-blocking)",
        fresh.series.len()
    );
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = default_out();
    let mut i = 0;
    let mut checking = false;
    let mut quick = false;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => checking = true,
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out requires a path"));
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --check, --quick, --out <path>)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if checking {
        std::process::exit(check(&out));
    }
    let (records, iters) = if quick {
        (QUICK_RECORDS, QUICK_ITERS)
    } else {
        (FULL_RECORDS, FULL_ITERS)
    };
    let result = run_matrix(records, iters);
    print_matrix(&result);
    std::fs::write(&out, to_json(&result)).expect("write BENCH_concurrent.json");
    println!("wrote {}", out.display());
}
