//! Regenerates Figure 6: execution time of NO MONITORING / TIMESLICED /
//! PARALLEL for 1–8 application threads, both lifeguards.
//!
//! Usage: `cargo run --release -p paralog-bench --bin figure6 [--quick] [--scale F]`

use paralog_bench::{quick_requested, scale_from_args, FULL_SCALE};
use paralog_core::experiment::{figure6, figure8, headline, render_figure6};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::Benchmark;

fn main() {
    let scale = scale_from_args(if quick_requested() { 0.25 } else { FULL_SCALE });
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let cells = figure6(lifeguard, &Benchmark::all(), scale);
        println!("{}", render_figure6(lifeguard, &cells));
        let groups = figure8(lifeguard, &Benchmark::all(), scale);
        let h = headline(&cells, &groups);
        println!(
            "headline ({lifeguard}): {:.1}-{:.1}X faster than timesliced at 8 threads; \
             avg 8-thread overhead {:.0}%; accelerators {:.2}-{:.2}X\n",
            h.speedup_over_timesliced.0,
            h.speedup_over_timesliced.1,
            h.average_overhead_8t * 100.0,
            h.accelerator_speedup.0,
            h.accelerator_speedup.1
        );
    }
}
