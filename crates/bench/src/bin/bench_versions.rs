//! Regenerates (or checks) the checked-in `BENCH_versions.json`: the §5.5
//! version-table suite — windowed churn, availability polling, the
//! bypass-heavy worst case, and the epoch-reclamation sweep on/off.
//!
//! Usage mirrors `bench_concurrent`:
//!
//! * `cargo run --release -p paralog-bench --bin bench_versions`
//!   — run the full suite, print it, and rewrite `BENCH_versions.json`
//!   at the repository root (override with `--out <path>`);
//! * `... --bin bench_versions -- --check` — run a quick profile and diff
//!   it against the checked-in baseline, emitting a non-blocking GitHub
//!   Actions `::warning::` line per regressed series. Always exits 0.

use paralog_bench::concurrent_matrix::to_json;
use paralog_bench::snapshot::{check_against, versions_matrix};
use std::path::PathBuf;

const FULL_OPS: u64 = 4096;
const FULL_ITERS: usize = 7;
/// Quick profiles keep the full op count (so per-op numbers stay
/// comparable to the committed baseline — fixed per-round overhead
/// amortizes identically) and only cut the best-of window.
const QUICK_OPS: u64 = FULL_OPS;
const QUICK_ITERS: usize = 3;

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_versions.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = default_out();
    let mut i = 0;
    let mut checking = false;
    let mut quick = false;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => checking = true,
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out requires a path"));
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --check, --quick, --out <path>)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (ops, iters) = if checking || quick {
        (QUICK_OPS, QUICK_ITERS)
    } else {
        (FULL_OPS, FULL_ITERS)
    };
    let result = versions_matrix(ops, iters);
    println!("version-table suite ({ops} ops/round, ns/op, best of {iters}):");
    for (key, ns) in &result.series {
        println!("  {key:<24} {ns:10.1}");
    }
    if checking {
        std::process::exit(check_against("BENCH_versions.json", &out, &result));
    }
    std::fs::write(&out, to_json(&result)).expect("write BENCH_versions.json");
    println!("wrote {}", out.display());
}
