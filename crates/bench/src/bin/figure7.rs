//! Regenerates Figure 7: slowdown of PARALLEL monitoring vs the
//! same-thread-count application, decomposed into useful work, waiting for
//! dependence and waiting for application.
//!
//! Usage: `cargo run --release -p paralog-bench --bin figure7 [--quick] [--scale F]`

use paralog_bench::{quick_requested, scale_from_args, FULL_SCALE};
use paralog_core::experiment::{figure7, render_figure7};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::Benchmark;

fn main() {
    let scale = scale_from_args(if quick_requested() { 0.25 } else { FULL_SCALE });
    for lifeguard in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let bars = figure7(lifeguard, &Benchmark::all(), scale);
        println!("{}", render_figure7(lifeguard, &bars));
    }
}
