//! Shared helpers for the ParaLog benchmark harness.
//!
//! The `bin/` targets regenerate the paper's tables and figures in full;
//! the criterion `benches/` run the same sweeps at reduced scale so they
//! finish in a benchmarking session.

pub mod concurrent_matrix;
pub mod snapshot;

/// Workload scale used by the full figure binaries (relative to the
/// calibrated base duration).
pub const FULL_SCALE: f64 = 1.0;

/// Workload scale used by criterion benches (kept small so each iteration
/// is tens of milliseconds).
pub const BENCH_SCALE: f64 = 0.05;

/// Parses an optional `--scale <f64>` command-line override.
pub fn scale_from_args(default: f64) -> f64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                return v;
            }
        }
    }
    default
}

/// Parses an optional `--quick` flag (quarter-scale run).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time sanity: criterion runs must stay cheaper than full runs.
    const _: () = assert!(FULL_SCALE > BENCH_SCALE);

    #[test]
    fn defaults_are_sane() {
        assert_eq!(scale_from_args(0.5), 0.5);
    }
}
