//! Checked-in benchmark snapshots beyond the concurrent matrix: the flat
//! shadow-memory suite (`BENCH_shadow.json`) and the version-table suite
//! (`BENCH_versions.json`).
//!
//! Both reuse the `BENCH_concurrent.json` schema — [`MatrixResult`] plus
//! [`to_json`]/[`parse_json`] — so the CI bench-smoke step diffs all three
//! files with the same non-blocking `::warning::` machinery. The measured
//! shapes mirror the criterion groups in `benches/shadow_micro.rs` and
//! `benches/versions_micro.rs`; the snapshots exist so regressions in
//! *our* structures show up in CI without a criterion baseline directory,
//! not to re-measure the naive seed baselines (those live only in the
//! criterion groups).
//!
//! [`to_json`]: crate::concurrent_matrix::to_json
//! [`parse_json`]: crate::concurrent_matrix::parse_json

use crate::concurrent_matrix::{parse_json, MatrixResult};
use paralog_events::{AddrRange, Rid, ThreadId, VersionId};
use paralog_meta::{ConcurrentVersionTable, ShadowMemory, VersionTable};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// A series must be at least this many times slower than the baseline
/// before a snapshot `--check` warns (>30% regression).
pub const REGRESSION_TOLERANCE: f64 = 1.3;

/// Best-of-`iters` nanoseconds per work unit, with one *discarded* warm-up
/// round first. The first round after process start pays allocator and
/// page-fault warm-up that the checked-in baselines (measured hot, late in
/// a full run) never see; discarding it keeps quick-profile `--check` runs
/// comparable to the committed numbers.
pub fn best_of(units: u64, iters: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos() as f64 / units as f64);
    }
    best
}

/// Slightly unaligned base so head/tail mask paths are exercised (mirrors
/// `shadow_micro`).
const SHADOW_BASE: u64 = 0x1000_0003;

/// The shadow-memory suite: range primitives at 64 B and 4 KiB plus the
/// single-byte fast path, for 1/2/8-bit metadata. Keys are
/// `"<bits>bit/<op>/<len>"`; values are ns per *call* (not per byte), so
/// the series diff catches fast-path regressions that per-byte throughput
/// would hide at large lengths. `reps` calls are timed per round.
pub fn shadow_matrix(reps: u64, iters: usize) -> MatrixResult {
    let mut series = BTreeMap::new();
    for bits in [1u32, 2, 8] {
        for len in [64u64, 4096] {
            let range = AddrRange::new(SHADOW_BASE, len);
            let copy_dst = SHADOW_BASE + 2 * paralog_meta::CHUNK_APP_BYTES;
            let mut shadow = ShadowMemory::new(bits);
            shadow.set_range(AddrRange::new(SHADOW_BASE, 8192), 1);
            series.insert(
                format!("{bits}bit/set_range/{len}"),
                best_of(reps, iters, || {
                    for _ in 0..reps {
                        shadow.set_range(std::hint::black_box(range), 1);
                    }
                }),
            );
            series.insert(
                format!("{bits}bit/join_range/{len}"),
                best_of(reps, iters, || {
                    for _ in 0..reps {
                        std::hint::black_box(shadow.join_range(std::hint::black_box(range)));
                    }
                }),
            );
            series.insert(
                format!("{bits}bit/copy_range/{len}"),
                best_of(reps, iters, || {
                    for _ in 0..reps {
                        shadow.copy_range(std::hint::black_box(copy_dst), SHADOW_BASE, len);
                    }
                }),
            );
        }
        let mut shadow = ShadowMemory::new(bits);
        shadow.set(SHADOW_BASE, 1);
        series.insert(
            format!("{bits}bit/get_set/1"),
            best_of(reps, iters, || {
                for _ in 0..reps {
                    let v = std::hint::black_box(shadow.get(std::hint::black_box(SHADOW_BASE)));
                    shadow.set(SHADOW_BASE + 7, v);
                }
            }),
        );
    }
    MatrixResult {
        records_per_thread: reps,
        series,
    }
}

/// The version-table suite: §5.5 windowed churn, availability polling, the
/// bypass-heavy worst case, and the epoch-reclamation sweep with the
/// reclaimer on vs. off. Values are ns per operation; `ops` operations are
/// timed per round (`records_per_thread` records `ops` in the snapshot).
pub fn versions_matrix(ops: u64, iters: usize) -> MatrixResult {
    const WINDOW: u64 = 32;
    const THREADS: u16 = 4;
    let vid = |t: u16, r: u64| VersionId {
        consumer: ThreadId(t),
        consumer_rid: Rid(r),
    };
    let range = AddrRange::new(0x1000, 16);
    let snapshot = || vec![0b01u8; 16];
    let mut series = BTreeMap::new();

    let churn_ops = ops * u64::from(THREADS) * 2;
    series.insert(
        format!("churn/w{WINDOW}"),
        best_of(churn_ops, iters, || {
            let mut table = VersionTable::new();
            for r in 1..=ops {
                for t in 0..THREADS {
                    table.produce(vid(t, r), range, snapshot(), 1);
                    if r > WINDOW {
                        std::hint::black_box(table.consume(vid(t, r - WINDOW)));
                    }
                }
            }
            for r in (ops - WINDOW + 1).max(1)..=ops {
                for t in 0..THREADS {
                    std::hint::black_box(table.consume(vid(t, r)));
                }
            }
            std::hint::black_box(table.peak_outstanding());
        }),
    );

    let mut polled = VersionTable::new();
    for t in 0..THREADS {
        for r in 1..=WINDOW {
            polled.produce(vid(t, r), range, snapshot(), 1);
        }
    }
    series.insert(
        "poll".to_string(),
        best_of(ops, iters, || {
            let mut hits = 0u64;
            for r in 1..=ops {
                hits += u64::from(polled.is_available(vid((r % 4) as u16, r % (WINDOW * 2) + 1)));
            }
            std::hint::black_box(hits);
        }),
    );

    series.insert(
        "bypass".to_string(),
        best_of(ops, iters, || {
            let mut table = VersionTable::new();
            for r in 1..=ops {
                let id = vid(0, r);
                table.bypass(id);
                table.produce(id, range, snapshot(), 1);
            }
            std::hint::black_box(table.outstanding());
        }),
    );

    // Chunk-striding sweep (one version per dense chunk, the worst
    // allocation rate per op): the on/off pair prices bounded residency.
    let sweep_chunks = ops.min(2048);
    for on in [true, false] {
        series.insert(
            format!("reclaim_{}", if on { "on" } else { "off" }),
            best_of(sweep_chunks, iters, || {
                let table = ConcurrentVersionTable::new(1).with_reclamation(on);
                for c in 0..sweep_chunks {
                    let id = vid(0, c * ConcurrentVersionTable::CHUNK_RIDS + 1);
                    table.produce(id, range, snapshot(), 1);
                    std::hint::black_box(table.consume(id));
                    if c % 64 == 0 {
                        table.advance_epoch(ThreadId(0));
                    }
                }
                std::hint::black_box(table.peak_dense_resident());
            }),
        );
    }

    MatrixResult {
        records_per_thread: ops,
        series,
    }
}

/// Shared `--check` body for every snapshot bin: diff `fresh` against the
/// baseline at `path`, emitting one GitHub Actions `::warning::` line per
/// series past [`REGRESSION_TOLERANCE`]. Always returns exit code 0 — the
/// bench-smoke step is non-blocking by design (shared CI runners jitter
/// far too much for a hard gate).
pub fn check_against(name: &str, path: &Path, fresh: &MatrixResult) -> i32 {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!(
            "::warning::{name} missing at {} — run the bench bin to regenerate",
            path.display()
        );
        return 0;
    };
    let Some(baseline) = parse_json(&text) else {
        println!("::warning::{name} is unparseable — run the bench bin to regenerate");
        return 0;
    };
    let mut regressed = 0usize;
    for (key, fresh_ns) in &fresh.series {
        let Some(base_ns) = baseline.series.get(key) else {
            println!("::warning::series {key} missing from {name} baseline");
            continue;
        };
        if *fresh_ns > base_ns * REGRESSION_TOLERANCE {
            regressed += 1;
            println!(
                "::warning::bench regression: {key} {fresh_ns:.1} ns vs baseline {base_ns:.1} (>{:.0}%)",
                (REGRESSION_TOLERANCE - 1.0) * 100.0
            );
        }
    }
    println!(
        "bench-smoke: {name}: {} series checked, {regressed} regressed past the {REGRESSION_TOLERANCE}x tolerance (non-blocking)",
        fresh.series.len()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent_matrix::to_json;

    #[test]
    fn shadow_matrix_round_trips_through_the_snapshot_schema() {
        let result = shadow_matrix(4, 1);
        assert_eq!(result.series.len(), 3 * (3 * 2 + 1));
        let parsed = parse_json(&to_json(&result)).expect("own output parses");
        assert_eq!(parsed.series.len(), result.series.len());
        assert!(result
            .series
            .values()
            .all(|ns| ns.is_finite() && *ns >= 0.0));
    }

    #[test]
    fn versions_matrix_covers_every_lifecycle_shape() {
        let result = versions_matrix(64, 1);
        for key in ["churn/w32", "poll", "bypass", "reclaim_on", "reclaim_off"] {
            assert!(result.series.contains_key(key), "missing series {key}");
        }
        let parsed = parse_json(&to_json(&result)).expect("own output parses");
        assert_eq!(parsed.series.len(), result.series.len());
    }

    #[test]
    fn best_of_discards_the_warm_up_round() {
        // The closure runs iters + 1 times; only the last `iters` are
        // candidates for the reported minimum.
        let mut calls = 0u32;
        let ns = best_of(1, 3, || calls += 1);
        assert_eq!(calls, 4);
        assert!(ns.is_finite());
    }
}
