//! Adversarial captured-stream presets: workloads engineered to drive one
//! substrate to its known bound.
//!
//! The benchmark generators in [`gen`](crate::gen) reproduce *realistic*
//! monitoring pressure; these presets do the opposite — each one is a
//! hand-shaped event capture that concentrates all of its traffic on a
//! single reclamation or ordering mechanism, so the mechanism's bound can
//! be asserted as a regression test (see `tests/soak.rs`):
//!
//! | preset | mechanism stressed | bound asserted |
//! |---|---|---|
//! | [`cycle_lock_masks`] | LOCKSET mask interner churn | `peak_interned_masks` stays window-bounded, no degradation |
//! | [`exhaust_read_vcs`] | HAPPENSBEFORE read-VC interner exhaustion | exactly one `DegradedPrecision` per session |
//! | [`rid_sweep`] | §5.5 version-table epoch reclamation | `peak_dense_resident` stays window-bounded across windows |
//! | [`arc_fanout`] | §5.2 arc gating under fan-in/fan-out storms | replay terminates (no deadlock), stalls observed |
//! | [`delta_thrash`] | delta-merge flush points | per-record flush thrash keeps CAS/delta parity |
//!
//! Every preset is a pure function of its parameters — no RNG, no ambient
//! state — so the generated streams (and therefore the bounds they probe)
//! are bit-identical across runs.

use paralog_events::{
    AddrRange, ArcKind, CaPhase, CaRecord, DependenceArc, EventRecord, HighLevelKind, Instr,
    LockId, MemRef, Reg, Rid, ThreadId, VersionId,
};

/// A hand-shaped adversarial capture: per-thread event streams plus the
/// statement of the bound the capture is engineered to stress.
#[derive(Debug, Clone)]
pub struct AdversarialCapture {
    /// Preset name (stable, test-facing).
    pub name: &'static str,
    /// The invariant this capture stresses — what a paired test asserts.
    pub bound: &'static str,
    /// Heap region covering every address the streams touch.
    pub heap: AddrRange,
    /// One event stream per monitored thread.
    pub streams: Vec<Vec<EventRecord>>,
}

impl AdversarialCapture {
    /// Total records across all streams.
    pub fn records(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }
}

/// Per-thread rid counter for hand-built streams.
struct RidGen(u64);

impl RidGen {
    fn next(&mut self) -> Rid {
        self.0 += 1;
        Rid(self.0)
    }
}

fn access(rid: Rid, addr: u64, write: bool) -> EventRecord {
    let mem = MemRef::new(addr, 4);
    EventRecord::instr(
        rid,
        if write {
            Instr::Store {
                dst: mem,
                src: Reg::new(0),
            }
        } else {
            Instr::Load {
                dst: Reg::new(0),
                src: mem,
            }
        },
    )
}

/// An own-stream-only lock event (`seq == u64::MAX`: never gates peers).
fn lock(rid: Rid, tid: u16, id: u32, acquire: bool) -> EventRecord {
    EventRecord::ca(
        rid,
        CaRecord {
            what: if acquire {
                HighLevelKind::Lock(LockId(id))
            } else {
                HighLevelKind::Unlock(LockId(id))
            },
            phase: if acquire {
                CaPhase::End
            } else {
                CaPhase::Begin
            },
            range: None,
            issuer: ThreadId(tid),
            issuer_rid: rid,
            seq: u64::MAX,
        },
    )
}

/// A sync-space record for HAPPENSBEFORE: `Store` is the release shape
/// (publish the clock), `Rmw` the acquire shape (join then republish).
fn sync_op(rid: Rid, addr: u64, rmw: bool) -> EventRecord {
    let mem = MemRef::new(addr, 8);
    EventRecord::instr(
        rid,
        if rmw {
            Instr::Rmw {
                mem,
                reg: Reg::new(0),
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg::new(0),
            }
        },
    )
}

/// Lock-mask interner cycling: two threads share one fresh variable per
/// iteration under a three-lock combination drawn from cyclic spaces
/// (lcm(11, 13, 7) = 1001 distinct combinations), then refine it down to
/// a single lock — interning one unique mask per iteration and releasing
/// it for the epoch-gated free. Far more distinct masks cycle through the
/// interner than may ever be resident at once.
pub fn cycle_lock_masks(iterations: u64) -> AdversarialCapture {
    let addr_base = 0x1000_0000u64;
    let mut t0 = Vec::new();
    let mut t1 = Vec::new();
    let (mut r0, mut r1) = (RidGen(0), RidGen(0));
    for i in 0..iterations {
        let combo = [(i % 11) as u32, 11 + (i % 13) as u32, 24 + (i % 7) as u32];
        let addr = addr_base + i * 4;
        for &l in &combo {
            t0.push(lock(r0.next(), 0, l, true));
        }
        t0.push(access(r0.next(), addr, true));
        for &l in &combo {
            t1.push(lock(r1.next(), 1, l, true));
        }
        // The second thread's write takes the variable shared-modified with
        // the full combination as its interned candidate set.
        t1.push(access(r1.next(), addr, true));
        // Refine to the surviving single lock, releasing the iteration's
        // unique combination id.
        t0.push(lock(r0.next(), 0, combo[1], false));
        t0.push(lock(r0.next(), 0, combo[2], false));
        t0.push(access(r0.next(), addr, true));
        t0.push(lock(r0.next(), 0, combo[0], false));
        for &l in &combo {
            t1.push(lock(r1.next(), 1, l, false));
        }
    }
    AdversarialCapture {
        name: "cycle_lock_masks",
        bound: "LOCKSET peak_interned_masks stays bounded (and precision intact) while \
                cycling far more distinct lock combinations than the 2^16 id space",
        heap: AddrRange::new(addr_base, iterations.max(1) * 4),
        streams: vec![t0, t1],
    }
}

/// Read-VC interner exhaustion: thread 0 bumps its vector clock before
/// each fresh word (a release in `sync_space`), then both threads read the
/// word and never write it — every word pins a *distinct* two-reader
/// vector clock live forever. `words > 2^16` therefore saturates the
/// HAPPENSBEFORE interner, which must degrade soundly with exactly one
/// `DegradedPrecision` diagnostic.
///
/// `sync_space` is the lifeguard's sync-address window (pass
/// `lockset::SYNC_SPACE_START`); the generator is deliberately decoupled
/// from the lifeguard crate.
pub fn exhaust_read_vcs(words: u64, sync_space: u64) -> AdversarialCapture {
    let word_base = 0x0100_0000u64;
    let mut t0 = Vec::with_capacity(2 * words as usize);
    let mut t1 = Vec::with_capacity(words as usize);
    let (mut r0, mut r1) = (RidGen(0), RidGen(0));
    for i in 0..words {
        let addr = word_base + i * 4;
        t0.push(sync_op(r0.next(), sync_space, false));
        t0.push(access(r0.next(), addr, false));
        t1.push(access(r1.next(), addr, false));
    }
    AdversarialCapture {
        name: "exhaust_read_vcs",
        bound: "HAPPENSBEFORE reports exactly one DegradedPrecision when an adversary \
                pins more live read VCs than the 2^16 id space",
        heap: AddrRange::new(word_base, words.max(1) * 4),
        streams: vec![t0, t1],
    }
}

/// §5.5 version churn across reclamation windows: thread 0 stores a shared
/// word, producing one single-consumer version per store; thread 1's
/// consuming loads carry rids one `CHUNK_RIDS` stride apart, so every
/// version lands in its own dense chunk and `versions` of them sweep
/// `versions / chunks_per_window` full windows of the concurrent version
/// table. Grow-only storage would retain every chunk; the epoch sweep must
/// keep residency near the producer/consumer lead instead.
///
/// `chunk_rids` is the table's chunk stride (pass
/// `ConcurrentVersionTable::CHUNK_RIDS`).
pub fn rid_sweep(versions: u64, chunk_rids: u64) -> AdversarialCapture {
    let shared = 0x2000_0000u64;
    let mem = MemRef::new(shared, 4);
    let mut t0 = Vec::with_capacity(versions as usize);
    let mut t1 = Vec::with_capacity(versions as usize);
    let mut r0 = RidGen(0);
    for c in 0..versions {
        let consumer_rid = Rid(c * chunk_rids + 1);
        let vid = VersionId {
            consumer: ThreadId(1),
            consumer_rid,
        };
        let mut prod = access(r0.next(), shared, true);
        prod.produce_versions.push((vid, mem, 1));
        t0.push(prod);
        let mut cons = access(consumer_rid, shared, false);
        cons.consume_version = Some((vid, mem));
        t1.push(cons);
    }
    AdversarialCapture {
        name: "rid_sweep",
        bound: "version-table peak_dense_resident stays near the producer lead while \
                rids sweep whole reclamation windows; drained chunks are reclaimed",
        heap: AddrRange::new(shared, 4),
        streams: vec![t0, t1],
    }
}

/// §5.2 arc storm: one hub thread and `spokes` spoke threads. Every round,
/// each spoke's access carries a RAW arc from the hub's write (fan-out),
/// and the hub's next write carries WAR arcs from two rotating spokes
/// (fan-in) — so nearly every record in the capture is gated on a peer.
/// The storm must replay to completion (round-robin over gated lanes,
/// no deadlock) on every backend.
pub fn arc_fanout(spokes: u16, rounds: u64) -> AdversarialCapture {
    assert!(spokes >= 2, "a storm needs at least two spokes");
    let shared = 0x3000_0000u64;
    let hub = ThreadId(0);
    let mut hub_stream: Vec<EventRecord> = Vec::with_capacity(rounds as usize);
    let mut spoke_streams: Vec<Vec<EventRecord>> =
        vec![Vec::with_capacity(rounds as usize); spokes as usize];
    let mut hub_rid = RidGen(0);
    let mut spoke_rids: Vec<RidGen> = (0..spokes).map(|_| RidGen(0)).collect();
    for round in 0..rounds {
        let write_rid = hub_rid.next();
        let mut write = access(write_rid, shared, true);
        if round > 0 {
            // Fan-in: the hub waits on two rotating spokes' previous-round
            // reads before overwriting.
            for k in 0..2u64 {
                let s = ((round + k) % spokes as u64) as usize;
                write.arcs.push(DependenceArc::new(
                    ThreadId((s + 1) as u16),
                    Rid(spoke_rids[s].0),
                    ArcKind::War,
                ));
            }
        }
        hub_stream.push(write);
        // Fan-out: every spoke's read waits on this round's hub write.
        for (s, stream) in spoke_streams.iter_mut().enumerate() {
            let mut read = access(spoke_rids[s].next(), shared, false);
            read.arcs
                .push(DependenceArc::new(hub, write_rid, ArcKind::Raw));
            stream.push(read);
        }
    }
    let mut streams = vec![hub_stream];
    streams.extend(spoke_streams);
    AdversarialCapture {
        name: "arc_fanout",
        bound: "replay terminates without deadlock while nearly every record gates on \
                a peer (fan-out to all spokes, fan-in from rotating spokes)",
        heap: AddrRange::new(shared, 4),
        streams,
    }
}

/// Delta-merge flush thrash: every other record is an *ordered* event (an
/// own-stream lock CA), so a delta-merge lane must flush its private
/// window at nearly every record — the worst case for batched publication.
/// Interleaved with the CAs, the threads ping-pong loads and stores over a
/// small shared window plus private slots, so the shadow state that must
/// survive each flush is non-trivial.
pub fn delta_thrash(threads: u16, rounds: u64) -> AdversarialCapture {
    assert!(threads >= 2, "thrash wants cross-thread visibility");
    let shared = 0x4000_0000u64;
    let private = 0x5000_0000u64;
    let mut streams: Vec<Vec<EventRecord>> = Vec::with_capacity(threads as usize);
    for t in 0..threads {
        let mut rid = RidGen(0);
        let mut s = Vec::with_capacity(3 * rounds as usize);
        for i in 0..rounds {
            let slot = shared + ((i + t as u64) % 8) * 4;
            let own = private + t as u64 * 0x1000 + (i % 64) * 4;
            s.push(access(rid.next(), slot, i % 2 == 0));
            // The ordered event: forces a delta lane to publish its window.
            s.push(lock(rid.next(), t, t as u32, i % 2 == 0));
            s.push(access(rid.next(), own, true));
        }
        streams.push(s);
    }
    AdversarialCapture {
        name: "delta_thrash",
        bound: "delta-merge replay stays fingerprint-identical to CAS-per-access when \
                ordered events force a window flush at nearly every record",
        heap: AddrRange::new(shared, 0x2000_0000),
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_pure_functions_of_parameters() {
        assert_eq!(
            cycle_lock_masks(50).streams,
            cycle_lock_masks(50).streams,
            "no ambient state may leak into a preset"
        );
        assert_eq!(
            arc_fanout(3, 20).streams,
            arc_fanout(3, 20).streams,
            "arc storms are deterministic"
        );
    }

    #[test]
    fn rids_are_strictly_monotone_per_stream() {
        for cap in [
            cycle_lock_masks(40),
            exhaust_read_vcs(100, 0xFFFF_0000),
            rid_sweep(64, 128),
            arc_fanout(4, 50),
            delta_thrash(3, 30),
        ] {
            for (t, stream) in cap.streams.iter().enumerate() {
                let mut last = 0u64;
                for rec in stream {
                    assert!(
                        rec.rid.0 > last,
                        "{}: thread {t} rid {} after {last}",
                        cap.name,
                        rec.rid.0
                    );
                    last = rec.rid.0;
                }
            }
            assert!(cap.records() > 0, "{}: empty capture", cap.name);
        }
    }

    #[test]
    fn fanout_arcs_reference_existing_records() {
        let cap = arc_fanout(4, 100);
        for (t, stream) in cap.streams.iter().enumerate() {
            for rec in stream {
                for arc in rec.arcs.iter() {
                    let src = arc.src.index();
                    assert_ne!(src, t, "self-arcs are meaningless");
                    let peer_max = cap.streams[src].last().expect("nonempty").rid;
                    assert!(
                        arc.src_rid <= peer_max,
                        "arc to T{src}#{} past its stream end {}",
                        arc.src_rid.0,
                        peer_max.0
                    );
                }
            }
        }
    }

    #[test]
    fn rid_sweep_versions_pair_up() {
        let cap = rid_sweep(32, 128);
        let produced: Vec<VersionId> = cap.streams[0]
            .iter()
            .flat_map(|r| r.produce_versions.iter().map(|(v, _, _)| *v))
            .collect();
        let consumed: Vec<VersionId> = cap.streams[1]
            .iter()
            .filter_map(|r| r.consume_version.map(|(v, _)| v))
            .collect();
        assert_eq!(produced, consumed, "every version has exactly one consumer");
        assert_eq!(produced.len(), 32);
        // Each consumer rid strides one chunk, so each version gets its own
        // dense chunk — the sweep touches `versions` distinct chunks.
        for pair in consumed.windows(2) {
            assert_eq!(pair[1].consumer_rid.0 - pair[0].consumer_rid.0, 128);
        }
    }
}
