//! Workload specifications: the knobs that make one synthetic benchmark
//! behave like BARNES and another like SWAPTIONS.
//!
//! We cannot run the real SPLASH-2/PARSEC binaries (no x86 frontend, no OS),
//! so each benchmark is modeled by the four properties that drive the
//! paper's evaluation shape (see DESIGN.md §2):
//!
//! 1. **instruction mix** — how much lifeguard work per instruction
//!    (BARNES's pointer chasing invokes more expensive TAINTCHECK handlers
//!    than LU/OCEAN's matrix streaming, §7);
//! 2. **sharing pattern** — density of inter-thread dependence arcs
//!    (SWAPTIONS' conflicts cause the dependence stalls of Figure 7);
//! 3. **working-set size** — cache behaviour of application and lifeguard;
//! 4. **high-level event rate** — SWAPTIONS performs ~450 K malloc/free
//!    pairs, each a ConflictAlert barrier (§7).

use paralog_events::AddrRange;
use std::fmt;

/// Base of per-thread private data regions.
pub const PRIVATE_BASE: u64 = 0x2000_0000;

/// Stride between per-thread private regions (1 GB of headroom each).
pub const PRIVATE_STRIDE: u64 = 0x0100_0000;

/// Base of the shared data region.
pub const SHARED_BASE: u64 = 0x6000_0000;

/// The eight benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPLASH-2 Barnes-Hut N-body: pointer chasing, irregular sharing.
    Barnes,
    /// SPLASH-2 LU decomposition: blocked matrix, barrier phases.
    Lu,
    /// SPLASH-2 Ocean: grid stencil, neighbour-row sharing.
    Ocean,
    /// SPLASH-2 FMM: tree + math mix.
    Fmm,
    /// SPLASH-2 Radiosity: lock-protected task queue.
    Radiosity,
    /// PARSEC Blackscholes: embarrassingly parallel option pricing.
    Blackscholes,
    /// PARSEC Fluidanimate: fine-grained neighbour locking.
    Fluidanimate,
    /// PARSEC Swaptions: private compute with heavy malloc/free churn.
    Swaptions,
}

impl Benchmark {
    /// All benchmarks, in the paper's figure order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Barnes,
            Benchmark::Lu,
            Benchmark::Ocean,
            Benchmark::Blackscholes,
            Benchmark::Fluidanimate,
            Benchmark::Swaptions,
            Benchmark::Fmm,
            Benchmark::Radiosity,
        ]
    }

    /// Upper-case display name used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::Barnes => "BARNES",
            Benchmark::Lu => "LU",
            Benchmark::Ocean => "OCEAN",
            Benchmark::Fmm => "FMM",
            Benchmark::Radiosity => "RADIOSITY",
            Benchmark::Blackscholes => "BLACKSCH.",
            Benchmark::Fluidanimate => "FLUIDANIM.",
            Benchmark::Swaptions => "SWAPTIONS",
        }
    }

    /// The paper's input description (Table 1), for the Table 1 harness.
    pub fn paper_input(&self) -> &'static str {
        match self {
            Benchmark::Barnes => "16K bodies",
            Benchmark::Lu => "Matrix size: 1024 x 1024",
            Benchmark::Ocean => "Grid size: 258 x 258",
            Benchmark::Fmm => "32768 particles",
            Benchmark::Radiosity => "Base problem: -room",
            Benchmark::Blackscholes => "simlarge",
            Benchmark::Fluidanimate => "simlarge",
            Benchmark::Swaptions => "simlarge",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Relative weights of instruction idioms (normalized by the generator).
///
/// Idioms, not single instructions, are generated, so that dataflow chains
/// look like compiled code and Inheritance Tracking sees realistic
/// absorption opportunities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrMix {
    /// `load; alu; store` read-modify-write chains.
    pub load_compute_store: f64,
    /// `load; store` copy chains (IT coalesces these into one event).
    pub copy: f64,
    /// Pure register computation (`movri`/`alu` chains).
    pub compute: f64,
    /// Dependent-load pointer chasing (BARNES).
    pub pointer_chase: f64,
    /// Plain load into a register that is then consumed by computation.
    pub load_use: f64,
    /// Indirect jumps through a register (TAINTCHECK's critical use).
    pub indirect_jump: f64,
}

impl InstrMix {
    /// Matrix-streaming mix (LU/OCEAN/BLACKSCHOLES-like).
    pub fn streaming() -> Self {
        InstrMix {
            load_compute_store: 0.18,
            copy: 0.20,
            compute: 0.47,
            pointer_chase: 0.02,
            load_use: 0.12,
            indirect_jump: 0.01,
        }
    }

    /// Pointer-chasing mix (BARNES-like).
    pub fn pointer_heavy() -> Self {
        InstrMix {
            load_compute_store: 0.24,
            copy: 0.18,
            compute: 0.12,
            pointer_chase: 0.32,
            load_use: 0.12,
            indirect_jump: 0.02,
        }
    }

    /// Balanced mix (FMM/RADIOSITY/FLUIDANIMATE-like).
    pub fn balanced() -> Self {
        InstrMix {
            load_compute_store: 0.22,
            copy: 0.20,
            compute: 0.32,
            pointer_chase: 0.12,
            load_use: 0.13,
            indirect_jump: 0.01,
        }
    }

    /// Total weight (for normalization).
    pub fn total(&self) -> f64 {
        self.load_compute_store
            + self.copy
            + self.compute
            + self.pointer_chase
            + self.load_use
            + self.indirect_jump
    }
}

/// Top-level operation-category mix — the shape of a key/value workload
/// generator config (reads, writes, allocation churn, lock traffic) layered
/// *above* the instruction-idiom mix.
///
/// When a spec carries an `OpMix`, every idiom slot first draws a category
/// from these weights: `reads`/`writes` select read- or write-leaning
/// dataflow idioms, `alloc_free` emits a malloc/free pair, and `locks` a
/// full critical section. The schedule-based `malloc_every`/`lock_every`
/// counters still fire independently, so an `OpMix` *adds* category
/// pressure rather than replacing a benchmark's character.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Weight of read-leaning idioms (load-use, pointer chase).
    pub reads: f64,
    /// Weight of write-leaning idioms (load-compute-store, copy).
    pub writes: f64,
    /// Weight of malloc/free pair slots.
    pub alloc_free: f64,
    /// Weight of lock-protected critical-section slots.
    pub locks: f64,
}

impl OpMix {
    /// Read-dominated mix (lookup-style traffic).
    pub fn read_heavy() -> Self {
        OpMix {
            reads: 0.80,
            writes: 0.15,
            alloc_free: 0.03,
            locks: 0.02,
        }
    }

    /// Write-dominated mix (ingest-style traffic).
    pub fn write_heavy() -> Self {
        OpMix {
            reads: 0.25,
            writes: 0.60,
            alloc_free: 0.10,
            locks: 0.05,
        }
    }

    /// Evenly contended mix.
    pub fn balanced() -> Self {
        OpMix {
            reads: 0.40,
            writes: 0.40,
            alloc_free: 0.10,
            locks: 0.10,
        }
    }

    /// Total weight (for normalization; weights need not sum to one).
    pub fn total(&self) -> f64 {
        self.reads + self.writes + self.alloc_free + self.locks
    }

    /// `true` when every weight is finite, non-negative, and at least one
    /// is positive.
    pub fn is_valid(&self) -> bool {
        let ws = [self.reads, self.writes, self.alloc_free, self.locks];
        ws.iter().all(|w| w.is_finite() && *w >= 0.0) && self.total() > 0.0
    }
}

/// Full generator parameterization for one benchmark run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Benchmark identity (for labels); `None` for custom workloads.
    pub benchmark: Option<Benchmark>,
    /// Display name.
    pub name: String,
    /// Application thread count.
    pub threads: usize,
    /// Instruction-idiom slots per thread (before scaling).
    pub ops_per_thread: usize,
    /// RNG seed; equal seeds give byte-identical workloads.
    pub seed: u64,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Per-thread private working set in bytes.
    pub private_bytes: u64,
    /// Shared-region size in 8-byte words.
    pub shared_words: u64,
    /// Fraction of memory accesses aimed at the shared region.
    pub shared_fraction: f64,
    /// Fraction of shared accesses that write.
    pub shared_write_fraction: f64,
    /// Number of application locks (0 = lock-free benchmark).
    pub locks: u32,
    /// Average idiom slots between lock-protected critical sections.
    pub lock_every: Option<usize>,
    /// Idiom slots between all-thread barriers (`None` = no phases).
    pub barrier_every: Option<usize>,
    /// Average idiom slots between malloc/free pairs (`None` = none).
    pub malloc_every: Option<usize>,
    /// Average idiom slots between `read()` syscalls (`None` = none).
    pub syscall_every: Option<usize>,
    /// Inject monitoring-visible bugs (use-after-free, tainted jumps).
    pub inject_bugs: bool,
    /// Zipf skew of *shared-region* address selection. `None` keeps the
    /// historical uniform draw (byte-identical RNG sequence to older
    /// captures); `Some(theta)` with `theta > 0` concentrates accesses on
    /// a hot head of the shared region — the contention knob the
    /// delta-merge benchmarks sweep (`theta ≈ 0.6` mild, `0.99` classic
    /// YCSB-style skew).
    pub zipf_theta: Option<f64>,
    /// Operation-category mix layered above the instruction-idiom mix.
    /// `None` keeps the historical pure-idiom slot loop (byte-identical
    /// RNG sequence to older captures); `Some(mix)` draws a category per
    /// slot from the mix's read/write/alloc-free/lock weights.
    pub op_mix: Option<OpMix>,
    /// Per-slot probability of injecting a `read()` syscall (the canonical
    /// taint source) *in addition to* the `syscall_every` schedule. `None`
    /// draws nothing and keeps the historical RNG sequence.
    pub syscall_rate: Option<f64>,
    /// Per-slot probability of injecting an *unprotected* shared write into
    /// the racy window (the first [`RACY_WINDOW_WORDS`] words of the shared
    /// region), deliberately bypassing the lock discipline so LOCKSET and
    /// HAPPENSBEFORE have genuine races to find. `None` draws nothing and
    /// keeps the historical RNG sequence.
    pub race_rate: Option<f64>,
}

/// Size (in 8-byte words) of the racy window at the head of the shared
/// region that `race_rate` injection targets: small enough that racing
/// threads genuinely collide.
pub const RACY_WINDOW_WORDS: u64 = 8;

impl WorkloadSpec {
    /// The calibrated spec for `bench` at `threads` application threads.
    pub fn benchmark(bench: Benchmark, threads: usize) -> Self {
        let base = WorkloadSpec {
            benchmark: Some(bench),
            name: bench.label().to_string(),
            threads,
            ops_per_thread: 12_000,
            seed: 0x5eed_0000 + bench as u64,
            mix: InstrMix::balanced(),
            private_bytes: 128 * 1024,
            shared_words: 8 * 1024,
            shared_fraction: 0.10,
            shared_write_fraction: 0.25,
            locks: 0,
            lock_every: None,
            barrier_every: None,
            malloc_every: None,
            syscall_every: Some(6000),
            inject_bugs: false,
            zipf_theta: None,
            op_mix: None,
            syscall_rate: None,
            race_rate: None,
        };
        match bench {
            Benchmark::Lu => WorkloadSpec {
                mix: InstrMix::streaming(),
                private_bytes: 256 * 1024,
                shared_words: 4 * 1024,
                shared_fraction: 0.02,
                shared_write_fraction: 0.30,
                barrier_every: Some(3000),
                ..base
            },
            Benchmark::Ocean => WorkloadSpec {
                mix: InstrMix::streaming(),
                private_bytes: 384 * 1024,
                shared_words: 8 * 1024,
                shared_fraction: 0.04,
                shared_write_fraction: 0.35,
                barrier_every: Some(2000),
                ..base
            },
            Benchmark::Barnes => WorkloadSpec {
                mix: InstrMix::pointer_heavy(),
                private_bytes: 128 * 1024,
                shared_words: 32 * 1024,
                shared_fraction: 0.22,
                shared_write_fraction: 0.12,
                locks: 8,
                lock_every: Some(700),
                barrier_every: Some(6000),
                ..base
            },
            Benchmark::Fmm => WorkloadSpec {
                private_bytes: 256 * 1024,
                shared_words: 16 * 1024,
                shared_fraction: 0.10,
                shared_write_fraction: 0.18,
                locks: 4,
                lock_every: Some(1500),
                barrier_every: Some(4000),
                ..base
            },
            Benchmark::Radiosity => WorkloadSpec {
                private_bytes: 128 * 1024,
                shared_words: 16 * 1024,
                shared_fraction: 0.18,
                shared_write_fraction: 0.35,
                locks: 16,
                lock_every: Some(400),
                malloc_every: Some(2500),
                ..base
            },
            Benchmark::Blackscholes => WorkloadSpec {
                mix: InstrMix::streaming(),
                private_bytes: 128 * 1024,
                shared_words: 512,
                shared_fraction: 0.004,
                shared_write_fraction: 0.10,
                barrier_every: Some(6000),
                ..base
            },
            Benchmark::Fluidanimate => WorkloadSpec {
                private_bytes: 256 * 1024,
                shared_words: 24 * 1024,
                shared_fraction: 0.13,
                shared_write_fraction: 0.30,
                locks: 32,
                lock_every: Some(500),
                barrier_every: Some(2500),
                ..base
            },
            Benchmark::Swaptions => WorkloadSpec {
                mix: InstrMix::streaming(),
                private_bytes: 64 * 1024,
                shared_words: 512,
                shared_fraction: 0.01,
                shared_write_fraction: 0.20,
                // §7: ~450K alloc/free pairs over the parallel section —
                // relative to instruction count, one pair every ~100 slots.
                malloc_every: Some(110),
                ..base
            },
        }
    }

    /// Scales the run *duration* by `factor` (figures use small factors to
    /// keep simulation budgets sane). Working-set sizes are part of the
    /// benchmark's character and stay fixed.
    #[must_use]
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.ops_per_thread = ((self.ops_per_thread as f64 * factor) as usize).max(100);
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables bug injection (use-after-free, tainted indirect jumps).
    #[must_use]
    pub fn inject_bugs(mut self, inject: bool) -> Self {
        self.inject_bugs = inject;
        self
    }

    /// Skews shared-region address selection by a Zipf distribution with
    /// exponent `theta` (0 = uniform; larger = hotter head).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative `theta`.
    #[must_use]
    pub fn zipf(mut self, theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf theta must be finite and non-negative"
        );
        self.zipf_theta = Some(theta);
        self
    }

    /// Layers an operation-category mix above the instruction-idiom mix:
    /// each slot first draws read/write/alloc-free/lock from `mix`.
    ///
    /// # Panics
    ///
    /// Panics when the mix has a negative, non-finite, or all-zero weight
    /// vector.
    #[must_use]
    pub fn op_mix(mut self, mix: OpMix) -> Self {
        assert!(
            mix.is_valid(),
            "op mix weights must be finite, non-negative, and not all zero"
        );
        self.op_mix = Some(mix);
        self
    }

    /// Injects `read()` syscalls with per-slot probability `rate`, in
    /// addition to any `syscall_every` schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    #[must_use]
    pub fn syscall_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "syscall rate must be a probability in [0, 1]"
        );
        self.syscall_rate = Some(rate);
        self
    }

    /// Injects unprotected racy shared writes with per-slot probability
    /// `rate` (see [`RACY_WINDOW_WORDS`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    #[must_use]
    pub fn race_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "race rate must be a probability in [0, 1]"
        );
        self.race_rate = Some(rate);
        self
    }

    /// Per-thread private region.
    pub fn private_region(&self, tid: usize) -> AddrRange {
        AddrRange::new(
            PRIVATE_BASE + tid as u64 * PRIVATE_STRIDE,
            self.private_bytes,
        )
    }

    /// The shared region.
    pub fn shared_region(&self) -> AddrRange {
        AddrRange::new(SHARED_BASE, self.shared_words * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_specs() {
        for b in Benchmark::all() {
            let s = WorkloadSpec::benchmark(b, 4);
            assert_eq!(s.threads, 4);
            assert!(s.ops_per_thread > 0);
            assert!(
                s.mix.total() > 0.99 && s.mix.total() < 1.01,
                "{b}: mix normalized"
            );
        }
    }

    #[test]
    fn swaptions_has_malloc_churn() {
        let s = WorkloadSpec::benchmark(Benchmark::Swaptions, 8);
        assert!(s.malloc_every.unwrap() < 200, "heavy allocation churn");
        assert!(WorkloadSpec::benchmark(Benchmark::Lu, 8)
            .malloc_every
            .is_none());
    }

    #[test]
    fn barnes_is_pointer_heavy_and_shares() {
        let b = WorkloadSpec::benchmark(Benchmark::Barnes, 8);
        let lu = WorkloadSpec::benchmark(Benchmark::Lu, 8);
        assert!(b.mix.pointer_chase > lu.mix.pointer_chase * 5.0);
        assert!(b.shared_fraction > lu.shared_fraction * 3.0);
    }

    #[test]
    fn scale_shrinks_work() {
        let s = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.1);
        assert_eq!(s.ops_per_thread, 1200);
        assert!(s.private_bytes >= 4096);
    }

    #[test]
    fn private_regions_are_disjoint() {
        let s = WorkloadSpec::benchmark(Benchmark::Ocean, 8);
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert!(!s.private_region(a).overlaps(&s.private_region(b)));
            }
        }
        for t in 0..8 {
            assert!(!s.private_region(t).overlaps(&s.shared_region()));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.0);
    }

    #[test]
    fn op_mix_presets_are_valid() {
        for mix in [OpMix::read_heavy(), OpMix::write_heavy(), OpMix::balanced()] {
            assert!(mix.is_valid());
            assert!(
                mix.total() > 0.99 && mix.total() < 1.01,
                "presets normalized"
            );
        }
        assert!(!OpMix {
            reads: 0.0,
            writes: 0.0,
            alloc_free: 0.0,
            locks: 0.0,
        }
        .is_valid());
        assert!(!OpMix {
            reads: -1.0,
            writes: 2.0,
            alloc_free: 0.0,
            locks: 0.0,
        }
        .is_valid());
    }

    #[test]
    #[should_panic(expected = "not all zero")]
    fn degenerate_op_mix_rejected() {
        let _ = WorkloadSpec::benchmark(Benchmark::Lu, 2).op_mix(OpMix {
            reads: 0.0,
            writes: 0.0,
            alloc_free: 0.0,
            locks: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_syscall_rate_rejected() {
        let _ = WorkloadSpec::benchmark(Benchmark::Lu, 2).syscall_rate(1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_race_rate_rejected() {
        let _ = WorkloadSpec::benchmark(Benchmark::Lu, 2).race_rate(-0.1);
    }

    #[test]
    fn injection_knobs_default_off() {
        for b in Benchmark::all() {
            let s = WorkloadSpec::benchmark(b, 4);
            assert!(s.op_mix.is_none());
            assert!(s.syscall_rate.is_none());
            assert!(s.race_rate.is_none());
        }
    }
}
