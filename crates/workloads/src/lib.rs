//! Synthetic SPLASH-2/PARSEC-like workloads for the ParaLog evaluation.
//!
//! Table 1 of the paper evaluates eight benchmarks; this crate generates
//! deterministic multithreaded instruction streams that reproduce each
//! benchmark's *monitoring-relevant character* — instruction mix, sharing
//! pattern, working-set size and high-level event rate — without the real
//! binaries (see DESIGN.md for the substitution argument).
//!
//! # Example
//!
//! ```rust
//! use paralog_workloads::{Benchmark, WorkloadSpec};
//!
//! let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4).scale(0.1).build();
//! assert_eq!(w.thread_count(), 4);
//! assert!(w.high_level_ops() > 0, "swaptions churns malloc/free");
//! ```

#![warn(missing_debug_implementations)]

pub mod adversarial;
pub mod gen;
pub mod spec;

pub use adversarial::AdversarialCapture;
pub use gen::Workload;
pub use spec::{
    Benchmark, InstrMix, OpMix, WorkloadSpec, PRIVATE_BASE, PRIVATE_STRIDE, RACY_WINDOW_WORDS,
    SHARED_BASE,
};
