//! The workload generator engine.
//!
//! Turns a [`WorkloadSpec`] into deterministic per-thread operation streams.
//! Generation works in *idiom slots*: each slot emits a short dataflow idiom
//! (load-compute-store, copy, pointer chase, ...) so register dependences
//! look like compiled code — which is what gives Inheritance Tracking
//! realistic absorption opportunities — plus the benchmark's high-level
//! events (locks, barriers, malloc/free pairs, syscalls) at their configured
//! rates.
//!
//! All SPLASH-2/PARSEC data lives on the heap (the real programs allocate
//! their grids and trees with `malloc` at startup), so each thread opens with
//! a setup `malloc` covering its private region and thread 0 additionally
//! allocates the shared region: AddrCheck therefore checks every data access,
//! as in the paper.

use crate::spec::{Benchmark, WorkloadSpec};
use paralog_events::{AddrRange, BarrierId, Instr, LockId, MemRef, Op, Reg, SyscallKind};
use paralog_sim::heap::{HEAP_BASE, HEAP_SIZE};
use paralog_sim::sync::lock_word;
use paralog_sim::Heap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A fully generated workload, ready for the platform.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Benchmark identity, if any.
    pub benchmark: Option<Benchmark>,
    /// Per-thread operation streams.
    pub threads: Vec<Vec<Op>>,
    /// The heap region (spans setup allocations and the dynamic heap).
    pub heap: AddrRange,
    /// Number of locks used.
    pub locks: u32,
}

impl Workload {
    /// Total operations across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Number of application threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Count of high-level (non-instruction) operations.
    pub fn high_level_ops(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.iter())
            .filter(|op| op.is_high_level())
            .count()
    }
}

impl WorkloadSpec {
    /// Generates the workload. Deterministic: equal specs (including seed)
    /// produce identical streams.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn build(&self) -> Workload {
        assert!(self.threads > 0, "workload needs at least one thread");
        let mut threads = Vec::with_capacity(self.threads);
        for tid in 0..self.threads {
            threads.push(ThreadGen::new(self, tid).run());
        }
        // The checked heap is the *dynamic* allocator arena: SPLASH-2/PARSEC
        // setup arrays are allocated once and never freed, so (as in the
        // paper, §7) AddrCheck's work concentrates on the malloc/free
        // traffic, leaving its lifeguard mostly waiting for the application.
        Workload {
            name: self.name.clone(),
            benchmark: self.benchmark,
            threads,
            heap: AddrRange::new(HEAP_BASE, HEAP_SIZE),
            locks: self.locks,
        }
    }
}

/// Working registers used by idioms: r0–r5 are short-lived data registers,
/// r6/r7 hold long-lived constants (loop-invariant scalars — set once by an
/// immediate, then used as the second ALU source, the way compiled loops
/// keep strides and scale factors in registers). r8 is the pointer-chase
/// register, r12 the jump-target register.
const DATA_REGS: [u8; 6] = [0, 1, 2, 3, 4, 5];
const CONST_REGS: [u8; 2] = [6, 7];
const CHASE_REG: u8 = 8;
const JUMP_REG: u8 = 12;

struct ThreadGen<'a> {
    spec: &'a WorkloadSpec,
    tid: usize,
    rng: StdRng,
    ops: Vec<Op>,
    /// Dynamic-heap allocator for this thread's arena slice.
    heap: Heap,
    /// Live dynamic allocations (oldest first).
    live: VecDeque<AddrRange>,
    /// The last freed range (for use-after-free injection).
    last_freed: Option<AddrRange>,
    /// The most recent `read()` buffer (tainted data source).
    tainted_zone: Option<AddrRange>,
    /// Sequential cursor into the private region.
    private_cursor: u64,
    /// Cumulative Zipf weights over shared-region word ranks, present only
    /// when the spec skews shared addressing (`zipf_theta`).
    zipf_cdf: Option<Vec<f64>>,
    /// Recently issued addresses, re-accessed for temporal locality.
    recent: VecDeque<MemRef>,
    next_barrier: u32,
    next_lock_slot: usize,
    next_malloc_slot: usize,
    next_syscall_slot: usize,
}

impl<'a> ThreadGen<'a> {
    fn new(spec: &'a WorkloadSpec, tid: usize) -> Self {
        let arena = HEAP_SIZE / spec.threads as u64;
        let heap = Heap::with_region(AddrRange::new(HEAP_BASE + tid as u64 * arena, arena));
        let mut rng = StdRng::seed_from_u64(
            spec.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid as u64 + 1)),
        );
        let next_lock_slot = spec
            .lock_every
            .map(|n| jittered(&mut rng, n))
            .unwrap_or(usize::MAX);
        let next_malloc_slot = spec
            .malloc_every
            .map(|n| jittered(&mut rng, n))
            .unwrap_or(usize::MAX);
        let next_syscall_slot = spec
            .syscall_every
            .map(|n| jittered(&mut rng, n))
            .unwrap_or(usize::MAX);
        let zipf_cdf = spec.zipf_theta.map(|theta| {
            let mut cdf = Vec::with_capacity(spec.shared_words as usize);
            let mut total = 0.0f64;
            for rank in 0..spec.shared_words {
                total += 1.0 / ((rank + 1) as f64).powf(theta);
                cdf.push(total);
            }
            cdf
        });
        ThreadGen {
            spec,
            tid,
            rng,
            zipf_cdf,
            ops: Vec::with_capacity(spec.ops_per_thread * 2),
            heap,
            live: VecDeque::new(),
            recent: VecDeque::new(),
            last_freed: None,
            tainted_zone: None,
            private_cursor: 0,
            next_barrier: 0,
            next_lock_slot,
            next_malloc_slot,
            next_syscall_slot,
        }
    }

    fn run(mut self) -> Vec<Op> {
        self.setup_allocations();
        for slot in 0..self.spec.ops_per_thread {
            if let Some(every) = self.spec.barrier_every {
                if slot > 0 && slot % every == 0 {
                    self.ops.push(Op::Barrier {
                        barrier: BarrierId(self.next_barrier),
                    });
                    self.next_barrier += 1;
                }
            }
            if slot >= self.next_malloc_slot {
                self.malloc_free_pair();
                let every = self.spec.malloc_every.expect("guarded by slot schedule");
                self.next_malloc_slot = slot + jittered(&mut self.rng, every).max(1);
            }
            if slot >= self.next_syscall_slot {
                self.syscall();
                let every = self.spec.syscall_every.expect("guarded by slot schedule");
                self.next_syscall_slot = slot + jittered(&mut self.rng, every).max(1);
            }
            if slot >= self.next_lock_slot {
                self.critical_section();
                let every = self.spec.lock_every.expect("guarded by slot schedule");
                self.next_lock_slot = slot + jittered(&mut self.rng, every).max(1);
            }
            // Injection layers: each is gated on its `Option` so a `None`
            // spec draws nothing from the RNG and the historical stream
            // stays byte-identical.
            if let Some(rate) = self.spec.syscall_rate {
                if self.rng.gen_bool(rate) {
                    self.syscall();
                }
            }
            if let Some(rate) = self.spec.race_rate {
                if self.rng.gen_bool(rate) {
                    self.racy_write();
                }
            }
            if let Some(mix) = self.spec.op_mix {
                self.op_mix_slot(mix);
            } else {
                self.idiom();
            }
        }
        // Close the parallel phase with one final barrier when phased.
        if self.spec.barrier_every.is_some() {
            self.ops.push(Op::Barrier {
                barrier: BarrierId(u32::MAX),
            });
        }
        self.ops
    }

    /// Startup: initialize the constant registers.
    fn setup_allocations(&mut self) {
        for c in CONST_REGS {
            self.ops.push(Op::Instr(Instr::MovRI { dst: Reg(c) }));
        }
    }

    /// A long-lived constant register (second ALU source).
    fn const_reg(&mut self) -> Reg {
        Reg(CONST_REGS[self.rng.gen_range(0..CONST_REGS.len())])
    }

    fn idiom(&mut self) {
        let mix = &self.spec.mix;
        let mut pick = self.rng.gen::<f64>() * mix.total();
        pick -= mix.load_compute_store;
        if pick < 0.0 {
            return self.load_compute_store();
        }
        pick -= mix.copy;
        if pick < 0.0 {
            return self.copy_idiom();
        }
        pick -= mix.compute;
        if pick < 0.0 {
            return self.compute_idiom();
        }
        pick -= mix.pointer_chase;
        if pick < 0.0 {
            return self.pointer_chase();
        }
        pick -= mix.load_use;
        if pick < 0.0 {
            return self.load_use();
        }
        self.indirect_jump();
    }

    fn reg(&mut self) -> Reg {
        Reg(DATA_REGS[self.rng.gen_range(0..DATA_REGS.len())])
    }

    /// One slot under an [`OpMix`](crate::spec::OpMix): draw a category, then emit a matching
    /// idiom — read-leaning (load-use / pointer chase), write-leaning
    /// (load-compute-store / copy), a malloc/free pair, or a full critical
    /// section.
    fn op_mix_slot(&mut self, mix: crate::spec::OpMix) {
        let mut pick = self.rng.gen::<f64>() * mix.total();
        pick -= mix.reads;
        if pick < 0.0 {
            if self.rng.gen_bool(0.3) {
                return self.pointer_chase();
            }
            return self.load_use();
        }
        pick -= mix.writes;
        if pick < 0.0 {
            if self.rng.gen_bool(0.4) {
                return self.copy_idiom();
            }
            return self.load_compute_store();
        }
        pick -= mix.alloc_free;
        if pick < 0.0 {
            return self.malloc_free_pair();
        }
        self.critical_section();
    }

    /// A deliberately unprotected write into the racy window at the head of
    /// the shared region: every injecting thread targets the same few words
    /// with no lock held and no ordering sync, so LOCKSET sees inconsistent
    /// discipline and HAPPENSBEFORE sees unordered writes.
    fn racy_write(&mut self) {
        let words = self
            .spec
            .shared_words
            .clamp(1, crate::spec::RACY_WINDOW_WORDS);
        let idx = self.rng.gen_range(0..words);
        let mem = MemRef::new(crate::spec::SHARED_BASE + idx * 8, 8);
        let r = self.reg();
        self.ops.push(Op::Instr(Instr::MovRI { dst: r }));
        self.ops.push(Op::Instr(Instr::Store { dst: mem, src: r }));
    }

    /// Picks a data address: shared region with `shared_fraction`
    /// probability, otherwise private (with a bias toward live dynamic
    /// allocations when churn is configured). A quarter of accesses revisit
    /// a recent address — the temporal reuse (hot fields, stack slots) that
    /// both caches and Idempotent Filters exploit in real programs.
    fn data_addr(&mut self, write_intent: bool) -> (MemRef, bool) {
        if !self.recent.is_empty() && self.rng.gen_bool(0.25) {
            let idx = self.rng.gen_range(0..self.recent.len());
            return (self.recent[idx], write_intent);
        }
        let picked = self.fresh_data_addr(write_intent);
        self.recent.push_back(picked.0);
        if self.recent.len() > 16 {
            self.recent.pop_front();
        }
        picked
    }

    fn fresh_data_addr(&mut self, write_intent: bool) -> (MemRef, bool) {
        let size = if self.rng.gen_bool(0.7) { 4u8 } else { 8u8 };
        if self.rng.gen_bool(self.spec.shared_fraction) {
            let words = self.spec.shared_words;
            let partition = (words / self.spec.threads as u64).max(1);
            let idx = if let Some(cdf) = &self.zipf_cdf {
                // Zipf-skewed rank draw: every thread hammers the same hot
                // head of the shared region, so contention scales with
                // theta rather than with the partitioning below. A `None`
                // theta never reaches this arm and keeps the historical
                // RNG draw sequence byte-identical.
                let total = *cdf.last().expect("shared region is non-empty");
                let u = self.rng.gen::<f64>() * total;
                cdf.partition_point(|&c| c < u).min(words as usize - 1) as u64
            } else if self.rng.gen_bool(0.5) {
                // Own partition (plus neighbour boundary spill-over).
                let base = partition * self.tid as u64;
                (base + self.rng.gen_range(0..partition + 4)) % words
            } else {
                self.rng.gen_range(0..words)
            };
            let is_write = write_intent && self.rng.gen_bool(self.spec.shared_write_fraction * 2.0);
            (
                MemRef::new(crate::spec::SHARED_BASE + idx * 8, size),
                is_write,
            )
        } else if !self.live.is_empty() && self.rng.gen_bool(0.5) {
            let alloc = self.live[self.rng.gen_range(0..self.live.len())];
            let max_off = alloc.len.saturating_sub(8).max(1);
            let off = self.rng.gen_range(0..max_off) & !7;
            (MemRef::new(alloc.start + off, size), write_intent)
        } else if let Some(freed) = self
            .last_freed
            .filter(|_| self.spec.inject_bugs && self.rng.gen_bool(0.02))
        {
            // Use-after-free: touch a freed range.
            (MemRef::new(freed.start, size), write_intent)
        } else {
            // Private region: streaming through a hot window with rare far
            // jumps — the locality real array codes exhibit.
            let region = self.spec.private_region(self.tid);
            let addr = if let Some(zone) = self.tainted_zone.filter(|_| self.rng.gen_bool(0.05)) {
                zone.start + (self.rng.gen_range(0..zone.len.max(8) / 8)) * 8
            } else if self.rng.gen_bool(0.93) {
                self.private_cursor =
                    (self.private_cursor + 8) % region.len.saturating_sub(8).max(8);
                region.start + self.private_cursor
            } else {
                // Far jump restarts the stream elsewhere.
                self.private_cursor = (self.rng.gen_range(0..region.len / 8)) * 8;
                region.start + self.private_cursor
            };
            (MemRef::new(addr & !7, size), write_intent)
        }
    }

    fn load_compute_store(&mut self) {
        let (src, _) = self.data_addr(false);
        let (dst, _) = self.data_addr(true);
        let r1 = self.reg();
        let r2 = self.const_reg();
        let r3 = self.reg();
        self.ops.push(Op::Instr(Instr::Load { dst: r1, src }));
        self.ops.push(Op::Instr(Instr::Alu2 {
            dst: r3,
            a: r1,
            b: r2,
        }));
        self.ops.push(Op::Instr(Instr::Store { dst, src: r3 }));
    }

    fn copy_idiom(&mut self) {
        let (src, _) = self.data_addr(false);
        let (dst, _) = self.data_addr(true);
        let r1 = self.reg();
        self.ops.push(Op::Instr(Instr::Load { dst: r1, src }));
        self.ops.push(Op::Instr(Instr::Store { dst, src: r1 }));
    }

    fn compute_idiom(&mut self) {
        let r1 = self.reg();
        let r2 = self.reg();
        if self.rng.gen_bool(0.3) {
            self.ops.push(Op::Instr(Instr::MovRI { dst: r1 }));
        }
        self.ops.push(Op::Instr(Instr::Alu1 { dst: r2, a: r2 }));
        if self.rng.gen_bool(0.4) {
            let c = self.const_reg();
            self.ops.push(Op::Instr(Instr::Alu2 {
                dst: r2,
                a: r2,
                b: c,
            }));
        } else {
            self.ops.push(Op::Instr(Instr::Alu1 { dst: r1, a: r1 }));
        }
    }

    fn pointer_chase(&mut self) {
        // Dependent loads through the chase register: each load's address
        // comes from the previous load's value. Dataflow-wise these are
        // plain loads (absorbed by IT); the final use materializes one.
        let depth = self.rng.gen_range(2..=4);
        for _ in 0..depth {
            let (next, _) = self.data_addr(false);
            self.ops.push(Op::Instr(Instr::Load {
                dst: Reg(CHASE_REG),
                src: next,
            }));
        }
        let r = self.reg();
        self.ops.push(Op::Instr(Instr::Alu1 {
            dst: r,
            a: Reg(CHASE_REG),
        }));
    }

    fn load_use(&mut self) {
        let (src, _) = self.data_addr(false);
        let r1 = self.reg();
        let r2 = self.reg();
        self.ops.push(Op::Instr(Instr::Load { dst: r1, src }));
        if self.rng.gen_bool(0.7) {
            self.ops.push(Op::Instr(Instr::Alu1 { dst: r2, a: r1 }));
        } else {
            let c = self.const_reg();
            self.ops.push(Op::Instr(Instr::Alu2 {
                dst: r2,
                a: r1,
                b: c,
            }));
        }
    }

    fn indirect_jump(&mut self) {
        if let Some(zone) = self
            .tainted_zone
            .filter(|_| self.spec.inject_bugs && self.rng.gen_bool(0.3))
        {
            // Bug: jump through a register loaded from unverified input.
            self.ops.push(Op::Instr(Instr::Load {
                dst: Reg(JUMP_REG),
                src: MemRef::new(zone.start, 8),
            }));
        } else {
            self.ops
                .push(Op::Instr(Instr::MovRI { dst: Reg(JUMP_REG) }));
        }
        self.ops.push(Op::Instr(Instr::JmpReg {
            target: Reg(JUMP_REG),
        }));
    }

    fn malloc_free_pair(&mut self) {
        // §7 SWAPTIONS size distribution: 1/3 of allocations at most one
        // cache block (<= 64B), the rest at most 32 blocks (<= 2KB), none
        // beyond 128 blocks.
        let size = if self.rng.gen_bool(1.0 / 3.0) {
            self.rng.gen_range(8..=64)
        } else if self.rng.gen_bool(0.97) {
            self.rng.gen_range(65..=2048)
        } else {
            self.rng.gen_range(2049..=8192)
        };
        if let Ok(range) = self.heap.alloc(size) {
            self.ops.push(Op::Malloc { range });
            // Touch the fresh allocation.
            let r = self.reg();
            self.ops.push(Op::Instr(Instr::MovRI { dst: r }));
            self.ops.push(Op::Instr(Instr::Store {
                dst: MemRef::new(range.start, 4),
                src: r,
            }));
            self.live.push_back(range);
        }
        // Keep at most a handful live: free the oldest.
        if self.live.len() > 3 {
            let oldest = self.live.pop_front().expect("non-empty");
            self.ops.push(Op::Free { range: oldest });
            self.heap.free(oldest).expect("tracked allocation");
            // Drop stale reuse candidates: re-issuing them would be a
            // use-after-free the *clean* workload must not contain.
            self.recent.retain(|m| !oldest.overlaps(&m.range()));
            self.last_freed = Some(oldest);
        }
    }

    fn syscall(&mut self) {
        // read() into a private buffer: the canonical taint source.
        let region = self.spec.private_region(self.tid);
        let len = 64u64;
        let start = region.start + (self.rng.gen_range(0..region.len.saturating_sub(len) / 8)) * 8;
        let buf = AddrRange::new(start, len);
        self.ops.push(Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        });
        self.tainted_zone = Some(buf);
        // Consume some of the input.
        let r = self.reg();
        self.ops.push(Op::Instr(Instr::Load {
            dst: r,
            src: MemRef::new(buf.start, 4),
        }));
        // Occasionally write results out.
        if self.rng.gen_bool(0.3) {
            self.ops.push(Op::Syscall {
                kind: SyscallKind::WriteOutput,
                buf: Some(AddrRange::new(region.start, 32)),
            });
        }
    }

    fn critical_section(&mut self) {
        // Locks partition the shared region: lock i protects slice i, so the
        // locking discipline is consistent (no LockSet false positives from
        // the workload itself).
        let lock_count = self.spec.locks.max(1);
        let lock = LockId(self.rng.gen_range(0..lock_count));
        let addr = lock_word(lock);
        self.ops.push(Op::Lock { lock, addr });
        let words = self.spec.shared_words;
        let slice = (words / u64::from(lock_count)).max(1);
        let body = self.rng.gen_range(1..=3);
        for _ in 0..body {
            let idx = u64::from(lock.0) * slice + self.rng.gen_range(0..slice);
            let mem = MemRef::new(crate::spec::SHARED_BASE + (idx % words) * 8, 8);
            let r = self.reg();
            if self.rng.gen_bool(0.6) {
                self.ops.push(Op::Instr(Instr::Load { dst: r, src: mem }));
                self.ops.push(Op::Instr(Instr::Store { dst: mem, src: r }));
            } else {
                self.ops.push(Op::Instr(Instr::MovRI { dst: r }));
                self.ops.push(Op::Instr(Instr::Store { dst: mem, src: r }));
            }
        }
        self.ops.push(Op::Unlock { lock, addr });
    }
}

fn jittered(rng: &mut StdRng, base: usize) -> usize {
    let lo = (base * 3 / 4).max(1);
    let hi = (base * 5 / 4).max(lo + 1);
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::Op;

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.05)
            .build();
        let b = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.05)
            .build();
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::benchmark(Benchmark::Lu, 2)
            .scale(0.05)
            .seed(1)
            .build();
        let b = WorkloadSpec::benchmark(Benchmark::Lu, 2)
            .scale(0.05)
            .seed(2)
            .build();
        assert_ne!(a.threads, b.threads);
    }

    #[test]
    fn thread_count_and_setup() {
        let w = WorkloadSpec::benchmark(Benchmark::Ocean, 4)
            .scale(0.02)
            .build();
        assert_eq!(w.thread_count(), 4);
        // Every thread starts by initializing its long-lived constant
        // registers (the second ALU sources).
        for (tid, ops) in w.threads.iter().enumerate() {
            assert!(
                matches!(ops[0], Op::Instr(Instr::MovRI { .. })),
                "thread {tid} must start with constant-register setup"
            );
            assert!(matches!(ops[1], Op::Instr(Instr::MovRI { .. })));
        }
        // The checked heap is the dynamic arena only.
        assert_eq!(w.heap.start, HEAP_BASE);
        assert_eq!(w.heap.len, HEAP_SIZE);
    }

    #[test]
    fn barriers_align_across_threads() {
        let w = WorkloadSpec::benchmark(Benchmark::Lu, 4).scale(0.3).build();
        let barrier_ids = |ops: &[Op]| -> Vec<u32> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Barrier { barrier } => Some(barrier.0),
                    _ => None,
                })
                .collect()
        };
        let first = barrier_ids(&w.threads[0]);
        assert!(!first.is_empty(), "LU is phased");
        for t in &w.threads[1..] {
            assert_eq!(barrier_ids(t), first, "same barrier sequence everywhere");
        }
    }

    #[test]
    fn swaptions_churns_allocations() {
        let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 2)
            .scale(0.5)
            .build();
        let mallocs = w.threads[0]
            .iter()
            .filter(|op| matches!(op, Op::Malloc { .. }))
            .count();
        let frees = w.threads[0]
            .iter()
            .filter(|op| matches!(op, Op::Free { .. }))
            .count();
        assert!(
            mallocs > 20,
            "swaptions allocates constantly, got {mallocs}"
        );
        assert!(frees > 10);
        // LU does not allocate dynamically (setup allocations only).
        let lu = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.5).build();
        let lu_mallocs = lu.threads[0]
            .iter()
            .filter(|op| matches!(op, Op::Malloc { .. }))
            .count();
        assert!(lu_mallocs <= 2);
    }

    #[test]
    fn swaptions_allocation_size_distribution() {
        let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 1)
            .scale(2.0)
            .build();
        let sizes: Vec<u64> = w.threads[0]
            .iter()
            .skip(1) // setup malloc
            .filter_map(|op| match op {
                Op::Malloc { range } => Some(range.len),
                _ => None,
            })
            .collect();
        assert!(sizes.len() > 50);
        let small = sizes.iter().filter(|s| **s <= 64).count() as f64 / sizes.len() as f64;
        assert!(
            small > 0.2 && small < 0.5,
            "≈1/3 small allocations, got {small}"
        );
        assert!(
            sizes.iter().all(|s| *s <= 128 * 64),
            "none above 128 blocks"
        );
    }

    #[test]
    fn locked_benchmarks_emit_balanced_lock_pairs() {
        let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
            .scale(0.3)
            .build();
        for ops in &w.threads {
            let mut depth = 0i64;
            for op in ops {
                match op {
                    Op::Lock { .. } => depth += 1,
                    Op::Unlock { .. } => depth -= 1,
                    _ => {}
                }
                assert!(
                    (0..=1).contains(&depth),
                    "locks never nest in our workloads"
                );
            }
            assert_eq!(depth, 0, "every lock released");
        }
    }

    #[test]
    fn syscalls_present_with_buffers() {
        let w = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
            .scale(1.0)
            .build();
        let has_read = w.threads.iter().flatten().any(|op| {
            matches!(
                op,
                Op::Syscall {
                    kind: SyscallKind::ReadInput,
                    buf: Some(_)
                }
            )
        });
        assert!(has_read, "read() syscalls feed TaintCheck");
    }

    #[test]
    fn bug_injection_adds_uaf_or_tainted_jumps() {
        let clean = WorkloadSpec::benchmark(Benchmark::Swaptions, 2)
            .scale(1.0)
            .build();
        let buggy = WorkloadSpec::benchmark(Benchmark::Swaptions, 2)
            .scale(1.0)
            .inject_bugs(true)
            .build();
        assert_eq!(clean.thread_count(), buggy.thread_count());
        // (Behavioural difference is asserted end-to-end in integration
        // tests; here we only require generation to succeed and differ.)
        assert_ne!(clean.threads, buggy.threads);
    }

    #[test]
    fn zipf_theta_concentrates_shared_accesses() {
        use std::collections::HashMap;
        let shared_histogram = |w: &Workload| -> HashMap<u64, usize> {
            let mut hist = HashMap::new();
            for ops in &w.threads {
                for op in ops {
                    let mem = match op {
                        Op::Instr(Instr::Load { src, .. }) => Some(src),
                        Op::Instr(Instr::Store { dst, .. }) => Some(dst),
                        _ => None,
                    };
                    if let Some(m) = mem {
                        if m.addr >= crate::spec::SHARED_BASE {
                            *hist
                                .entry((m.addr - crate::spec::SHARED_BASE) / 8)
                                .or_default() += 1;
                        }
                    }
                }
            }
            hist
        };
        let head_share = |w: &Workload| -> f64 {
            let hist = shared_histogram(w);
            let total: usize = hist.values().sum();
            let head: usize = hist
                .iter()
                .filter(|(idx, _)| **idx < 16)
                .map(|(_, n)| n)
                .sum();
            head as f64 / total.max(1) as f64
        };
        let uniform = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.3)
            .build();
        let skewed = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.3)
            .zipf(0.99)
            .build();
        assert!(
            head_share(&skewed) > 5.0 * head_share(&uniform),
            "theta=0.99 must concentrate accesses on the head: skewed {} vs uniform {}",
            head_share(&skewed),
            head_share(&uniform)
        );
        // theta monotonicity: hotter theta, hotter head.
        let hotter = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.3)
            .zipf(1.4)
            .build();
        assert!(head_share(&hotter) > head_share(&skewed));
    }

    #[test]
    fn zipf_generation_is_deterministic() {
        let a = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
            .scale(0.1)
            .zipf(0.99)
            .build();
        let b = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
            .scale(0.1)
            .zipf(0.99)
            .build();
        assert_eq!(a.threads, b.threads);
        // And the skew genuinely changes the stream relative to uniform.
        let plain = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
            .scale(0.1)
            .build();
        assert_ne!(a.threads, plain.threads);
    }

    #[test]
    fn op_mix_shapes_category_traffic() {
        use crate::spec::OpMix;
        let count = |w: &Workload, f: &dyn Fn(&Op) -> bool| -> usize {
            w.threads.iter().flatten().filter(|op| f(op)).count()
        };
        let stores = |w: &Workload| count(w, &|op| matches!(op, Op::Instr(Instr::Store { .. })));
        let loads = |w: &Workload| count(w, &|op| matches!(op, Op::Instr(Instr::Load { .. })));
        // LU has no malloc/lock schedule of its own, so category traffic is
        // attributable to the mix alone.
        let spec = |mix: OpMix| {
            WorkloadSpec::benchmark(Benchmark::Lu, 2)
                .scale(0.2)
                .op_mix(mix)
        };
        let readers = spec(OpMix::read_heavy()).build();
        let writers = spec(OpMix::write_heavy()).build();
        let read_ratio = loads(&readers) as f64 / stores(&readers).max(1) as f64;
        let write_ratio = loads(&writers) as f64 / stores(&writers).max(1) as f64;
        assert!(
            read_ratio > 2.0 * write_ratio,
            "read-heavy mix must tilt load/store ratio: {read_ratio} vs {write_ratio}"
        );
        // Alloc-free weight produces churn in a benchmark with no
        // malloc_every schedule, and lock weight produces lock pairs with
        // no lock_every schedule.
        let churny = spec(OpMix::balanced()).build();
        assert!(count(&churny, &|op| matches!(op, Op::Malloc { .. })) > 20);
        let lock_pairs = count(&churny, &|op| matches!(op, Op::Lock { .. }));
        assert!(lock_pairs > 20, "lock weight emits critical sections");
        assert_eq!(
            lock_pairs,
            count(&churny, &|op| matches!(op, Op::Unlock { .. })),
            "critical sections stay balanced under the mix"
        );
    }

    #[test]
    fn syscall_rate_injects_taint_sources() {
        let base = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.2);
        let reads = |w: &Workload| {
            w.threads
                .iter()
                .flatten()
                .filter(|op| {
                    matches!(
                        op,
                        Op::Syscall {
                            kind: SyscallKind::ReadInput,
                            ..
                        }
                    )
                })
                .count()
        };
        let plain = base.clone().build();
        let injected = base.clone().syscall_rate(0.05).build();
        assert!(
            reads(&injected) > reads(&plain) + 20,
            "rate 0.05 over {} slots must add syscalls: {} vs {}",
            2 * base.ops_per_thread,
            reads(&injected),
            reads(&plain)
        );
    }

    #[test]
    fn race_rate_targets_the_racy_window() {
        use crate::spec::{RACY_WINDOW_WORDS, SHARED_BASE};
        let window_end = SHARED_BASE + RACY_WINDOW_WORDS * 8;
        let window_writes = |w: &Workload| {
            w.threads
                .iter()
                .flatten()
                .filter(|op| match op {
                    Op::Instr(Instr::Store { dst, .. }) => {
                        dst.addr >= SHARED_BASE && dst.addr < window_end
                    }
                    _ => false,
                })
                .count()
        };
        // Blackscholes barely touches shared memory on its own, so window
        // writes are attributable to the injection.
        let base = WorkloadSpec::benchmark(Benchmark::Blackscholes, 4).scale(0.2);
        let plain = base.clone().build();
        let racy = base.race_rate(0.02).build();
        assert!(
            window_writes(&racy) > window_writes(&plain) + 20,
            "race injection must hammer the racy window: {} vs {}",
            window_writes(&racy),
            window_writes(&plain)
        );
    }

    #[test]
    fn injection_layers_are_deterministic() {
        use crate::spec::OpMix;
        let spec = || {
            WorkloadSpec::benchmark(Benchmark::Barnes, 4)
                .scale(0.1)
                .op_mix(OpMix::write_heavy())
                .syscall_rate(0.01)
                .race_rate(0.01)
                .zipf(0.9)
        };
        assert_eq!(spec().build().threads, spec().build().threads);
        // And every layer genuinely changes the stream.
        let plain = WorkloadSpec::benchmark(Benchmark::Barnes, 4).scale(0.1);
        assert_ne!(spec().build().threads, plain.build().threads);
    }

    #[test]
    fn heap_region_covers_all_data() {
        let w = WorkloadSpec::benchmark(Benchmark::Radiosity, 4)
            .scale(0.1)
            .build();
        for ops in &w.threads {
            for op in ops {
                if let Op::Malloc { range } | Op::Free { range } = op {
                    assert!(w.heap.contains(range.start), "allocation inside heap span");
                }
            }
        }
    }
}
