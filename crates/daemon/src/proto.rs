//! The `paralogd` wire protocol.
//!
//! A data connection carries exactly one session and speaks two phases:
//!
//! 1. **Handshake** — one UTF-8 text line (≤ [`MAX_HANDSHAKE_BYTES`]):
//!
//!    ```text
//!    PARALOG ATTACH v1 name=<token> lifeguard=<token> threads=<n> tso=<0|1> heap=<start>:<len>\n
//!    ```
//!
//!    The daemon answers `OK <session-id>\n` or `ERR <reason>\n` (and drops
//!    the connection on `ERR` — a malformed handshake never takes the
//!    daemon down).
//!
//! 2. **Frames** — binary, each a 6-byte header (`tid: u16 LE`,
//!    `len: u32 LE`) followed by `len` bytes of the per-thread codec wire
//!    stream (the chained-checksum form [`paralog_events::codec`] emits).
//!    `len == 0` marks end-of-thread; the reserved tid [`END_ALL_TID`] with
//!    `len == 0` ends every thread at once. Frame payloads are *transport*
//!    chunks: records may split across frames arbitrarily — the session's
//!    incremental decoder reassembles them.
//!
//! The control connection is line-oriented text both ways: one command per
//! line (`LIST`, `STATUS <id>`, `DETACH <id>`, `WATCH <id>`, `SHUTDOWN`,
//! `PING`), each response a block of lines terminated by a lone `.`.

use paralog_core::BackendMode;
use paralog_events::AddrRange;

/// Handshake size cap: anything longer without a newline is garbage.
pub const MAX_HANDSHAKE_BYTES: usize = 4096;

/// Frame payload cap — a frame is a transport chunk, not a whole capture;
/// anything bigger is a corrupt or hostile header.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Reserved tid: a zero-length frame with this tid ends *all* threads.
pub const END_ALL_TID: u16 = u16::MAX;

/// A parsed `PARALOG ATTACH` handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachRequest {
    /// Producer-chosen session label (shown in `LIST`).
    pub name: String,
    /// Lifeguard to run, resolved in the daemon's registry.
    pub lifeguard: String,
    /// Monitored thread count (one wire stream per thread).
    pub threads: usize,
    /// Whether the capture was taken under TSO (carries §5.5 version
    /// annotations). Informational — the annotations themselves drive
    /// replay — but surfaced in `STATUS`.
    pub tso: bool,
    /// The monitored application's heap region.
    pub heap: AddrRange,
    /// Requested replay mode (`mode=cas|delta|auto`, optional —
    /// [`BackendMode::Auto`] when absent): how the session's lanes apply
    /// records. The resolved mode is surfaced in `STATUS`.
    pub mode: BackendMode,
}

impl AttachRequest {
    /// Renders the handshake line (without the trailing newline). The
    /// `mode=` field is emitted only when non-default, so v1 consumers that
    /// predate it keep parsing these lines.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "PARALOG ATTACH v1 name={} lifeguard={} threads={} tso={} heap={}:{}",
            self.name,
            self.lifeguard,
            self.threads,
            u8::from(self.tso),
            self.heap.start,
            self.heap.len
        );
        if self.mode != BackendMode::Auto {
            line.push_str(&format!(" mode={}", self.mode));
        }
        line
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parses one handshake line (no trailing newline).
///
/// # Errors
///
/// A human-readable reason, sent back verbatim as `ERR <reason>`.
pub fn parse_attach(line: &str) -> Result<AttachRequest, String> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("PARALOG") || parts.next() != Some("ATTACH") {
        return Err("expected PARALOG ATTACH".into());
    }
    if parts.next() != Some("v1") {
        return Err("unsupported protocol version (want v1)".into());
    }
    let (mut name, mut lifeguard, mut threads, mut tso, mut heap) = (None, None, None, None, None);
    let mut mode = None;
    for field in parts {
        let Some((key, value)) = field.split_once('=') else {
            return Err(format!("malformed field {field:?}"));
        };
        match key {
            "name" => {
                if !is_token(value) {
                    return Err("name must be 1-64 chars of [A-Za-z0-9._-]".into());
                }
                name = Some(value.to_string());
            }
            "lifeguard" => {
                if !is_token(value) {
                    return Err("lifeguard must be 1-64 chars of [A-Za-z0-9._-]".into());
                }
                lifeguard = Some(value.to_string());
            }
            "threads" => {
                let n: usize = value.parse().map_err(|_| "threads must be an integer")?;
                if n == 0 || n > 256 {
                    return Err("threads must be in 1..=256".into());
                }
                threads = Some(n);
            }
            "tso" => {
                tso = Some(match value {
                    "0" => false,
                    "1" => true,
                    _ => return Err("tso must be 0 or 1".into()),
                });
            }
            "heap" => {
                let Some((start, len)) = value.split_once(':') else {
                    return Err("heap must be <start>:<len>".into());
                };
                let start: u64 = start.parse().map_err(|_| "heap start must be an integer")?;
                let len: u64 = len.parse().map_err(|_| "heap len must be an integer")?;
                heap = Some(AddrRange::new(start, len));
            }
            "mode" => {
                mode = Some(match value {
                    "auto" => BackendMode::Auto,
                    "cas" => BackendMode::CasPerAccess,
                    "delta" => BackendMode::DeltaMerge,
                    _ => return Err("mode must be cas, delta or auto".into()),
                });
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    Ok(AttachRequest {
        name: name.ok_or("missing name=")?,
        lifeguard: lifeguard.ok_or("missing lifeguard=")?,
        threads: threads.ok_or("missing threads=")?,
        tso: tso.unwrap_or(false),
        heap: heap.ok_or("missing heap=")?,
        mode: mode.unwrap_or_default(),
    })
}

/// One event surfaced while parsing the frame phase.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent<'a> {
    /// Payload bytes for one thread's wire stream. A single frame may
    /// surface as several `Data` events when its payload spans reads.
    Data {
        /// Declared thread.
        tid: u16,
        /// This slice of the frame's payload.
        payload: &'a [u8],
    },
    /// End of one thread's stream.
    EndThread {
        /// The finished thread.
        tid: u16,
    },
    /// End of every thread's stream.
    EndAll,
}

/// Incremental frame-phase parser: feed it whatever the socket yielded, it
/// emits [`FrameEvent`]s without ever buffering a payload (only the 6-byte
/// header can straddle reads and is staged).
#[derive(Debug, Default)]
pub struct FrameParser {
    header: [u8; 6],
    header_len: usize,
    /// Payload bytes of the current frame still to come.
    remaining: u32,
    current_tid: u16,
}

impl FrameParser {
    /// A fresh parser (start of the frame phase).
    pub fn new() -> Self {
        FrameParser::default()
    }

    /// Consumes `bytes`, emitting events in order.
    ///
    /// # Errors
    ///
    /// A protocol violation (oversized frame, end-all with payload): the
    /// connection carrying it is beyond recovery.
    pub fn feed<'a>(
        &mut self,
        mut bytes: &'a [u8],
        mut emit: impl FnMut(FrameEvent<'a>),
    ) -> Result<(), String> {
        while !bytes.is_empty() {
            if self.remaining > 0 {
                let take = (self.remaining as usize).min(bytes.len());
                let (payload, rest) = bytes.split_at(take);
                emit(FrameEvent::Data {
                    tid: self.current_tid,
                    payload,
                });
                self.remaining -= take as u32;
                bytes = rest;
                continue;
            }
            let need = 6 - self.header_len;
            let take = need.min(bytes.len());
            self.header[self.header_len..self.header_len + take].copy_from_slice(&bytes[..take]);
            self.header_len += take;
            bytes = &bytes[take..];
            if self.header_len < 6 {
                return Ok(()); // header straddles the next read
            }
            self.header_len = 0;
            let tid = u16::from_le_bytes([self.header[0], self.header[1]]);
            let len = u32::from_le_bytes([
                self.header[2],
                self.header[3],
                self.header[4],
                self.header[5],
            ]);
            if len > MAX_FRAME_BYTES {
                return Err(format!(
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"
                ));
            }
            if len == 0 {
                if tid == END_ALL_TID {
                    emit(FrameEvent::EndAll);
                } else {
                    emit(FrameEvent::EndThread { tid });
                }
            } else {
                if tid == END_ALL_TID {
                    return Err("end-all frame must have zero length".into());
                }
                self.current_tid = tid;
                self.remaining = len;
            }
        }
        Ok(())
    }

    /// Whether the parser sits at a frame boundary (a connection may only
    /// end cleanly here).
    pub fn at_boundary(&self) -> bool {
        self.header_len == 0 && self.remaining == 0
    }
}

/// Renders a data frame (header + payload) for `tid`.
pub fn data_frame(tid: u16, payload: &[u8]) -> Vec<u8> {
    assert!(tid != END_ALL_TID, "tid {END_ALL_TID} is reserved");
    assert!(payload.len() <= MAX_FRAME_BYTES as usize, "frame too large");
    let mut out = Vec::with_capacity(6 + payload.len());
    out.extend_from_slice(&tid.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Renders an end-of-thread frame.
pub fn end_thread_frame(tid: u16) -> [u8; 6] {
    let mut out = [0u8; 6];
    out[..2].copy_from_slice(&tid.to_le_bytes());
    out
}

/// Renders the end-all frame.
pub fn end_all_frame() -> [u8; 6] {
    end_thread_frame(END_ALL_TID)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_roundtrip() {
        let req = AttachRequest {
            name: "web-1".into(),
            lifeguard: "TaintCheck".into(),
            threads: 4,
            tso: true,
            heap: AddrRange::new(4096, 1 << 20),
            mode: BackendMode::Auto,
        };
        // Auto stays off the wire (v1 compatibility)...
        assert!(!req.to_line().contains("mode="));
        assert_eq!(parse_attach(&req.to_line()).unwrap(), req);
        // ...explicit modes round-trip.
        for mode in [BackendMode::CasPerAccess, BackendMode::DeltaMerge] {
            let req = AttachRequest {
                mode,
                ..req.clone()
            };
            assert!(req.to_line().contains(&format!(" mode={mode}")));
            assert_eq!(parse_attach(&req.to_line()).unwrap(), req);
        }
        assert!(parse_attach(
            "PARALOG ATTACH v1 name=a lifeguard=y threads=1 heap=0:1 mode=banana"
        )
        .is_err());
    }

    #[test]
    fn attach_rejects_garbage() {
        assert!(parse_attach("GET / HTTP/1.1").is_err());
        assert!(parse_attach("PARALOG ATTACH v2 name=x lifeguard=y threads=1 heap=0:1").is_err());
        assert!(parse_attach("PARALOG ATTACH v1 lifeguard=y threads=1 heap=0:1").is_err());
        assert!(parse_attach("PARALOG ATTACH v1 name=a lifeguard=y threads=0 heap=0:1").is_err());
        assert!(
            parse_attach("PARALOG ATTACH v1 name=a;rm lifeguard=y threads=1 heap=0:1").is_err()
        );
    }

    #[test]
    fn frames_reassemble_across_arbitrary_splits() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&data_frame(0, b"hello"));
        wire.extend_from_slice(&data_frame(1, b"world!"));
        wire.extend_from_slice(&end_thread_frame(1));
        wire.extend_from_slice(&end_all_frame());
        // Replay the byte stream at every possible split point.
        for split in 0..=wire.len() {
            let mut parser = FrameParser::new();
            let mut got: Vec<(u16, Vec<u8>)> = Vec::new();
            let mut ends = Vec::new();
            let mut end_all = 0;
            let mut emit = |ev: FrameEvent<'_>| match ev {
                FrameEvent::Data { tid, payload } => match got.last_mut() {
                    Some((t, buf)) if *t == tid => buf.extend_from_slice(payload),
                    _ => got.push((tid, payload.to_vec())),
                },
                FrameEvent::EndThread { tid } => ends.push(tid),
                FrameEvent::EndAll => end_all += 1,
            };
            parser.feed(&wire[..split], &mut emit).unwrap();
            parser.feed(&wire[split..], &mut emit).unwrap();
            assert!(parser.at_boundary());
            assert_eq!(
                got,
                vec![(0, b"hello".to_vec()), (1, b"world!".to_vec())],
                "split at {split}"
            );
            assert_eq!(ends, vec![1]);
            assert_eq!(end_all, 1);
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut hdr = [0u8; 6];
        hdr[2..].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(FrameParser::new().feed(&hdr, |_| ()).is_err());
    }
}
