//! The `paralogd` command-line surface.
//!
//! Two subcommands:
//!
//! * `paralogd serve --socket <path> --control <path> [--workers N]` —
//!   run the daemon until `SHUTDOWN` arrives over the control socket,
//!   then print per-session summaries;
//! * `paralogd ctl --control <path> <COMMAND...>` — send one control
//!   command (`LIST`, `STATUS 3`, `DETACH 3`, `WATCH 3`, `SHUTDOWN`,
//!   `PING`) and print the response block.
//!
//! Argument parsing is hand-rolled (the workspace takes no external
//! dependencies).

use crate::client::Control;
use crate::supervisor::{Daemon, DaemonConfig};

const USAGE: &str = "\
paralogd — ParaLog online-monitoring daemon

USAGE:
    paralogd serve --socket <path> --control <path> [--workers <n>]
    paralogd ctl --control <path> <COMMAND> [ARGS...]
    paralogd help

SERVE:
    --socket <path>    producer-facing Unix-domain socket
    --control <path>   admin Unix-domain socket
    --workers <n>      shared worker pool size (default: one per core)

CTL COMMANDS:
    LIST               one line per session
    STATUS <id>        session detail (state, metrics, violations)
    DETACH <id>        close a session's inputs; it drains to a report
    WATCH <id>         stream the session's live violation/event feed
    SHUTDOWN           drain every session and exit
    PING               liveness check
";

/// Runs the CLI against `args` (without the program name). Returns the
/// process exit code.
///
/// # Errors
///
/// A message for stderr (exit code 2): bad usage, socket failures.
pub fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("ctl") => ctl(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    }
}

fn take_flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<Option<String>, String> {
    if args[*i] != flag {
        return Ok(None);
    }
    *i += 1;
    let value = args
        .get(*i)
        .ok_or_else(|| format!("{flag} requires a value"))?;
    *i += 1;
    Ok(Some(value.clone()))
}

fn serve(args: &[String]) -> Result<i32, String> {
    let mut socket = None;
    let mut control = None;
    let mut workers = 0usize;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = take_flag_value(args, &mut i, "--socket")? {
            socket = Some(v);
        } else if let Some(v) = take_flag_value(args, &mut i, "--control")? {
            control = Some(v);
        } else if let Some(v) = take_flag_value(args, &mut i, "--workers")? {
            workers = v
                .parse()
                .map_err(|_| "--workers requires an integer".to_string())?;
        } else {
            return Err(format!("unknown serve flag {:?}\n\n{USAGE}", args[i]));
        }
    }
    let socket = socket.ok_or("serve requires --socket <path>")?;
    let control = control.ok_or("serve requires --control <path>")?;
    let mut config = DaemonConfig::new(socket, control);
    config.workers = workers;
    let daemon = Daemon::spawn(config).map_err(|e| format!("failed to start daemon: {e}"))?;
    println!(
        "paralogd listening data={} control={} workers={}",
        daemon.data_socket().display(),
        daemon.control_socket().display(),
        daemon.worker_count()
    );
    daemon.wait_shutdown_requested();
    println!("paralogd draining {} session(s)", daemon.session_count());
    let mut failed = false;
    for report in daemon.shutdown() {
        match report.result {
            Ok(metrics) => println!(
                "session {} name={} lifeguard={} records={} violations={} fingerprint={:016x}",
                report.id,
                report.name,
                report.lifeguard,
                metrics.records,
                metrics.violations.len(),
                metrics.fingerprint
            ),
            Err(err) => {
                failed = true;
                println!(
                    "session {} name={} lifeguard={} error: {err}",
                    report.id, report.name, report.lifeguard
                );
            }
        }
    }
    Ok(i32::from(failed))
}

fn ctl(args: &[String]) -> Result<i32, String> {
    let mut control = None;
    let mut i = 0;
    while i < args.len() {
        match take_flag_value(args, &mut i, "--control")? {
            Some(v) => control = Some(v),
            None => break,
        }
    }
    let control = control.ok_or("ctl requires --control <path>")?;
    let command = args[i..].join(" ");
    if command.is_empty() {
        return Err(format!("ctl requires a command\n\n{USAGE}"));
    }
    let mut conn =
        Control::connect(&control).map_err(|e| format!("cannot reach daemon at {control}: {e}"))?;
    if command.to_ascii_uppercase().starts_with("WATCH") {
        let id = command
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or("usage: WATCH <id>")?;
        conn.watch(id, |line| println!("{line}"))
            .map_err(|e| format!("watch failed: {e}"))?;
        return Ok(0);
    }
    let lines = conn
        .command(&command)
        .map_err(|e| format!("command failed: {e}"))?;
    let failed = lines.first().is_some_and(|l| l.starts_with("ERR"));
    for line in lines {
        println!("{line}");
    }
    Ok(i32::from(failed))
}
