//! The genuinely non-blocking byte path between the socket pump and a
//! session's decoding streams.
//!
//! [`ByteFeed::pair`] returns a ([`FeedWriter`], [`FeedReader`]) couple over
//! one shared buffer. The pump thread writes each frame's payload through
//! the writer; the session's
//! [`StreamingReplaySource`](paralog_core::StreamingReplaySource) reads
//! through the reader, which
//! implements [`io::Read`] with **real `WouldBlock` semantics**: an empty
//! buffer whose producer is still attached returns
//! [`io::ErrorKind::WouldBlock`], which the decoding stream surfaces as
//! [`StreamStatus::Blocked`](paralog_core::StreamStatus) — the live-producer
//! path the replay protocol was designed around, exercised here by an
//! actual non-blocking reader rather than a fault-injection fake.
//!
//! Closing the writer (or dropping every clone) makes further reads return
//! `Ok(0)` (EOF) once the buffer drains, which the decoder resolves to
//! `Exhausted` at a record boundary or `MalformedStream` mid-record —
//! producer-drop is always deterministic, never a hang.
//!
//! All feeds of one session share a byte counter so the supervisor can
//! apply a per-session buffering cap: past the cap it simply stops reading
//! that session's socket and the kernel's socket buffer pushes back on the
//! producer.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

struct FeedInner {
    buf: Mutex<VecDeque<u8>>,
    /// Latched by [`FeedWriter::close`] or the last writer drop.
    closed: AtomicBool,
    /// Session-wide buffered-byte counter (shared across the session's
    /// feeds), maintained on write/read.
    total: Arc<SessionBuffer>,
}

/// Bytes a session currently holds across all its feeds.
#[derive(Debug, Default)]
pub struct SessionBuffer(std::sync::atomic::AtomicUsize);

impl SessionBuffer {
    /// Current buffered bytes.
    pub fn bytes(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// Constructor namespace for feed pairs.
#[derive(Debug)]
pub struct ByteFeed;

impl ByteFeed {
    /// A connected writer/reader pair charging `total` for buffered bytes.
    pub fn pair(total: Arc<SessionBuffer>) -> (FeedWriter, FeedReader) {
        let inner = Arc::new(FeedInner {
            buf: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            total,
        });
        (
            FeedWriter {
                inner: Arc::clone(&inner),
            },
            FeedReader { inner },
        )
    }
}

/// Producer side of a feed. Cloneable; the feed closes when [`close`]d
/// explicitly or when the last writer clone drops.
///
/// [`close`]: FeedWriter::close
pub struct FeedWriter {
    inner: Arc<FeedInner>,
}

impl std::fmt::Debug for FeedWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedWriter")
            .field("closed", &self.inner.closed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Clone for FeedWriter {
    fn clone(&self) -> Self {
        FeedWriter {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl FeedWriter {
    /// Appends `bytes`; returns `false` (bytes discarded) once the feed is
    /// closed.
    pub fn write(&self, bytes: &[u8]) -> bool {
        let mut buf = self.inner.buf.lock().expect("poisoned");
        if self.inner.closed.load(Ordering::Acquire) {
            return false;
        }
        buf.extend(bytes);
        self.inner.total.0.fetch_add(bytes.len(), Ordering::Relaxed);
        true
    }

    /// Marks end-of-stream: the reader drains what is buffered, then sees
    /// EOF. Idempotent. Taken under the buffer lock so a concurrent reader
    /// can never observe "empty but not closed" after a close completed.
    pub fn close(&self) {
        let _buf = self.inner.buf.lock().expect("poisoned");
        self.inner.closed.store(true, Ordering::Release);
    }

    /// Whether the feed was closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl Drop for FeedWriter {
    fn drop(&mut self) {
        // `self` plus the reader's Arc: this was the last writer clone —
        // a vanished producer must surface as EOF, not a forever-Blocked
        // stream.
        if Arc::strong_count(&self.inner) <= 2 {
            self.close();
        }
    }
}

/// Consumer side of a feed: a non-blocking [`io::Read`].
pub struct FeedReader {
    inner: Arc<FeedInner>,
}

impl std::fmt::Debug for FeedReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedReader")
            .field("closed", &self.inner.closed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl io::Read for FeedReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut buf = self.inner.buf.lock().expect("poisoned");
        if buf.is_empty() {
            return if self.inner.closed.load(Ordering::Acquire) {
                Ok(0) // EOF
            } else {
                Err(io::ErrorKind::WouldBlock.into())
            };
        }
        let n = buf.len().min(out.len());
        for (slot, byte) in out.iter_mut().zip(buf.drain(..n)) {
            *slot = byte;
        }
        self.inner.total.0.fetch_sub(n, Ordering::Relaxed);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn empty_open_feed_would_block() {
        let (writer, mut reader) = ByteFeed::pair(Arc::default());
        let mut buf = [0u8; 8];
        assert_eq!(
            reader.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert!(writer.write(b"abc"));
        assert_eq!(reader.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
    }

    #[test]
    fn close_drains_then_eofs() {
        let total = Arc::new(SessionBuffer::default());
        let (writer, mut reader) = ByteFeed::pair(Arc::clone(&total));
        writer.write(b"tail");
        writer.close();
        assert!(!writer.write(b"late"), "post-close writes are discarded");
        let mut buf = [0u8; 2];
        assert_eq!(reader.read(&mut buf).unwrap(), 2);
        assert_eq!(reader.read(&mut buf).unwrap(), 2);
        assert_eq!(reader.read(&mut buf).unwrap(), 0, "EOF after drain");
        assert_eq!(total.bytes(), 0, "reads pay the buffer debt back");
    }

    #[test]
    fn dropping_last_writer_closes() {
        let (writer, mut reader) = ByteFeed::pair(Arc::default());
        let clone = writer.clone();
        drop(writer);
        let mut buf = [0u8; 1];
        assert_eq!(
            reader.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock,
            "a surviving clone keeps the feed open"
        );
        drop(clone);
        assert_eq!(reader.read(&mut buf).unwrap(), 0, "last drop is EOF");
    }

    #[test]
    fn session_buffer_is_shared() {
        let total = Arc::new(SessionBuffer::default());
        let (w1, _r1) = ByteFeed::pair(Arc::clone(&total));
        let (w2, _r2) = ByteFeed::pair(Arc::clone(&total));
        w1.write(&[0; 10]);
        w2.write(&[0; 5]);
        assert_eq!(total.bytes(), 15);
    }
}
