//! The shared worker pool every session's lanes are multiplexed over.
//!
//! `paralogd` runs N sessions × K threads of replay work on a *fixed* set
//! of OS workers — not threads-per-session. The unit of scheduling is a
//! [`PoolTask`] (in practice one
//! [`CoopLane`](paralog_core::CoopLane) wrapped with its session bookkeeping):
//! a worker checks a task out of the global FIFO, runs one bounded
//! [`PoolTask::run`] slice, and requeues it behind every other task. That
//! round-robin is the isolation property the daemon suite asserts: a
//! session whose producer stalls reports [`TaskPoll::AgainIdle`] in
//! microseconds and goes to the back of the queue, so its lanes can never
//! monopolize a worker that session B's runnable lanes are waiting for.
//!
//! Workers that see only idle polls back off to short sleeps (the pool has
//! nothing runnable — burning cores polling stalled producers would starve
//! the *host*), waking immediately when new work is submitted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a [`PoolTask::run`] slice reports back to its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// Made progress and has more to do: requeue (behind everyone else).
    Again,
    /// Runnable but found nothing to do (producer lagging, gate unmet):
    /// requeue, and let the worker back off if the whole pool looks idle.
    AgainIdle,
    /// Terminal: drop the task.
    Done,
}

/// One schedulable unit of work. `run` must be bounded (no internal
/// blocking or spinning) — blocking is expressed by returning
/// [`TaskPoll::AgainIdle`] and being rescheduled.
pub trait PoolTask: Send {
    /// Runs one bounded slice.
    fn run(&mut self) -> TaskPoll;
}

struct PoolShared {
    queue: Mutex<VecDeque<Box<dyn PoolTask>>>,
    available: Condvar,
    stop: AtomicBool,
    /// Live (submitted, not yet `Done`) tasks — the idle-backoff signal.
    live: AtomicUsize,
}

/// A fixed-size worker pool over [`PoolTask`]s.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    count: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.count)
            .field("live_tasks", &self.shared.live.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Consecutive idle polls before a worker starts sleeping between slices.
const IDLE_STREAK_BACKOFF: u32 = 8;
/// Sleep once backing off — short enough that a producer catching up is
/// picked up promptly, long enough to not burn a core.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

impl WorkerPool {
    /// Spawns `workers` OS threads (0 = one per available core, clamped to
    /// at least 2 so one stalled session can never own the whole pool).
    pub fn new(workers: usize) -> Self {
        let count = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 32)
        } else {
            workers.clamp(1, 256)
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
        });
        let workers = (0..count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("paralogd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
            count,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.count
    }

    /// Tasks submitted and not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Enqueues a task.
    pub fn submit(&self, task: Box<dyn PoolTask>) {
        self.shared.live.fetch_add(1, Ordering::Relaxed);
        self.shared.queue.lock().expect("poisoned").push_back(task);
        self.shared.available.notify_one();
    }

    /// Stops the workers and joins them. Queued tasks keep being polled
    /// until they report [`TaskPoll::Done`] — the supervisor fails or
    /// drains every session *before* calling this, so termination is
    /// bounded.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("poisoned"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut idle_streak = 0u32;
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                let (q, _timeout) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("poisoned");
                queue = q;
            }
        };
        let Some(mut task) = task else {
            return; // stopped with an empty queue
        };
        match task.run() {
            TaskPoll::Again => {
                idle_streak = 0;
                shared.queue.lock().expect("poisoned").push_back(task);
                shared.available.notify_one();
            }
            TaskPoll::AgainIdle => {
                idle_streak += 1;
                shared.queue.lock().expect("poisoned").push_back(task);
                // Everything this worker touches is idle: sleep a slice so
                // stalled producers don't turn the pool into a spin farm.
                // (Runnable work still drains — other workers keep going,
                // and Again resets the streak.)
                if idle_streak >= IDLE_STREAK_BACKOFF && !shared.stop.load(Ordering::Acquire) {
                    std::thread::sleep(IDLE_SLEEP);
                }
            }
            TaskPoll::Done => {
                idle_streak = 0;
                shared.live.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct CountTo {
        n: Arc<AtomicU64>,
        target: u64,
    }

    impl PoolTask for CountTo {
        fn run(&mut self) -> TaskPoll {
            if self.n.fetch_add(1, Ordering::Relaxed) + 1 >= self.target {
                TaskPoll::Done
            } else {
                TaskPoll::Again
            }
        }
    }

    #[test]
    fn tasks_run_to_completion_and_drain() {
        let pool = WorkerPool::new(3);
        let counters: Vec<Arc<AtomicU64>> = (0..8).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for n in &counters {
            pool.submit(Box::new(CountTo {
                n: Arc::clone(n),
                target: 100,
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.live_tasks() > 0 {
            assert!(std::time::Instant::now() < deadline, "pool wedged");
            std::thread::yield_now();
        }
        for n in &counters {
            assert_eq!(n.load(Ordering::Relaxed), 100);
        }
        pool.shutdown();
    }

    struct IdleUntil {
        flag: Arc<AtomicBool>,
    }

    impl PoolTask for IdleUntil {
        fn run(&mut self) -> TaskPoll {
            if self.flag.load(Ordering::Relaxed) {
                TaskPoll::Done
            } else {
                TaskPoll::AgainIdle
            }
        }
    }

    #[test]
    fn idle_tasks_do_not_starve_runnable_ones() {
        // One worker, an always-idle task ahead of real work: round-robin
        // must still complete the runnable task.
        let pool = WorkerPool::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        pool.submit(Box::new(IdleUntil {
            flag: Arc::clone(&flag),
        }));
        let n = Arc::new(AtomicU64::new(0));
        pool.submit(Box::new(CountTo {
            n: Arc::clone(&n),
            target: 50,
        }));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while n.load(Ordering::Relaxed) < 50 {
            assert!(
                std::time::Instant::now() < deadline,
                "idle task starved the runnable one"
            );
            std::thread::yield_now();
        }
        flag.store(true, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.live_tasks() > 0 {
            assert!(std::time::Instant::now() < deadline, "pool wedged");
            std::thread::yield_now();
        }
        pool.shutdown();
    }
}
