//! Client-side helpers for talking to a running `paralogd`.
//!
//! [`Producer`] is the data-plane half: it connects to the daemon's data
//! socket, performs the `PARALOG ATTACH` handshake, and streams per-thread
//! wire bytes as frames. [`Control`] is the admin half: it speaks the
//! line-oriented control protocol (`LIST`, `STATUS`, `DETACH`, `WATCH`,
//! `SHUTDOWN`). Both use ordinary *blocking* sockets — the non-blocking
//! machinery lives entirely on the daemon side.

use crate::proto::{self, AttachRequest};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// An attached producer connection streaming one session's capture.
#[derive(Debug)]
pub struct Producer {
    stream: UnixStream,
    session_id: u64,
    threads: usize,
}

impl Producer {
    /// Connects to the daemon's data socket and attaches a session.
    ///
    /// # Errors
    ///
    /// Connection failures, or the daemon's `ERR <reason>` handshake
    /// rejection (surfaced as [`std::io::ErrorKind::InvalidData`]).
    pub fn attach(socket: impl AsRef<Path>, request: &AttachRequest) -> std::io::Result<Producer> {
        let mut stream = UnixStream::connect(socket)?;
        let mut line = request.to_line();
        line.push('\n');
        stream.write_all(line.as_bytes())?;
        let mut reply = String::new();
        BufReader::new(stream.try_clone()?).read_line(&mut reply)?;
        let reply = reply.trim();
        match reply.strip_prefix("OK ") {
            Some(id) => {
                let session_id = id.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("malformed attach reply {reply:?}"),
                    )
                })?;
                Ok(Producer {
                    stream,
                    session_id,
                    threads: request.threads,
                })
            }
            None => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("attach rejected: {reply}"),
            )),
        }
    }

    /// The daemon-assigned session id (`STATUS <id>` etc.).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Streams `bytes` of thread `tid`'s wire stream.
    ///
    /// # Errors
    ///
    /// Socket write failures (e.g. the daemon dropped the connection after
    /// a protocol fault).
    pub fn send(&mut self, tid: u16, bytes: &[u8]) -> std::io::Result<()> {
        for chunk in bytes.chunks(proto::MAX_FRAME_BYTES as usize) {
            self.stream.write_all(&proto::data_frame(tid, chunk))?;
        }
        Ok(())
    }

    /// Marks thread `tid`'s stream finished.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn finish_thread(&mut self, tid: u16) -> std::io::Result<()> {
        self.stream.write_all(&proto::end_thread_frame(tid))
    }

    /// Marks every stream finished (the clean way to end a session).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.stream.write_all(&proto::end_all_frame())?;
        self.stream.flush()
    }

    /// Convenience: streams a whole pre-encoded capture (one wire stream
    /// per thread, as [`paralog_events::codec::encode`] produces),
    /// interleaving `chunk`-byte frames round-robin across threads — the
    /// shape a live multi-core producer generates — then finishes.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    ///
    /// # Panics
    ///
    /// Panics if `encoded` does not have one stream per attached thread.
    pub fn send_capture(&mut self, encoded: &[Vec<u8>], chunk: usize) -> std::io::Result<()> {
        assert_eq!(
            encoded.len(),
            self.threads,
            "capture streams must match the attached thread count"
        );
        let chunk = chunk.max(1);
        let mut offsets = vec![0usize; encoded.len()];
        loop {
            let mut sent_any = false;
            for (t, stream) in encoded.iter().enumerate() {
                let off = offsets[t];
                if off >= stream.len() {
                    continue;
                }
                let end = (off + chunk).min(stream.len());
                self.send(t as u16, &stream[off..end])?;
                offsets[t] = end;
                sent_any = true;
            }
            if !sent_any {
                break;
            }
        }
        self.finish()
    }
}

/// A control-socket connection.
#[derive(Debug)]
pub struct Control {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Control {
    /// Connects to the daemon's control socket.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Control> {
        let stream = UnixStream::connect(socket)?;
        Ok(Control {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one command line and collects the response block (the lines
    /// before the `.` terminator).
    ///
    /// # Errors
    ///
    /// Socket failures, or an unterminated response (daemon went away).
    pub fn command(&mut self, line: &str) -> std::io::Result<Vec<String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut lines = Vec::new();
        loop {
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the control connection mid-response",
                ));
            }
            let reply = reply.trim_end_matches(['\r', '\n']);
            if reply == "." {
                return Ok(lines);
            }
            lines.push(reply.to_string());
        }
    }

    /// `LIST`: one summary line per session.
    ///
    /// # Errors
    ///
    /// See [`command`](Control::command).
    pub fn list(&mut self) -> std::io::Result<Vec<String>> {
        self.command("LIST")
    }

    /// `STATUS <id>`: the session's detail block.
    ///
    /// # Errors
    ///
    /// See [`command`](Control::command).
    pub fn status(&mut self, id: u64) -> std::io::Result<Vec<String>> {
        self.command(&format!("STATUS {id}"))
    }

    /// `DETACH <id>`: close the session's inputs so it drains to a partial
    /// (but valid) report.
    ///
    /// # Errors
    ///
    /// See [`command`](Control::command).
    pub fn detach(&mut self, id: u64) -> std::io::Result<Vec<String>> {
        self.command(&format!("DETACH {id}"))
    }

    /// `SHUTDOWN`: ask the daemon to drain everything and exit.
    ///
    /// # Errors
    ///
    /// See [`command`](Control::command).
    pub fn shutdown(&mut self) -> std::io::Result<Vec<String>> {
        self.command("SHUTDOWN")
    }

    /// `WATCH <id>`: subscribe to the session's live feed, invoking `f`
    /// per line until the session ends. Consumes the connection (the
    /// daemon dedicates it to the feed).
    ///
    /// # Errors
    ///
    /// Socket failures before the feed terminates.
    pub fn watch(mut self, id: u64, mut f: impl FnMut(&str)) -> std::io::Result<()> {
        self.writer.write_all(format!("WATCH {id}\n").as_bytes())?;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(()); // daemon shut down mid-watch
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line == "." {
                return Ok(());
            }
            f(line);
        }
    }
}
