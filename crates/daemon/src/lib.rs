//! `paralog-daemon`: the ParaLog online-monitoring service.
//!
//! The paper's deployment model is *online* monitoring: lifeguards run
//! against a live application's event streams, not a post-mortem trace.
//! This crate packages the workspace's replay machinery as a long-running
//! supervisor (`paralogd`) that external producers attach to over
//! Unix-domain sockets:
//!
//! * [`proto`] — the wire protocol: a one-line text handshake, then
//!   binary frames carrying each thread's chained-checksum codec stream;
//!   plus the line-oriented control protocol.
//! * [`transport`] — [`ByteFeed`](transport::ByteFeed): the genuinely
//!   non-blocking `io::Read` bridge between the socket pump and a
//!   session's incremental decoders (`WouldBlock` ⇒
//!   `StreamStatus::Blocked`).
//! * [`pool`] — the shared [`WorkerPool`](pool::WorkerPool): N sessions'
//!   replay lanes multiplexed round-robin over one fixed set of workers.
//! * [`supervisor`] — the [`Daemon`] itself: attach
//!   handshakes, per-session lifecycle (attach → running → drain →
//!   detach), the live violation/event feed, the admin surface, and
//!   graceful shutdown with partial [`RunMetrics`](paralog_core::RunMetrics).
//! * [`client`] — [`Producer`] and
//!   [`Control`] helpers for the other end of both
//!   sockets.
//! * [`cli`] — the `paralogd serve` / `paralogd ctl` command surface.
//!
//! Everything socket-shaped is Unix-only; [`proto`], [`transport`], and
//! [`pool`] are portable.

pub mod pool;
pub mod proto;
pub mod transport;

#[cfg(unix)]
pub mod cli;
#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod supervisor;

#[cfg(unix)]
pub use client::{Control, Producer};
pub use proto::AttachRequest;
#[cfg(unix)]
pub use supervisor::{Daemon, DaemonConfig, SessionReport};
