//! The `paralogd` supervisor: external producers in, monitored sessions
//! out.
//!
//! One daemon owns two Unix-domain listeners and one shared
//! [`WorkerPool`]:
//!
//! * the **data socket** accepts producer connections. Each connection
//!   handshakes ([`proto::AttachRequest`]), then streams frames; the pump
//!   thread (non-blocking, one for all connections) splits frame payloads
//!   into per-thread [`ByteFeed`]s, behind which a
//!   [`StreamingReplaySource`] decodes records incrementally. The session
//!   itself is a [`CoopSession`] whose lanes are scheduled on the shared
//!   pool — N sessions multiplex over one fixed set of workers;
//! * the **control socket** serves the line protocol (`LIST`, `STATUS`,
//!   `DETACH`, `WATCH`, `SHUTDOWN`, `PING`), one handler thread per
//!   connection.
//!
//! Lifecycle per session: **attach** (handshake, lanes submitted) →
//! **running** → **draining** (producer finished, detached, or daemon
//! shutting down: feeds closed, lanes deliver what is buffered) →
//! **done/failed** (report composed, heavy session state dropped; the
//! `SessionEntry` that remains is bookkeeping only). A dropped producer
//! therefore yields *partial but valid* `RunMetrics` when its streams end
//! on record boundaries with no dangling arcs, and a deterministic
//! [`SessionError`] otherwise — never a wedged session.

use crate::pool::{PoolTask, TaskPoll, WorkerPool};
use crate::proto::{self, AttachRequest, FrameEvent, FrameParser};
use crate::transport::{ByteFeed, FeedWriter, SessionBuffer};
use paralog_core::{
    CoopLane, CoopSession, EventSource, LaneStep, RunMetrics, SessionError, SourceInput,
    StreamingReplaySource,
};
use paralog_lifeguards::{LifeguardRegistry, MetadataShape, ReplayMode, SessionEventObserver};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records a lane may deliver per pool slice — the fairness quantum.
const LANE_BUDGET: usize = 512;

/// How long graceful shutdown waits for draining sessions before aborting
/// the stragglers.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration for [`Daemon::spawn`].
#[derive(Debug)]
pub struct DaemonConfig {
    /// Path of the producer-facing Unix-domain socket.
    pub data_socket: PathBuf,
    /// Path of the admin Unix-domain socket.
    pub control_socket: PathBuf,
    /// Worker threads in the shared pool (0 = one per core, min 2).
    pub workers: usize,
    /// Lifeguard resolution for handshakes.
    pub registry: LifeguardRegistry,
    /// Per-session buffered-byte cap: past it the pump stops reading that
    /// session's connection and the kernel socket buffer back-pressures
    /// the producer.
    pub session_buffer_bytes: usize,
}

impl DaemonConfig {
    /// Defaults: builtin registry, auto-sized pool, 1 MiB per-session cap.
    pub fn new(data_socket: impl Into<PathBuf>, control_socket: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            data_socket: data_socket.into(),
            control_socket: control_socket.into(),
            workers: 0,
            registry: LifeguardRegistry::builtin(),
            session_buffer_bytes: 1 << 20,
        }
    }
}

/// Final account of one session, returned by [`Daemon::shutdown`].
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Daemon-assigned session id.
    pub id: u64,
    /// Producer-chosen label.
    pub name: String,
    /// Lifeguard that ran.
    pub lifeguard: String,
    /// Monitored thread count.
    pub threads: usize,
    /// Full metrics on a clean drain (partial if the producer detached
    /// early), the first error otherwise.
    pub result: Result<RunMetrics, SessionError>,
}

/// Live-feed subscribers of one session plus the published-violation
/// cursor. Shared (separately from the entry) with the lifeguard's event
/// observer, so no `Arc` cycle runs through the session.
#[derive(Default)]
struct Watchers {
    subscribers: AtomicUsize,
    senders: Mutex<Vec<SyncSender<String>>>,
    /// Violations already pushed to subscribers (prefix of the lifeguard's
    /// accumulation order).
    cursor: Mutex<usize>,
}

impl Watchers {
    fn publish(&self, line: String) {
        if self.subscribers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut senders = self.senders.lock().expect("poisoned");
        senders.retain(|tx| match tx.try_send(line.clone()) {
            Ok(()) => true,
            // A slow subscriber loses lines rather than stalling replay.
            Err(TrySendError::Full(_)) => true,
            Err(TrySendError::Disconnected(_)) => false,
        });
        self.subscribers.store(senders.len(), Ordering::Relaxed);
    }
}

/// One attached session as the daemon tracks it.
struct SessionEntry {
    id: u64,
    name: String,
    lifeguard: String,
    threads: usize,
    tso: bool,
    /// The replay mode the session's lanes resolved to (an `Auto` request
    /// lands on whatever the lifeguard's factory preferred).
    mode: ReplayMode,
    /// The metadata substrate the lifeguard replays on, straight from its
    /// factory's
    /// [`metadata_shape`](paralog_lifeguards::LifeguardFactory::metadata_shape) —
    /// `STATUS` surfaces it so operators can see which tier a session's
    /// footprint lives in.
    shape: MetadataShape,
    /// When the handshake completed — the denominator of the
    /// applied-record throughput `STATUS` reports.
    attached_at: Instant,
    /// The live session handle; taken (dropped) once the report is
    /// composed so finished sessions do not pin multi-megabyte metadata.
    session: Mutex<Option<CoopSession>>,
    /// Producer-side feed writers, one per thread; cleared at finalize.
    feeds: Mutex<Vec<FeedWriter>>,
    buffered: Arc<SessionBuffer>,
    lanes_done: AtomicUsize,
    detaching: AtomicBool,
    report: Mutex<Option<Result<RunMetrics, SessionError>>>,
    watchers: Arc<Watchers>,
}

impl SessionEntry {
    fn state(&self) -> &'static str {
        match &*self.report.lock().expect("poisoned") {
            Some(Ok(_)) => "done",
            Some(Err(_)) => "failed",
            None if self.detaching.load(Ordering::Relaxed) => "draining",
            None => "running",
        }
    }

    /// Closes every feed: lanes drain what is buffered, then finish.
    fn close_feeds(&self) {
        for feed in self.feeds.lock().expect("poisoned").iter() {
            feed.close();
        }
        self.detaching.store(true, Ordering::Relaxed);
    }

    fn session_handle(&self) -> Option<CoopSession> {
        self.session.lock().expect("poisoned").clone()
    }

    /// Pushes violations the live feed has not seen yet. `session` is the
    /// caller's own handle (lanes hold one) so this never touches the
    /// entry's session lock.
    fn publish_new_violations(&self, session: &CoopSession) {
        if self.watchers.subscribers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut cursor = self.watchers.cursor.lock().expect("poisoned");
        let live = session.violations_live();
        for v in &live[*cursor..] {
            self.watchers.publish(violation_line(v));
        }
        *cursor = live.len();
    }

    /// Called by each lane task as it finishes; the last one composes the
    /// report, flushes the live feed, and drops the heavy session state.
    fn lane_done(&self, session: &CoopSession) {
        let done = self.lanes_done.fetch_add(1, Ordering::SeqCst) + 1;
        if done < self.threads {
            return;
        }
        let result = session
            .report()
            .unwrap_or_else(|| Err(SessionError::Deadlock("session vanished".into())));
        // Cursor lock serializes against WATCH subscription: a watcher
        // either registers before this flush (and gets the tail plus the
        // terminator) or after the report is stored (and reads it whole).
        let mut cursor = self.watchers.cursor.lock().expect("poisoned");
        let live = session.violations_live();
        for v in &live[*cursor..] {
            self.watchers.publish(violation_line(v));
        }
        *cursor = live.len();
        *self.report.lock().expect("poisoned") = Some(result.clone());
        match &result {
            Ok(m) => self.watchers.publish(format!(
                "end ok records={} violations={} fingerprint={:016x}",
                m.records,
                m.violations.len(),
                m.fingerprint
            )),
            Err(e) => self.watchers.publish(format!("end err {e}")),
        }
        self.watchers.publish(".".into());
        drop(cursor);
        self.feeds.lock().expect("poisoned").clear();
        *self.session.lock().expect("poisoned") = None;
    }

    fn report_for(&self) -> Option<Result<RunMetrics, SessionError>> {
        self.report.lock().expect("poisoned").clone()
    }
}

fn violation_line(v: &paralog_lifeguards::Violation) -> String {
    match v.addr {
        Some(addr) => format!("violation {} {} {:#x} {}", v.tid.0, v.rid.0, addr, v.kind),
        None => format!("violation {} {} - {}", v.tid.0, v.rid.0, v.kind),
    }
}

/// One lane of one session as a pool task.
struct LaneTask {
    lane: CoopLane,
    session: CoopSession,
    entry: Arc<SessionEntry>,
}

impl PoolTask for LaneTask {
    fn run(&mut self) -> TaskPoll {
        match self.lane.step(LANE_BUDGET) {
            LaneStep::Progressed => {
                self.entry.publish_new_violations(&self.session);
                TaskPoll::Again
            }
            LaneStep::Idle | LaneStep::Gated => TaskPoll::AgainIdle,
            LaneStep::Finished | LaneStep::Failed => {
                self.entry.lane_done(&self.session);
                TaskPoll::Done
            }
        }
    }
}

struct DaemonInner {
    data_socket: PathBuf,
    control_socket: PathBuf,
    registry: LifeguardRegistry,
    session_buffer_bytes: usize,
    pool: WorkerPool,
    sessions: Mutex<BTreeMap<u64, Arc<SessionEntry>>>,
    next_id: AtomicU64,
    /// Refuse new attaches (set at the start of shutdown).
    shutting_down: AtomicBool,
    /// Tells the pump and control threads to exit.
    stop_threads: AtomicBool,
    /// `SHUTDOWN` over the control socket parks here for the owner of the
    /// [`Daemon`] handle to act on.
    shutdown_requested: (Mutex<bool>, Condvar),
}

impl DaemonInner {
    fn request_shutdown(&self) {
        let (flag, cv) = &self.shutdown_requested;
        *flag.lock().expect("poisoned") = true;
        cv.notify_all();
    }

    /// Builds a session from a parsed handshake. The `Err` string goes
    /// back to the producer as `ERR <reason>` — the daemon itself is
    /// unaffected.
    fn attach(self: &Arc<Self>, req: &AttachRequest) -> Result<Arc<SessionEntry>, String> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err("daemon is shutting down".into());
        }
        let factory = self
            .registry
            .get(&req.lifeguard)
            .ok_or_else(|| format!("unknown lifeguard {:?}", req.lifeguard))?;
        let buffered = Arc::new(SessionBuffer::default());
        let mut writers = Vec::with_capacity(req.threads);
        let mut readers: Vec<Box<dyn Read + Send>> = Vec::with_capacity(req.threads);
        for _ in 0..req.threads {
            let (w, r) = ByteFeed::pair(Arc::clone(&buffered));
            writers.push(w);
            readers.push(Box::new(r));
        }
        let source = StreamingReplaySource::new(readers, req.heap);
        let SourceInput::Streams(streams) = Box::new(source).open() else {
            unreachable!("streaming sources resolve to streams");
        };
        let watchers = Arc::new(Watchers::default());
        let observer_watchers = Arc::clone(&watchers);
        let observer: SessionEventObserver =
            Arc::new(move |ev| observer_watchers.publish(format!("event {ev}")));
        let (session, lanes) = CoopSession::start_with_mode(
            factory.as_ref(),
            req.heap,
            streams,
            Some(observer),
            req.mode,
        )
        .map_err(|e| e.to_string())?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SessionEntry {
            id,
            name: req.name.clone(),
            lifeguard: req.lifeguard.clone(),
            threads: req.threads,
            tso: req.tso,
            mode: session.mode(),
            shape: factory.metadata_shape(),
            attached_at: Instant::now(),
            session: Mutex::new(Some(session.clone())),
            feeds: Mutex::new(writers),
            buffered,
            lanes_done: AtomicUsize::new(0),
            detaching: AtomicBool::new(false),
            report: Mutex::new(None),
            watchers,
        });
        self.sessions
            .lock()
            .expect("poisoned")
            .insert(id, Arc::clone(&entry));
        for lane in lanes {
            self.pool.submit(Box::new(LaneTask {
                lane,
                session: session.clone(),
                entry: Arc::clone(&entry),
            }));
        }
        Ok(entry)
    }

    fn entry(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.sessions.lock().expect("poisoned").get(&id).cloned()
    }
}

/// A running daemon. Dropping it performs a best-effort shutdown; call
/// [`shutdown`](Daemon::shutdown) for the orderly variant that returns the
/// per-session reports.
pub struct Daemon {
    inner: Arc<DaemonInner>,
    pump: Option<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
    finished: bool,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("data_socket", &self.inner.data_socket)
            .field("control_socket", &self.inner.control_socket)
            .field("sessions", &self.session_count())
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Binds both sockets (replacing stale files) and starts the pump,
    /// control, and pool threads.
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn spawn(config: DaemonConfig) -> std::io::Result<Daemon> {
        let _ = std::fs::remove_file(&config.data_socket);
        let _ = std::fs::remove_file(&config.control_socket);
        let data = UnixListener::bind(&config.data_socket)?;
        data.set_nonblocking(true)?;
        let control = UnixListener::bind(&config.control_socket)?;
        control.set_nonblocking(true)?;
        let inner = Arc::new(DaemonInner {
            data_socket: config.data_socket,
            control_socket: config.control_socket,
            registry: config.registry,
            session_buffer_bytes: config.session_buffer_bytes.max(64 * 1024),
            pool: WorkerPool::new(config.workers),
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            stop_threads: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
        });
        let pump = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("paralogd-pump".into())
                .spawn(move || pump_loop(&inner, &data))?
        };
        let ctl = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("paralogd-control".into())
                .spawn(move || control_loop(&inner, &control))?
        };
        Ok(Daemon {
            inner,
            pump: Some(pump),
            control: Some(ctl),
            finished: false,
        })
    }

    /// The producer-facing socket path.
    pub fn data_socket(&self) -> &Path {
        &self.inner.data_socket
    }

    /// The admin socket path.
    pub fn control_socket(&self) -> &Path {
        &self.inner.control_socket
    }

    /// Worker threads in the shared pool.
    pub fn worker_count(&self) -> usize {
        self.inner.pool.worker_count()
    }

    /// Sessions ever attached (including finished ones still listed).
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().expect("poisoned").len()
    }

    /// Sessions still holding live replay state — the residency counter
    /// the soak churn loop asserts against: a finished or failed session
    /// drops its heavy state at finalize, so this returns to zero however
    /// many attach/detach cycles ran.
    pub fn resident_sessions(&self) -> usize {
        self.inner
            .sessions
            .lock()
            .expect("poisoned")
            .values()
            .filter(|e| e.session.lock().expect("poisoned").is_some())
            .count()
    }

    /// Whether `SHUTDOWN` arrived over the control socket.
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_requested.0.lock().expect("poisoned")
    }

    /// Blocks until `SHUTDOWN` arrives (the `paralogd serve` main loop).
    pub fn wait_shutdown_requested(&self) {
        let (flag, cv) = &self.inner.shutdown_requested;
        let mut requested = flag.lock().expect("poisoned");
        while !*requested {
            requested = cv.wait(requested).expect("poisoned");
        }
    }

    /// Programmatic equivalent of the control-socket `SHUTDOWN`.
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Graceful shutdown: stop accepting, close every session's feeds (so
    /// lanes drain what is buffered and report **partial metrics**), wait
    /// out the drain, abort stragglers, then tear down the pool and both
    /// sockets. Returns one [`SessionReport`] per session ever attached.
    pub fn shutdown(mut self) -> Vec<SessionReport> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Vec<SessionReport> {
        if self.finished {
            return Vec::new();
        }
        self.finished = true;
        let inner = &self.inner;
        inner.shutting_down.store(true, Ordering::Release);
        let entries: Vec<Arc<SessionEntry>> = inner
            .sessions
            .lock()
            .expect("poisoned")
            .values()
            .cloned()
            .collect();
        for entry in &entries {
            entry.close_feeds();
        }
        let drained = |entries: &[Arc<SessionEntry>]| {
            entries
                .iter()
                .all(|e| e.report.lock().expect("poisoned").is_some())
        };
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while !drained(&entries) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        for entry in &entries {
            if entry.report.lock().expect("poisoned").is_none() {
                if let Some(session) = entry.session_handle() {
                    session.abort("daemon shutdown with the session still wedged");
                }
            }
        }
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while !drained(&entries) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        inner.pool.shutdown();
        inner.stop_threads.store(true, Ordering::Release);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        if let Some(control) = self.control.take() {
            let _ = control.join();
        }
        let _ = std::fs::remove_file(&inner.data_socket);
        let _ = std::fs::remove_file(&inner.control_socket);
        entries
            .iter()
            .map(|e| SessionReport {
                id: e.id,
                name: e.name.clone(),
                lifeguard: e.lifeguard.clone(),
                threads: e.threads,
                result: e.report_for().unwrap_or_else(|| {
                    Err(SessionError::Deadlock(
                        "session never drained before daemon teardown".into(),
                    ))
                }),
            })
            .collect()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------------
// Data-plane pump
// ---------------------------------------------------------------------------

enum ConnState {
    Handshaking {
        line: Vec<u8>,
    },
    Streaming {
        entry: Arc<SessionEntry>,
        parser: FrameParser,
    },
}

struct Conn {
    stream: UnixStream,
    state: ConnState,
}

/// The single non-blocking pump over every producer connection: accepts,
/// handshakes, and shovels frame payloads into session feeds. Per-session
/// backpressure is applied here by *not reading* a connection whose
/// session sits on more than the configured buffered-byte cap.
fn pump_loop(inner: &Arc<DaemonInner>, listener: &UnixListener) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !inner.stop_threads.load(Ordering::Acquire) {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    progressed = true;
                    conns.push(Conn {
                        stream,
                        state: ConnState::Handshaking { line: Vec::new() },
                    });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        conns.retain_mut(|conn| {
            if let ConnState::Streaming { entry, .. } = &conn.state {
                if entry.buffered.bytes() > inner.session_buffer_bytes {
                    return true; // back-pressure: skip this round
                }
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    pump_eof(conn);
                    false
                }
                Ok(n) => {
                    progressed = true;
                    pump_bytes(inner, conn, &buf[..n])
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => true,
                Err(_) => {
                    pump_eof(conn);
                    false
                }
            }
        });
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Orderly or not, the connection is gone: close the session's feeds so
/// its lanes drain and report. A mid-frame cut is a transport fault the
/// session fails on explicitly (the feed bytes alone might happen to end
/// on a record boundary and mask the truncation).
fn pump_eof(conn: &mut Conn) {
    if let ConnState::Streaming { entry, parser } = &conn.state {
        if !parser.at_boundary() {
            if let Some(session) = entry.session_handle() {
                session.fail(SessionError::MalformedStream(
                    "producer connection ended mid-frame".into(),
                ));
            }
        }
        entry.close_feeds();
    }
}

/// Feeds freshly read bytes through the connection's state machine.
/// Returns whether the connection stays alive.
fn pump_bytes(inner: &Arc<DaemonInner>, conn: &mut Conn, mut bytes: &[u8]) -> bool {
    if let ConnState::Handshaking { line } = &mut conn.state {
        let nl = bytes.iter().position(|&b| b == b'\n');
        match nl {
            None => {
                line.extend_from_slice(bytes);
                if line.len() > proto::MAX_HANDSHAKE_BYTES {
                    let _ = conn.stream.write_all(b"ERR handshake too long\n");
                    return false;
                }
                return true;
            }
            Some(pos) => {
                line.extend_from_slice(&bytes[..pos]);
                bytes = &bytes[pos + 1..];
                let parsed = std::str::from_utf8(line)
                    .map_err(|_| "handshake is not UTF-8".to_string())
                    .and_then(|s| proto::parse_attach(s.trim_end_matches('\r')))
                    .and_then(|req| inner.attach(&req).map(|entry| (req, entry)));
                match parsed {
                    Ok((_req, entry)) => {
                        if conn
                            .stream
                            .write_all(format!("OK {}\n", entry.id).as_bytes())
                            .is_err()
                        {
                            entry.close_feeds();
                            return false;
                        }
                        conn.state = ConnState::Streaming {
                            entry,
                            parser: FrameParser::new(),
                        };
                    }
                    Err(reason) => {
                        // A malformed handshake costs exactly this
                        // connection; the daemon keeps serving.
                        let _ = conn.stream.write_all(format!("ERR {reason}\n").as_bytes());
                        return false;
                    }
                }
            }
        }
    }
    let ConnState::Streaming { entry, parser } = &mut conn.state else {
        return true;
    };
    if bytes.is_empty() {
        return true;
    }
    let feeds = entry.feeds.lock().expect("poisoned").clone();
    if feeds.is_empty() {
        return false; // session already finalized; drop the producer
    }
    let threads = entry.threads;
    let mut fault: Option<String> = None;
    let fed = parser.feed(bytes, |event| match event {
        FrameEvent::Data { tid, payload } => {
            let Some(feed) = feeds.get(tid as usize) else {
                if fault.is_none() {
                    fault = Some(format!(
                        "frame for thread {tid} but the session declared {threads}"
                    ));
                }
                return;
            };
            feed.write(payload);
        }
        FrameEvent::EndThread { tid } => {
            if let Some(feed) = feeds.get(tid as usize) {
                feed.close();
            }
        }
        FrameEvent::EndAll => {
            for feed in &feeds {
                feed.close();
            }
        }
    });
    let fault = fault.or(fed.err());
    if let Some(detail) = fault {
        // Mid-stream protocol corruption: fail *this* session on the
        // control surface, drain it, drop the producer — daemon lives on.
        if let Some(session) = entry.session_handle() {
            session.fail(SessionError::MalformedStream(detail));
        }
        entry.close_feeds();
        return false;
    }
    true
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

fn control_loop(inner: &Arc<DaemonInner>, listener: &UnixListener) {
    while !inner.stop_threads.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("paralogd-ctl-conn".into())
                    .spawn(move || control_conn(&inner, stream));
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serves one control connection: one command per line, each response
/// terminated by a lone `.`.
fn control_conn(inner: &Arc<DaemonInner>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if inner.stop_threads.load(Ordering::Acquire) {
            return;
        }
        line.clear();
        match std::io::BufRead::read_line(&mut reader, &mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let mut parts = command.split_ascii_whitespace();
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let arg = parts.next();
        let ok = match verb.as_str() {
            "PING" => respond(&mut writer, &["OK pong".into()]),
            "LIST" => {
                let sessions = inner.sessions.lock().expect("poisoned");
                let lines: Vec<String> = sessions
                    .values()
                    .map(|e| {
                        let records = e
                            .session_handle()
                            .map(|s| s.records())
                            .or_else(|| e.report_for().and_then(|r| r.ok().map(|m| m.records)))
                            .unwrap_or(0);
                        format!(
                            "session {} name={} lifeguard={} threads={} state={} records={}",
                            e.id,
                            e.name,
                            e.lifeguard,
                            e.threads,
                            e.state(),
                            records
                        )
                    })
                    .collect();
                drop(sessions);
                respond(&mut writer, &lines)
            }
            "STATUS" => match arg.and_then(|a| a.parse::<u64>().ok()) {
                Some(id) => match inner.entry(id) {
                    Some(entry) => respond(&mut writer, &status_lines(&entry)),
                    None => respond_err(&mut writer, &format!("no session {id}")),
                },
                None => respond_err(&mut writer, "usage: STATUS <id>"),
            },
            "DETACH" => match arg.and_then(|a| a.parse::<u64>().ok()) {
                Some(id) => match inner.entry(id) {
                    Some(entry) => {
                        entry.close_feeds();
                        respond(&mut writer, &[format!("OK detaching {id}")])
                    }
                    None => respond_err(&mut writer, &format!("no session {id}")),
                },
                None => respond_err(&mut writer, "usage: DETACH <id>"),
            },
            "WATCH" => match arg.and_then(|a| a.parse::<u64>().ok()) {
                Some(id) => match inner.entry(id) {
                    Some(entry) => {
                        watch_conn(inner, &entry, &mut writer);
                        return; // a watch consumes the connection
                    }
                    None => respond_err(&mut writer, &format!("no session {id}")),
                },
                None => respond_err(&mut writer, "usage: WATCH <id>"),
            },
            "SHUTDOWN" => {
                let ok = respond(&mut writer, &["OK shutting down".into()]);
                inner.request_shutdown();
                ok
            }
            other => respond_err(&mut writer, &format!("unknown command {other:?}")),
        };
        if !ok {
            return;
        }
    }
}

fn respond(writer: &mut UnixStream, lines: &[String]) -> bool {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(".\n");
    writer.write_all(out.as_bytes()).is_ok()
}

fn respond_err(writer: &mut UnixStream, reason: &str) -> bool {
    respond(writer, &[format!("ERR {reason}")])
}

fn status_lines(entry: &Arc<SessionEntry>) -> Vec<String> {
    let mut lines = vec![
        format!("session {}", entry.id),
        format!("name {}", entry.name),
        format!("lifeguard {}", entry.lifeguard),
        format!("threads {}", entry.threads),
        format!("tso {}", u8::from(entry.tso)),
        format!("mode {}", entry.mode),
        format!("metadata {}", entry.shape),
        format!("state {}", entry.state()),
        format!("buffered_bytes {}", entry.buffered.bytes()),
    ];
    // Applied-record throughput over the session's wall-clock lifetime so
    // far (finished sessions keep reporting their final average).
    let applied = entry
        .session_handle()
        .map(|s| s.records())
        .or_else(|| entry.report_for().and_then(|r| r.ok().map(|m| m.records)))
        .unwrap_or(0);
    let elapsed = entry.attached_at.elapsed().as_secs_f64().max(1e-6);
    lines.push(format!("records_per_sec {:.0}", applied as f64 / elapsed));
    let report = entry.report_for();
    match (&report, entry.session_handle()) {
        (Some(Err(err)), _) => {
            lines.push(format!("error {err}"));
        }
        (Some(Ok(metrics)), _) => push_metrics_lines(&mut lines, metrics),
        (None, Some(session)) => {
            lines.push(format!("blocked_polls {}", session.blocked_polls()));
            let metrics = session.snapshot_metrics();
            push_metrics_lines(&mut lines, &metrics);
        }
        (None, None) => lines.push("error session state unavailable".into()),
    }
    lines
}

fn push_metrics_lines(lines: &mut Vec<String>, metrics: &RunMetrics) {
    lines.push(format!("records {}", metrics.records));
    lines.push(format!("stalls {}", metrics.dependence_stalls));
    lines.push(format!("fingerprint {:016x}", metrics.fingerprint));
    if let Some(p) = metrics.phases {
        // Figure-7-style per-phase timed breakdown (modeled cycles under
        // the calibrated cost model; see PhaseBreakdown).
        lines.push(format!("phase_capture {}", p.capture));
        lines.push(format!("phase_transport {}", p.transport));
        lines.push(format!("phase_order_wait {}", p.order_wait));
        lines.push(format!("phase_analysis {}", p.analysis));
        lines.push(format!("phase_publish {}", p.publish));
        lines.push(format!("phase_total {}", p.total()));
    }
    for v in &metrics.violations {
        lines.push(violation_line(v));
    }
    for ev in &metrics.events {
        lines.push(format!("event {ev}"));
    }
}

/// Streams a session's live feed over the control connection until the
/// session ends (terminated by `.`), the subscriber disconnects, or the
/// daemon stops.
fn watch_conn(inner: &Arc<DaemonInner>, entry: &Arc<SessionEntry>, writer: &mut UnixStream) {
    let rx = {
        // Serialized against the publisher via the cursor lock: either the
        // session is already over (report the whole thing) or we register
        // before any further line is published.
        let cursor = entry.watchers.cursor.lock().expect("poisoned");
        if let Some(result) = entry.report_for() {
            drop(cursor);
            let mut lines = Vec::new();
            match result {
                Ok(m) => {
                    for v in &m.violations {
                        lines.push(violation_line(v));
                    }
                    for ev in &m.events {
                        lines.push(format!("event {ev}"));
                    }
                    lines.push(format!(
                        "end ok records={} violations={} fingerprint={:016x}",
                        m.records,
                        m.violations.len(),
                        m.fingerprint
                    ));
                }
                Err(e) => lines.push(format!("end err {e}")),
            }
            let _ = respond(writer, &lines);
            return;
        }
        // Backlog: everything published so far, straight from the session.
        if let Some(session) = entry.session_handle() {
            let live = session.violations_live();
            let mut lines = Vec::with_capacity(cursor.min(live.len()));
            for v in &live[..(*cursor).min(live.len())] {
                lines.push(violation_line(v));
            }
            let mut out = String::new();
            for line in &lines {
                out.push_str(line);
                out.push('\n');
            }
            if !out.is_empty() && writer.write_all(out.as_bytes()).is_err() {
                return;
            }
        }
        let (tx, rx) = sync_channel::<String>(1024);
        entry.watchers.senders.lock().expect("poisoned").push(tx);
        entry.watchers.subscribers.fetch_add(1, Ordering::Relaxed);
        rx
    };
    loop {
        if inner.stop_threads.load(Ordering::Acquire) {
            let _ = writer.write_all(b".\n");
            return;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                let terminal = line == ".";
                let mut out = line;
                out.push('\n');
                if writer.write_all(out.as_bytes()).is_err() || terminal {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                let _ = writer.write_all(b".\n");
                return;
            }
        }
    }
}
