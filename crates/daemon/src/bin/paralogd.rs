//! The `paralogd` binary: see [`paralog_daemon::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match paralog_daemon::cli::run(&args) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("paralogd: {message}");
            std::process::exit(2);
        }
    }
}
