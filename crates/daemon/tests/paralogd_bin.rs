//! The real `paralogd` binary end to end: serve, PING over `ctl`'s
//! protocol, attach + stream a capture, `SHUTDOWN`, and check the exit
//! summary.

#![cfg(unix)]

use paralog_daemon::client::{Control, Producer};
use paralog_daemon::proto::AttachRequest;
use paralog_events::codec::encode;
use paralog_events::{AddrRange, EventRecord, Instr, Rid};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("plgdbin-{}-{tag}.sock", std::process::id()))
}

#[test]
fn paralogd_binary_serves_and_ctl_talks_to_it() {
    let data = sock_path("d");
    let control = sock_path("c");
    let served = std::process::Command::new(env!("CARGO_BIN_EXE_paralogd"))
        .args([
            "serve",
            "--socket",
            data.to_str().unwrap(),
            "--control",
            control.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !control.exists() || !data.exists() {
        assert!(Instant::now() < deadline, "daemon never bound its sockets");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut ctl = Control::connect(&control).unwrap();
    assert_eq!(ctl.command("PING").unwrap(), vec!["OK pong".to_string()]);

    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let recs: Vec<EventRecord> = (1..=64u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let encoded = vec![encode(&recs)];
    let mut producer = Producer::attach(
        &data,
        &AttachRequest {
            name: "cli".into(),
            lifeguard: "TaintCheck".into(),
            threads: 1,
            tso: false,
            heap,
            mode: paralog_core::BackendMode::Auto,
        },
    )
    .expect("attaches to the binary");
    producer.send_capture(&encoded, 32).expect("streams");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = ctl.status(producer.session_id()).unwrap();
        let state = status
            .iter()
            .find_map(|l| l.strip_prefix("state "))
            .expect("state line");
        if state == "done" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "binary session never finished: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    ctl.shutdown().unwrap();
    let out = served.wait_with_output().expect("binary exits");
    assert!(out.status.success(), "paralogd exit: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("records=64"),
        "serve summary should carry the session: {stdout}"
    );
}
