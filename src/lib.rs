//! # ParaLog
//!
//! A from-scratch reproduction of **"ParaLog: Enabling and Accelerating
//! Online Parallel Monitoring of Multithreaded Applications"** (Vlachos et
//! al., ASPLOS 2010): a platform in which every thread of a multithreaded
//! application is monitored *online* by a paired lifeguard thread performing
//! instruction-grain analysis, with hardware-style accelerators
//! (Inheritance Tracking, Idempotent Filters, Metadata TLB) parallelized via
//! delayed advertising and ConflictAlert messages.
//!
//! This facade crate re-exports the whole workspace under one name. Most
//! users want [`core`] (the composable `MonitorSession` API, the `Platform`
//! shim and the experiment runners), [`lifeguards`] (TaintCheck, AddrCheck,
//! MemCheck, LockSet, plus the open `LifeguardRegistry` for out-of-tree
//! analyses) and [`workloads`] (the synthetic SPLASH-2/PARSEC-like
//! benchmarks). See `examples/custom_lifeguard.rs` for the session-builder
//! quickstart.
//!
//! # Quickstart
//!
//! ```rust
//! use paralog::core::{MonitorConfig, MonitoringMode, Platform};
//! use paralog::lifeguards::LifeguardKind;
//! use paralog::workloads::{Benchmark, WorkloadSpec};
//!
//! // Monitor a 2-thread LU-like workload with TaintCheck, in parallel.
//! let workload = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.05).build();
//! let config = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
//! let outcome = Platform::run(&workload, &config);
//! assert!(outcome.metrics.execution_cycles() > 0);
//! ```

// Compile-check and run the README's example blocks as doctests (the CI
// docs step executes them workspace-wide), so the quickstart cannot rot
// silently when the API moves.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use paralog_accel as accel;
pub use paralog_core as core;
pub use paralog_daemon as daemon;
pub use paralog_events as events;
pub use paralog_lifeguards as lifeguards;
pub use paralog_meta as meta;
pub use paralog_order as order;
pub use paralog_sim as sim;
pub use paralog_workloads as workloads;
