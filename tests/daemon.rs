//! End-to-end exercise of `paralogd`: external producers over Unix-domain
//! sockets, N sessions multiplexed over one shared worker pool.
//!
//! The tentpole invariants:
//!
//! * two *concurrent* sessions with different lifeguards, each fed by its
//!   own producer process-alike over the data socket, finish with
//!   fingerprints and violations **identical** to in-process
//!   `ReplaySource` runs of the same captures;
//! * a session detached while its producer is mid-stream drains what
//!   arrived and reports partial (but valid) metrics;
//! * a stalled producer on session A never delays session B (shared-pool
//!   isolation), and A's lanes demonstrably traverse the real
//!   `WouldBlock` → `Blocked` path while stalled;
//! * a malformed handshake and mid-stream corruption surface as errors on
//!   the control surface without taking the daemon down;
//! * graceful shutdown drains live sessions to partial metrics — no
//!   hangs, no poisoned locks.

#![cfg(unix)]

use paralog::core::{MonitorConfig, MonitorSession, MonitoringMode, Platform, ReplaySource};
use paralog::daemon::client::{Control, Producer};
use paralog::daemon::proto::{self, AttachRequest};
use paralog::daemon::supervisor::{Daemon, DaemonConfig};
use paralog::events::codec::encode;
use paralog::events::{AddrRange, EventRecord, Instr, Rid};
use paralog::lifeguards::{LifeguardKind, Violation};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Unique, short socket paths (the `sun_path` limit is ~108 bytes).
fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("plgd-{}-{tag}{n}.sock", std::process::id()))
}

fn spawn_daemon(tag: &str) -> Daemon {
    let mut config =
        DaemonConfig::new(sock_path(&format!("{tag}d")), sock_path(&format!("{tag}c")));
    config.workers = 4;
    Daemon::spawn(config).expect("daemon spawns")
}

/// Captures a workload's annotated streams plus the live run's results.
fn capture(
    bench: Benchmark,
    threads: usize,
    kind: LifeguardKind,
) -> (Workload, Vec<Vec<u8>>, u64, Vec<Violation>) {
    let w = WorkloadSpec::benchmark(bench, threads).scale(0.05).build();
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind);
    cfg.collect_streams = true;
    let live = Platform::run(&w, &cfg).metrics;
    let streams = live.streams.clone().expect("collection enabled");
    let encoded = streams.iter().map(|s| encode(s)).collect();
    (w, encoded, live.fingerprint, live.violations)
}

/// A no-arc capture: per-thread independent records, so any record-boundary
/// prefix drains to valid partial metrics.
fn independent_capture(threads: usize, per_thread: u64) -> (AddrRange, Vec<Vec<u8>>) {
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let encoded = (0..threads)
        .map(|_| {
            let recs: Vec<EventRecord> = (1..=per_thread)
                .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
                .collect();
            encode(&recs)
        })
        .collect();
    (heap, encoded)
}

fn attach_request(
    name: &str,
    kind: LifeguardKind,
    threads: usize,
    heap: AddrRange,
) -> AttachRequest {
    AttachRequest {
        name: name.into(),
        lifeguard: kind.name().into(),
        threads,
        tso: false,
        heap,
        mode: paralog::core::BackendMode::Auto,
    }
}

/// Polls `STATUS <id>` until the session leaves the running/draining
/// states; returns the final status block.
fn await_done(daemon: &Daemon, id: u64) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let mut ctl = Control::connect(daemon.control_socket()).expect("control connects");
        let status = ctl.status(id).expect("status");
        let state = field(&status, "state");
        match state.as_deref() {
            Some("done") | Some("failed") => return status,
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "session {id} never finished; status: {status:?}"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// First `<key> <rest>` status line's `<rest>`.
fn field(lines: &[String], key: &str) -> Option<String> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(&format!("{key} ")).map(str::to_string))
}

/// `(tid, rid)` keys of `violation <tid> <rid> ...` status lines, sorted.
fn violation_keys_of(lines: &[String]) -> Vec<(u16, u64)> {
    let mut keys: Vec<(u16, u64)> = lines
        .iter()
        .filter_map(|l| l.strip_prefix("violation "))
        .map(|rest| {
            let mut it = rest.split_ascii_whitespace();
            let tid = it.next().expect("tid").parse().expect("tid number");
            let rid = it.next().expect("rid").parse().expect("rid number");
            (tid, rid)
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64)> {
    let mut keys: Vec<(u16, u64)> = violations.iter().map(|v| (v.tid.0, v.rid.0)).collect();
    keys.sort_unstable();
    keys
}

#[test]
fn two_concurrent_sessions_match_in_process_replay() {
    // Two different captures, two different lifeguards, one daemon, one
    // shared pool. Both producers stream concurrently.
    let (wa, enc_a, fp_a, viol_a) = capture(Benchmark::Barnes, 4, LifeguardKind::TaintCheck);
    let (wb, enc_b, fp_b, viol_b) = capture(Benchmark::Lu, 2, LifeguardKind::MemCheck);

    // In-process references over the same encoded bytes.
    let ref_a = MonitorSession::builder()
        .source(ReplaySource::from_encoded(&enc_a, wa.heap).expect("valid capture"))
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(ref_a.metrics.fingerprint, fp_a);

    let daemon = spawn_daemon("pair");
    let mut prod_a = Producer::attach(
        daemon.data_socket(),
        &attach_request("barnes", LifeguardKind::TaintCheck, 4, wa.heap),
    )
    .expect("A attaches");
    let mut prod_b = Producer::attach(
        daemon.data_socket(),
        &attach_request("lu", LifeguardKind::MemCheck, 2, wb.heap),
    )
    .expect("B attaches");
    assert_ne!(prod_a.session_id(), prod_b.session_id());

    // Stream both captures concurrently in small frames so the sessions
    // genuinely interleave on the shared pool.
    let feeder_a = std::thread::spawn(move || {
        prod_a.send_capture(&enc_a, 512).expect("A streams");
        prod_a.session_id()
    });
    let feeder_b = std::thread::spawn(move || {
        prod_b.send_capture(&enc_b, 512).expect("B streams");
        prod_b.session_id()
    });
    let id_a = feeder_a.join().expect("A feeder");
    let id_b = feeder_b.join().expect("B feeder");

    let status_a = await_done(&daemon, id_a);
    let status_b = await_done(&daemon, id_b);
    assert_eq!(field(&status_a, "state").as_deref(), Some("done"));
    assert_eq!(field(&status_b, "state").as_deref(), Some("done"));
    assert_eq!(
        field(&status_a, "fingerprint"),
        Some(format!("{fp_a:016x}")),
        "session A fingerprint diverged from the in-process run"
    );
    assert_eq!(
        field(&status_b, "fingerprint"),
        Some(format!("{fp_b:016x}")),
        "session B fingerprint diverged from the in-process run"
    );
    assert_eq!(violation_keys_of(&status_a), violation_keys(&viol_a));
    assert_eq!(violation_keys_of(&status_b), violation_keys(&viol_b));

    // STATUS surfaces the resolved backend mode, the metadata substrate,
    // and a throughput figure.
    let mode_a = field(&status_a, "mode").expect("mode line");
    assert!(
        mode_a == "cas" || mode_a == "delta",
        "mode must resolve concretely, got {mode_a:?}"
    );
    assert!(
        field(&status_a, "metadata").is_some(),
        "STATUS reports the factory's metadata shape"
    );
    let _rate: f64 = field(&status_a, "records_per_sec")
        .expect("records_per_sec line")
        .parse()
        .expect("throughput is numeric");

    // STATUS surfaces the Figure-7-style per-phase breakdown, internally
    // consistent (phases sum to the reported total) and with a non-zero
    // transport phase: daemon sessions always ingest codec wire bytes.
    let phase = |key: &str| -> u64 {
        field(&status_a, key)
            .unwrap_or_else(|| panic!("{key} line missing from STATUS"))
            .parse()
            .expect("phase cycles are numeric")
    };
    assert_eq!(
        phase("phase_capture")
            + phase("phase_transport")
            + phase("phase_order_wait")
            + phase("phase_analysis")
            + phase("phase_publish"),
        phase("phase_total"),
        "STATUS phases must sum to the reported total"
    );
    assert!(phase("phase_transport") > 0, "wire ingest pays transport");
    assert!(phase("phase_analysis") > 0, "handlers ran");

    // LIST sees both, finished.
    let mut ctl = Control::connect(daemon.control_socket()).unwrap();
    let listed = ctl.list().unwrap();
    assert_eq!(listed.len(), 2, "LIST: {listed:?}");
    drop(ctl);
    for report in daemon.shutdown() {
        report.result.expect("both sessions finished clean");
    }
}

#[test]
fn explicit_delta_mode_attach_matches_in_process_replay() {
    // A producer that *asks* for delta-merge gets it (STATUS says so) and
    // the fingerprint still matches the in-process CAS-per-access run —
    // cross-mode parity over the daemon wire.
    let (w, encoded, fp, viols) = capture(Benchmark::Barnes, 4, LifeguardKind::TaintCheck);
    let daemon = spawn_daemon("delta");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &AttachRequest {
            mode: paralog::core::BackendMode::DeltaMerge,
            ..attach_request("barnes-delta", LifeguardKind::TaintCheck, 4, w.heap)
        },
    )
    .expect("delta attach accepted");
    producer.send_capture(&encoded, 512).expect("streams");
    let status = await_done(&daemon, producer.session_id());
    assert_eq!(field(&status, "state").as_deref(), Some("done"));
    assert_eq!(field(&status, "mode").as_deref(), Some("delta"));
    assert_eq!(field(&status, "fingerprint"), Some(format!("{fp:016x}")));
    assert_eq!(violation_keys_of(&status), violation_keys(&viols));
    for report in daemon.shutdown() {
        report.result.expect("delta session finished clean");
    }
}

#[test]
fn detach_while_running_drains_to_partial_metrics() {
    let (heap, encoded) = independent_capture(2, 400);
    let daemon = spawn_daemon("det");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("hang", LifeguardKind::TaintCheck, 2, heap),
    )
    .expect("attaches");
    let id = producer.session_id();

    // Send only a prefix of each thread's capture (at a record boundary:
    // encode() of a record prefix is a byte prefix of the full stream),
    // then keep the connection open — the producer is alive but idle.
    let half: Vec<EventRecord> = (1..=200u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let half = encode(&half);
    assert!(encoded[0].starts_with(&half), "prefix property");
    producer.send(0, &half).unwrap();
    producer.send(1, &half).unwrap();

    // Wait until the session has demonstrably ingested, then detach.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut ctl = Control::connect(daemon.control_socket()).unwrap();
        let status = ctl.status(id).unwrap();
        let records: u64 = field(&status, "records").expect("records").parse().unwrap();
        if records >= 400 {
            break;
        }
        assert!(Instant::now() < deadline, "never ingested: {status:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut ctl = Control::connect(daemon.control_socket()).unwrap();
    let reply = ctl.detach(id).unwrap();
    assert!(reply[0].starts_with("OK"), "detach: {reply:?}");

    let status = await_done(&daemon, id);
    assert_eq!(field(&status, "state").as_deref(), Some("done"));
    assert_eq!(field(&status, "records").as_deref(), Some("400"));
    drop(producer);
    daemon.shutdown();
}

#[test]
fn stalled_producer_never_delays_other_sessions() {
    let (heap, full) = independent_capture(1, 2000);
    let daemon = spawn_daemon("iso");

    // Session A: attaches, sends a token amount, then stalls (connection
    // open, no further bytes).
    let mut stalled = Producer::attach(
        daemon.data_socket(),
        &attach_request("stalled", LifeguardKind::TaintCheck, 1, heap),
    )
    .expect("A attaches");
    let id_a = stalled.session_id();
    let token: Vec<EventRecord> = (1..=10u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    stalled.send(0, &encode(&token)).unwrap();

    // Session B: streams a full capture and must finish while A stalls.
    let mut runner = Producer::attach(
        daemon.data_socket(),
        &attach_request("runner", LifeguardKind::TaintCheck, 1, heap),
    )
    .expect("B attaches");
    let id_b = runner.session_id();
    runner.send_capture(&full, 256).unwrap();
    let status_b = await_done(&daemon, id_b);
    assert_eq!(field(&status_b, "state").as_deref(), Some("done"));
    assert_eq!(field(&status_b, "records").as_deref(), Some("2000"));

    // A is still running — and its lane has demonstrably been through the
    // real non-blocking path (`WouldBlock` → `StreamStatus::Blocked`).
    let mut ctl = Control::connect(daemon.control_socket()).unwrap();
    let status_a = ctl.status(id_a).unwrap();
    assert_eq!(field(&status_a, "state").as_deref(), Some("running"));
    let blocked: u64 = field(&status_a, "blocked_polls")
        .expect("blocked_polls while running")
        .parse()
        .unwrap();
    assert!(blocked > 0, "stalled session never saw a Blocked poll");

    // Un-stall A; it finishes too.
    stalled.finish().unwrap();
    let status_a = await_done(&daemon, id_a);
    assert_eq!(field(&status_a, "state").as_deref(), Some("done"));
    assert_eq!(field(&status_a, "records").as_deref(), Some("10"));
    daemon.shutdown();
}

#[test]
fn dropped_producer_with_severed_arcs_fails_the_session_promptly() {
    use paralog::events::{ArcKind, DependenceArc, ThreadId};

    let heap = AddrRange::new(0x1000_0000, 0x1000);
    // Thread 1's only record depends on thread 0's record #9; thread 0's
    // stream is cut (at a clean frame + record boundary) at #5.
    let t0: Vec<EventRecord> = (1..=10u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let mut dependent = EventRecord::instr(Rid(1), Instr::Nop);
    dependent
        .arcs
        .push(DependenceArc::new(ThreadId(0), Rid(9), ArcKind::Sync));

    let daemon = spawn_daemon("sever");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("severed", LifeguardKind::TaintCheck, 2, heap),
    )
    .expect("attaches");
    let id = producer.session_id();
    producer.send(0, &encode(&t0[..5])).unwrap();
    producer.send(1, &encode(&[dependent])).unwrap();
    drop(producer); // connection gone mid-session, arcs dangling

    let started = Instant::now();
    let status = await_done(&daemon, id);
    let elapsed = started.elapsed();
    assert_eq!(field(&status, "state").as_deref(), Some("failed"));
    let error = field(&status, "error").expect("error line");
    assert!(error.contains("gated"), "unexpected error: {error}");
    assert!(
        elapsed < Duration::from_secs(2),
        "severed-arc detach took {elapsed:?} to resolve"
    );
    daemon.shutdown();
}

#[test]
fn malformed_handshake_is_rejected_without_killing_the_daemon() {
    let daemon = spawn_daemon("hs");

    // Garbage greeting → ERR and a dropped connection.
    let mut raw = UnixStream::connect(daemon.data_socket()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\n").unwrap();
    let mut reply = String::new();
    BufReader::new(&raw).read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR"), "got {reply:?}");

    // Unknown lifeguard → ERR with the reason.
    let (heap, _) = independent_capture(1, 1);
    let err = Producer::attach(
        daemon.data_socket(),
        &AttachRequest {
            name: "x".into(),
            lifeguard: "NoSuchAnalysis".into(),
            threads: 1,
            tso: false,
            heap,
            mode: paralog::core::BackendMode::Auto,
        },
    )
    .expect_err("unknown lifeguard must be rejected");
    assert!(err.to_string().contains("unknown lifeguard"), "{err}");

    // The daemon is fine: a well-formed attach still works end to end.
    let (heap, encoded) = independent_capture(1, 50);
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("ok", LifeguardKind::AddrCheck, 1, heap),
    )
    .expect("daemon survived the bad handshakes");
    producer.send_capture(&encoded, 64).unwrap();
    let status = await_done(&daemon, producer.session_id());
    assert_eq!(field(&status, "state").as_deref(), Some("done"));
    daemon.shutdown();
}

#[test]
fn mid_stream_corruption_fails_the_session_not_the_daemon() {
    let (heap, _) = independent_capture(1, 1);
    let daemon = spawn_daemon("corr");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("corrupt", LifeguardKind::TaintCheck, 1, heap),
    )
    .expect("attaches");
    let id = producer.session_id();

    // A well-framed frame whose payload is codec garbage: the transport
    // layer is fine, the decode layer must flag the stream.
    producer
        .send(0, &[0xde, 0xad, 0xbe, 0xef, 0x99, 0x99])
        .unwrap();
    producer.finish().unwrap();
    let status = await_done(&daemon, id);
    assert_eq!(field(&status, "state").as_deref(), Some("failed"));
    let error = field(&status, "error").expect("failed sessions carry the error");
    assert!(
        error.contains("malformed") || error.contains("checksum") || error.contains("decode"),
        "unexpected error: {error}"
    );

    // A frame for a thread the session never declared: transport-level
    // protocol fault; same containment.
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("badtid", LifeguardKind::TaintCheck, 1, heap),
    )
    .expect("daemon still accepting");
    let id = producer.session_id();
    producer.send(7, b"whatever").unwrap();
    let status = await_done(&daemon, id);
    assert_eq!(field(&status, "state").as_deref(), Some("failed"));

    // Daemon still healthy: PING answers, and a clean session completes.
    let mut ctl = Control::connect(daemon.control_socket()).unwrap();
    assert_eq!(ctl.command("PING").unwrap(), vec!["OK pong".to_string()]);
    let (heap, encoded) = independent_capture(2, 30);
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("after", LifeguardKind::LockSet, 2, heap),
    )
    .expect("attaches after corruption");
    producer.send_capture(&encoded, 64).unwrap();
    let status = await_done(&daemon, producer.session_id());
    assert_eq!(field(&status, "state").as_deref(), Some("done"));
    daemon.shutdown();
}

#[test]
fn graceful_shutdown_reports_partial_metrics() {
    let (heap, encoded) = independent_capture(2, 300);
    let daemon = spawn_daemon("shut");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("partial", LifeguardKind::TaintCheck, 2, heap),
    )
    .expect("attaches");

    // A record-boundary prefix, then the producer goes quiet mid-session.
    let third: Vec<EventRecord> = (1..=100u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let third = encode(&third);
    assert!(encoded[0].starts_with(&third));
    producer.send(0, &third).unwrap();
    producer.send(1, &third).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut ctl = Control::connect(daemon.control_socket()).unwrap();
        let status = ctl.status(producer.session_id()).unwrap();
        if field(&status, "records")
            .expect("records")
            .parse::<u64>()
            .unwrap()
            >= 200
        {
            break;
        }
        assert!(Instant::now() < deadline, "never ingested");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down with the producer still attached: the session must drain
    // to partial metrics, not hang and not poison anything.
    let reports = daemon.shutdown();
    assert_eq!(reports.len(), 1);
    let metrics = reports[0]
        .result
        .as_ref()
        .expect("graceful shutdown drains to a valid partial report");
    assert_eq!(metrics.records, 200, "exactly the delivered prefix");
}

#[test]
fn live_watch_streams_violations_and_the_end_line() {
    // AddrCheck flags unallocated heap accesses: craft a capture with two
    // deterministic violations and watch them arrive over the feed.
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let recs = vec![
        EventRecord::instr(
            Rid(1),
            Instr::Load {
                dst: paralog::events::Reg::new(0),
                src: paralog::events::MemRef::new(heap.start + 16, 4),
            },
        ),
        EventRecord::instr(Rid(2), Instr::Nop),
        EventRecord::instr(
            Rid(3),
            Instr::Store {
                dst: paralog::events::MemRef::new(heap.start + 64, 4),
                src: paralog::events::Reg::new(0),
            },
        ),
    ];
    let encoded = vec![encode(&recs)];
    let daemon = spawn_daemon("watch");
    let mut producer = Producer::attach(
        daemon.data_socket(),
        &attach_request("watched", LifeguardKind::AddrCheck, 1, heap),
    )
    .expect("attaches");
    let id = producer.session_id();
    let watcher = std::thread::spawn({
        let control = daemon.control_socket().to_path_buf();
        move || {
            let ctl = Control::connect(control).expect("watch connects");
            let mut lines = Vec::new();
            ctl.watch(id, |l| lines.push(l.to_string())).expect("watch");
            lines
        }
    });
    // Give the watcher a beat to subscribe, then stream.
    std::thread::sleep(Duration::from_millis(50));
    producer.send_capture(&encoded, 16).unwrap();
    let lines = watcher.join().expect("watcher");
    let violations = lines.iter().filter(|l| l.starts_with("violation ")).count();
    assert_eq!(violations, 2, "feed lines: {lines:?}");
    assert!(
        lines.last().is_some_and(|l| l.starts_with("end ok")),
        "feed must terminate with the end line: {lines:?}"
    );
    daemon.shutdown();
}

#[test]
fn oversized_frame_is_a_transport_protocol_fault() {
    // A frame-level protocol violation (oversized header) is rejected at
    // the parser; the full daemon-side containment of it is exercised by
    // the mid-stream-corruption test above.
    let mut hdr = [0u8; 6];
    hdr[2..].copy_from_slice(&(proto::MAX_FRAME_BYTES + 1).to_le_bytes());
    assert!(proto::FrameParser::new().feed(&hdr, |_| ()).is_err());
}
