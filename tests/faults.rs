//! Fault injection: the monitor under a hostile transport.
//!
//! `FaultyReader` drives `StreamingReplaySource` with the four fault
//! classes a real socket exhibits — short reads, transient stalls, byte
//! corruption, truncation — on both backends. The robustness contract:
//!
//! * corruption anywhere in the wire stream is reported as
//!   `MalformedStream` (the codec's chained per-record checksum), never a
//!   panic, a poisoned lock or a hung worker;
//! * truncation mid-record is `MalformedStream`; truncation at a record
//!   boundary that severs dependence arcs is `Deadlock`;
//! * semantically invalid TSO annotations inside a well-framed stream
//!   (duplicate produce, zero consumers) are `MalformedStream`, not a
//!   worker panic;
//! * transient stalls and arbitrary fragmentation change *nothing*: the
//!   run completes with the same fingerprint and violations as a clean
//!   transport.

use paralog::core::{
    DeterministicBackend, FaultyReader, MonitorConfig, MonitorSession, MonitoringMode, Platform,
    RunOutcome, SessionError, StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::events::{
    AddrRange, ArcKind, DependenceArc, EventRecord, Instr, MemRef, Reg, Rid, ThreadId, VersionId,
};
use paralog::lifeguards::{LifeguardKind, Violation, ViolationKind};
use paralog::workloads::{Benchmark, WorkloadSpec};
use proptest::prelude::*;
use std::io::{Cursor, Read};

const HEAP: AddrRange = AddrRange {
    start: 0x1000_0000,
    len: 0x1000,
};

/// Runs encoded per-thread wire streams through `FaultyReader`s configured
/// by `configure`, on the chosen backend.
fn run_faulty(
    encoded: &[Vec<u8>],
    threaded: bool,
    configure: impl Fn(FaultyReader<Cursor<Vec<u8>>>, usize) -> FaultyReader<Cursor<Vec<u8>>>,
) -> Result<RunOutcome, SessionError> {
    let readers: Vec<Box<dyn Read + Send>> = encoded
        .iter()
        .enumerate()
        .map(|(i, bytes)| {
            let reader = FaultyReader::new(Cursor::new(bytes.clone()), 0x5eed + i as u64);
            Box::new(configure(reader, i)) as Box<dyn Read + Send>
        })
        .collect();
    let src = StreamingReplaySource::new(readers, HEAP).with_chunk_bytes(64);
    let builder = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck);
    let builder = if threaded {
        builder.backend(ThreadedBackend)
    } else {
        builder.backend(DeterministicBackend)
    };
    builder.build().unwrap().run()
}

/// A small single-thread stream exercising every wire section: plain
/// instructions, a produce/consume version pair and delta-coded addresses.
fn annotated_stream() -> Vec<EventRecord> {
    let m = MemRef::new(HEAP.start + 0x10, 4);
    let vid = VersionId {
        consumer: ThreadId(0),
        consumer_rid: Rid(5),
    };
    let mut recs = vec![
        EventRecord::instr(
            Rid(1),
            Instr::Load {
                dst: Reg::new(0),
                src: m,
            },
        ),
        EventRecord::instr(
            Rid(2),
            Instr::Alu2 {
                dst: Reg::new(1),
                a: Reg::new(0),
                b: Reg::new(2),
            },
        ),
        EventRecord::instr(
            Rid(3),
            Instr::Store {
                dst: m,
                src: Reg::new(1),
            },
        ),
        EventRecord::instr(Rid(4), Instr::Nop),
        EventRecord::instr(
            Rid(5),
            Instr::Load {
                dst: Reg::new(2),
                src: m,
            },
        ),
        EventRecord::instr(Rid(6), Instr::Nop),
    ];
    recs[2].produce_versions.push((vid, m, 1));
    recs[4].consume_version = Some((vid, m));
    recs
}

#[test]
fn corruption_at_every_offset_is_malformed_not_fatal() {
    let bytes = encode(&annotated_stream());
    for offset in 0..bytes.len() {
        let err = run_faulty(std::slice::from_ref(&bytes), false, |r, _| {
            r.corrupt_byte(offset as u64)
        })
        .err();
        assert!(
            matches!(err, Some(SessionError::MalformedStream(_))),
            "offset {offset}/{}: expected MalformedStream, got {err:?}",
            bytes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The threaded sampling of the exhaustive sweep above: real workers
    // must fail the run and exit — not panic, not hang — for any corrupted
    // offset, composed with arbitrary fragmentation.
    #[test]
    fn threaded_workers_report_corruption_and_exit(
        offset in 0usize..34,
        seed in 0u64..1000,
    ) {
        let bytes = encode(&annotated_stream());
        let offset = offset % bytes.len();
        let err = run_faulty(std::slice::from_ref(&bytes), true, |r, _| {
            // Re-seed so fragmentation varies independently of the offset.
            let _ = seed;
            r.short_reads().corrupt_byte(offset as u64)
        })
        .err();
        prop_assert!(
            matches!(err, Some(SessionError::MalformedStream(_))),
            "offset {offset}: expected MalformedStream, got {err:?}"
        );
    }
}

#[test]
fn mid_record_truncation_is_malformed_on_both_backends() {
    let bytes = encode(&annotated_stream());
    for threaded in [false, true] {
        let err = run_faulty(std::slice::from_ref(&bytes), threaded, |r, _| {
            r.truncate_at(bytes.len() as u64 - 1)
        })
        .err();
        assert!(
            matches!(err, Some(SessionError::MalformedStream(_))),
            "threaded={threaded}: expected MalformedStream, got {err:?}"
        );
    }
}

#[test]
fn boundary_truncation_severing_arcs_is_deadlock_on_both_backends() {
    // Thread 1's only record depends on thread 0's tail; cut thread 0's
    // wire at a clean record boundary so the producer record never
    // arrives. Workers must report Deadlock and exit, not hang.
    let t0: Vec<EventRecord> = (1..=10)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let mut dependent = EventRecord::instr(
        Rid(1),
        Instr::Load {
            dst: Reg::new(0),
            src: MemRef::new(HEAP.start, 4),
        },
    );
    dependent
        .arcs
        .push(DependenceArc::new(ThreadId(0), Rid(9), ArcKind::Raw));
    let boundary = encode(&t0[..5]).len() as u64;
    let encoded = vec![encode(&t0), encode(&[dependent])];
    for threaded in [false, true] {
        let err = run_faulty(&encoded, threaded, |r, i| {
            if i == 0 {
                r.truncate_at(boundary)
            } else {
                r
            }
        })
        .err();
        assert!(
            matches!(err, Some(SessionError::Deadlock(_))),
            "threaded={threaded}: expected Deadlock, got {err:?}"
        );
    }
}

#[test]
fn duplicate_produce_annotation_is_malformed_on_both_backends() {
    // A well-framed stream (checksums intact) whose *semantics* are
    // corrupt: two records publish the same version id. The platform must
    // report the stream, not panic a worker or poison the version table.
    let m = MemRef::new(HEAP.start + 0x20, 4);
    let vid = VersionId {
        consumer: ThreadId(0),
        consumer_rid: Rid(9),
    };
    let mut recs: Vec<EventRecord> = (1..=4)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    recs[0].produce_versions.push((vid, m, 1));
    recs[1].produce_versions.push((vid, m, 1));
    let encoded = vec![encode(&recs)];
    for threaded in [false, true] {
        let err = run_faulty(&encoded, threaded, |r, _| r).err();
        match err {
            Some(SessionError::MalformedStream(detail)) => assert!(
                detail.contains("produce annotation"),
                "threaded={threaded}: unexpected detail {detail:?}"
            ),
            other => panic!("threaded={threaded}: expected MalformedStream, got {other:?}"),
        }
    }
}

#[test]
fn zero_consumer_produce_annotation_is_malformed_on_both_backends() {
    let m = MemRef::new(HEAP.start + 0x20, 4);
    let vid = VersionId {
        consumer: ThreadId(0),
        consumer_rid: Rid(2),
    };
    let mut recs: Vec<EventRecord> = (1..=3)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    recs[0].produce_versions.push((vid, m, 0));
    let encoded = vec![encode(&recs)];
    for threaded in [false, true] {
        let err = run_faulty(&encoded, threaded, |r, _| r).err();
        assert!(
            matches!(err, Some(SessionError::MalformedStream(_))),
            "threaded={threaded}: expected MalformedStream, got {err:?}"
        );
    }
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

#[test]
fn transient_stalls_and_fragmentation_change_nothing() {
    // A realistic multi-thread capture through a transport that stalls
    // with WouldBlock every ~9 bytes and fragments every read: both
    // backends must recover and match the clean run exactly.
    let w = WorkloadSpec::benchmark(Benchmark::Lu, 2)
        .scale(0.05)
        .build();
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let live = Platform::run(&w, &cfg).metrics;
    let streams = live.streams.clone().expect("collection enabled");
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();

    for threaded in [false, true] {
        let readers: Vec<Box<dyn Read + Send>> = encoded
            .iter()
            .enumerate()
            .map(|(i, bytes)| {
                Box::new(
                    FaultyReader::new(Cursor::new(bytes.clone()), 0xF00 + i as u64)
                        .short_reads()
                        .stall_every(9),
                ) as Box<dyn Read + Send>
            })
            .collect();
        let src = StreamingReplaySource::new(readers, w.heap).with_chunk_bytes(64);
        let builder = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let outcome = builder.build().unwrap().run().unwrap_or_else(|e| {
            panic!("threaded={threaded}: faulted transport should recover, got {e}")
        });
        assert_eq!(
            outcome.metrics.fingerprint, live.fingerprint,
            "threaded={threaded}: stalls changed the outcome"
        );
        assert_eq!(
            violation_keys(&outcome.metrics.violations),
            violation_keys(&live.violations),
            "threaded={threaded}"
        );
    }
}
