//! Transport-layer invariants: log conservation, backpressure, determinism
//! and the compression codec on live workload streams.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::events::codec::Encoder;
use paralog::events::{EventRecord, Op, Rid};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

#[test]
fn records_flow_is_conserved() {
    let w = WorkloadSpec::benchmark(Benchmark::Fmm, 4)
        .scale(0.1)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    // At least one record per instruction op, plus high-level records.
    let instrs: usize = w
        .threads
        .iter()
        .flatten()
        .filter(|op| matches!(op, Op::Instr(_)))
        .count();
    assert!(
        m.records >= instrs as u64,
        "every retired instruction is logged"
    );
}

#[test]
fn tiny_ring_causes_backpressure() {
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
        .scale(0.2)
        .build();
    let mut small = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .without_accelerators();
    small.log_capacity = 256;
    let m_small = Platform::run(&w, &small).metrics;
    let log_stall: u64 = m_small.app.iter().map(|b| b.log_stall).sum();
    assert!(
        log_stall > 0,
        "a 256-record ring must stall the application"
    );

    let mut big = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .without_accelerators();
    big.log_capacity = 1 << 20;
    let m_big = Platform::run(&w, &big).metrics;
    let log_stall_big: u64 = m_big.app.iter().map(|b| b.log_stall).sum();
    assert!(
        log_stall_big < log_stall,
        "a huge ring must reduce application log stalls ({log_stall_big} vs {log_stall})"
    );
}

#[test]
fn runs_are_deterministic() {
    let w = WorkloadSpec::benchmark(Benchmark::Radiosity, 4)
        .scale(0.1)
        .build();
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    let a = Platform::run(&w, &cfg).metrics;
    let b = Platform::run(&w, &cfg).metrics;
    assert_eq!(a.execution_cycles(), b.execution_cycles());
    assert_eq!(a.records, b.records);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.capture.recorded, b.capture.recorded);
    assert_eq!(a.violations.len(), b.violations.len());
}

#[test]
fn tso_runs_are_deterministic_too() {
    let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
        .scale(0.1)
        .build();
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck).with_tso();
    let a = Platform::run(&w, &cfg).metrics;
    let b = Platform::run(&w, &cfg).metrics;
    assert_eq!(a.execution_cycles(), b.execution_cycles());
    assert_eq!(a.versions_produced, b.versions_produced);
    assert_eq!(a.fingerprint, b.fingerprint);
}

#[test]
fn codec_compresses_real_streams_compactly() {
    // §2 relies on ~1 byte per compressed record; our codec must at least
    // land in the low single digits on realistic streams (including the
    // per-record integrity byte), and round-trip.
    for bench in [Benchmark::Lu, Benchmark::Barnes, Benchmark::Swaptions] {
        let w = WorkloadSpec::benchmark(bench, 1).scale(0.3).build();
        let mut rid = 0u64;
        let records: Vec<EventRecord> = w.threads[0]
            .iter()
            .filter_map(|op| match op {
                Op::Instr(i) => {
                    rid += 1;
                    Some(EventRecord::instr(Rid(rid), *i))
                }
                _ => None,
            })
            .collect();
        let mut enc = Encoder::new();
        for r in &records {
            enc.push(r);
        }
        let rate = enc.bytes_per_record();
        assert!(
            rate < 5.0,
            "{bench}: expected compact encoding, got {rate:.2} B/record"
        );
        let bytes = enc.finish();
        let back = paralog::events::codec::decode(&bytes).expect("roundtrip");
        assert_eq!(back, records, "{bench}: lossless roundtrip");
    }
}

#[test]
fn mode_scaling_sanity() {
    // More application threads must speed up the unmonitored application
    // (parallel work) but not the timesliced run (serialized).
    let w2 = WorkloadSpec::benchmark(Benchmark::Blackscholes, 2)
        .scale(0.2)
        .build();
    let w8 = WorkloadSpec::benchmark(Benchmark::Blackscholes, 8)
        .scale(0.2)
        .build();
    let cfg_none = MonitorConfig::new(MonitoringMode::None, LifeguardKind::AddrCheck);
    let base2 = Platform::run(&w2, &cfg_none).metrics.execution_cycles();
    let base8 = Platform::run(&w8, &cfg_none).metrics.execution_cycles();
    // Same per-thread work: embarrassingly parallel -> similar finish times.
    let ratio = base8 as f64 / base2 as f64;
    assert!(ratio < 1.5, "blackscholes scales, got ratio {ratio:.2}");

    let cfg_ts = MonitorConfig::new(MonitoringMode::Timesliced, LifeguardKind::AddrCheck);
    let ts2 = Platform::run(&w2, &cfg_ts).metrics.execution_cycles();
    let ts8 = Platform::run(&w8, &cfg_ts).metrics.execution_cycles();
    assert!(
        ts8 as f64 > 3.0 * ts2 as f64,
        "timesliced serializes: 8 threads must cost ~4x of 2 threads, got {:.2}x",
        ts8 as f64 / ts2 as f64
    );
}

#[test]
fn unmonitored_mode_produces_no_records() {
    let w = WorkloadSpec::benchmark(Benchmark::Lu, 2)
        .scale(0.05)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::None, LifeguardKind::TaintCheck),
    )
    .metrics;
    assert_eq!(m.records, 0);
    assert_eq!(m.lg_finish, 0);
    assert!(m.violations.is_empty());
}
