//! Streaming ingestion: incremental, bounded-memory event sources.
//!
//! The tentpole invariants:
//!
//! * streaming a codec-encoded log through `StreamingReplaySource` on both
//!   backends produces fingerprints and violations **identical** to the
//!   buffered `ReplaySource` path;
//! * source-side resident buffering stays within the configured chunk
//!   budget even for large streams (asserted against the source's
//!   high-water stats);
//! * the incremental decoder is split-point oblivious (property test over
//!   random chunkings);
//! * a stream truncated at a record boundary still reports `Deadlock`
//!   rather than hanging, on both backends; one truncated mid-record
//!   reports `MalformedStream`;
//! * a bounded, back-pressured push feed drives a live session from a
//!   producer thread and matches the equivalent buffered run.

use paralog::core::{
    DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode, Platform, PushSource,
    ReplaySource, SessionError, StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::{encode, StreamDecoder};
use paralog::events::{
    AddrRange, ArcKind, CaPhase, CaRecord, DependenceArc, EventRecord, HighLevelKind, Instr,
    MemRef, Reg, Rid, SyscallKind, ThreadId,
};
use paralog::lifeguards::{LifeguardKind, Violation, ViolationKind};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};
use proptest::prelude::*;

fn workload(bench: Benchmark, threads: usize) -> Workload {
    WorkloadSpec::benchmark(bench, threads).scale(0.05).build()
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

/// Captures a workload's annotated streams plus the live run's metrics.
fn capture(
    bench: Benchmark,
    threads: usize,
) -> (Workload, Vec<Vec<EventRecord>>, u64, Vec<Violation>) {
    let w = workload(bench, threads);
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let live = Platform::run(&w, &cfg).metrics;
    let streams = live.streams.clone().expect("collection enabled");
    (w, streams, live.fingerprint, live.violations)
}

#[test]
fn streaming_replay_matches_buffered_on_both_backends() {
    let (w, streams, live_fp, live_violations) = capture(Benchmark::Barnes, 4);
    let total: usize = streams.iter().map(Vec::len).sum();
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();

    // Buffered baseline.
    let buffered = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(buffered.metrics.fingerprint, live_fp);

    // Streaming through the deterministic backend, small chunks.
    let src = StreamingReplaySource::from_encoded(encoded.clone(), w.heap).with_chunk_bytes(512);
    let stats = src.stats();
    let det = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(det.metrics.fingerprint, live_fp, "streamed != buffered");
    assert_eq!(det.metrics.records, total as u64);
    assert_eq!(
        violation_keys(&det.metrics.violations),
        violation_keys(&live_violations)
    );
    assert!(
        stats.peak_buffered_bytes() <= 2 * 512,
        "decode residency {} blew the 512-byte chunk budget",
        stats.peak_buffered_bytes()
    );

    // Streaming through the real-thread backend.
    let src = StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(512);
    let thr = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(thr.metrics.fingerprint, live_fp, "threaded streamed replay");
    assert_eq!(
        violation_keys(&thr.metrics.violations),
        violation_keys(&live_violations)
    );
}

#[test]
fn large_stream_stays_within_memory_cap() {
    // ~200k records in one thread: far larger than the 4 KiB cap, so the
    // bound only holds if decoding is genuinely incremental.
    let n = 200_000u64;
    let stream: Vec<EventRecord> = (0..n)
        .map(|i| {
            EventRecord::instr(
                Rid(i + 1),
                Instr::Load {
                    dst: Reg::new((i % 8) as u8),
                    src: MemRef::new(0x1000_0000 + (i % 4096) * 8, 8),
                },
            )
        })
        .collect();
    let encoded = encode(&stream);
    let wire_len = encoded.len();
    let cap = 4096usize;
    assert!(wire_len > 32 * cap, "stream must dwarf the cap");
    let heap = AddrRange::new(0x1000_0000, 0x1000_0000);
    let src = StreamingReplaySource::from_encoded(vec![encoded], heap).with_chunk_bytes(cap);
    let stats = src.stats();
    let out = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.metrics.records, n);
    assert!(
        stats.peak_buffered_bytes() <= 2 * cap,
        "peak residency {} for a {} byte wire stream exceeds the {} byte cap",
        stats.peak_buffered_bytes(),
        wire_len,
        cap
    );
}

#[test]
fn truncated_wire_stream_deadlocks_not_hangs() {
    // Thread 1 depends on a record in thread 0's *tail*; cut thread 0's
    // wire stream at a record boundary so the producer record never
    // arrives. Ingestion must fail loudly with `Deadlock` on both backends.
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let t0: Vec<EventRecord> = (1..=10)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let mut dependent = EventRecord::instr(
        Rid(1),
        Instr::Load {
            dst: Reg::new(0),
            src: MemRef::new(heap.start, 4),
        },
    );
    dependent
        .arcs
        .push(DependenceArc::new(ThreadId(0), Rid(9), ArcKind::Raw));
    let t1 = vec![dependent];

    // Encode only thread 0's first five records (clean truncation).
    let truncated = encode(&t0[..5]);
    let whole_t1 = encode(&t1);
    for threaded in [false, true] {
        let src =
            StreamingReplaySource::from_encoded(vec![truncated.clone(), whole_t1.clone()], heap);
        let builder = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let err = builder.build().unwrap().run().err();
        assert!(
            matches!(err, Some(SessionError::Deadlock(_))),
            "threaded={threaded}: expected Deadlock, got {err:?}"
        );
    }
}

#[test]
fn mid_record_truncation_is_malformed_not_deadlock() {
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let stream = vec![EventRecord::instr(
        Rid(1),
        Instr::Load {
            dst: Reg::new(0),
            src: MemRef::new(0x7777_7777, 4),
        },
    )];
    let mut bytes = encode(&stream);
    bytes.truncate(bytes.len() - 1); // cut inside the last record
    for threaded in [false, true] {
        let src = StreamingReplaySource::from_encoded(vec![bytes.clone()], heap);
        let builder = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let err = builder.build().unwrap().run().err();
        assert!(
            matches!(err, Some(SessionError::MalformedStream(_))),
            "threaded={threaded}: expected MalformedStream, got {err:?}"
        );
    }
}

#[test]
fn bounded_push_feed_drives_a_live_session() {
    // The reference: the same records through the buffered PushSource.
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let buf = AddrRange::new(0x1000_0000, 16);
    let records: Vec<EventRecord> = {
        let mut recs = vec![EventRecord::ca(
            Rid(1),
            CaRecord {
                what: HighLevelKind::Syscall(SyscallKind::ReadInput),
                phase: CaPhase::End,
                range: Some(buf),
                issuer: ThreadId(0),
                issuer_rid: Rid(1),
                seq: u64::MAX,
            },
        )];
        recs.push(EventRecord::instr(
            Rid(2),
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(buf.start, 4),
            },
        ));
        recs.push(EventRecord::instr(
            Rid(3),
            Instr::JmpReg {
                target: Reg::new(0),
            },
        ));
        for i in 4..=64 {
            recs.push(EventRecord::instr(Rid(i), Instr::Nop));
        }
        recs
    };
    let mut buffered = PushSource::new(1, heap);
    for rec in &records {
        buffered.push(0, rec.clone());
    }
    let reference = MonitorSession::builder()
        .source(buffered)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(reference.metrics.violations.len(), 1);

    // Live: a producer thread feeds through a capacity-4 channel, so it is
    // back-pressured dozens of times while the monitor ingests online.
    let (mut feed, source) = PushSource::bounded(1, heap, 4);
    let producer = std::thread::spawn({
        let records = records.clone();
        move || {
            for rec in records {
                feed.push(0, rec).expect("session alive");
            }
            // Dropping the feed ends the stream.
        }
    });
    let live = MonitorSession::builder()
        .source(source)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    producer.join().expect("producer");
    assert_eq!(live.metrics.records, records.len() as u64);
    assert_eq!(live.metrics.fingerprint, reference.metrics.fingerprint);
    assert_eq!(
        violation_keys(&live.metrics.violations),
        violation_keys(&reference.metrics.violations)
    );
}

#[test]
fn live_push_feed_drives_the_threaded_backend() {
    // Two producer threads feed two monitored streams with a cross-thread
    // arc; the real-thread backend ingests them online.
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let (mut feed, source) = PushSource::bounded(2, heap, 8);
    let producer = std::thread::spawn(move || {
        for i in 1..=100u64 {
            feed.push(0, EventRecord::instr(Rid(i), Instr::Nop))
                .expect("alive");
        }
        let mut dependent = EventRecord::instr(Rid(1), Instr::Nop);
        dependent
            .arcs
            .push(DependenceArc::new(ThreadId(0), Rid(100), ArcKind::Sync));
        feed.push(1, dependent).expect("alive");
    });
    let out = MonitorSession::builder()
        .source(source)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    producer.join().expect("producer");
    assert_eq!(out.metrics.records, 101);
}

// --- producer-drop determinism ----------------------------------------------

/// A producer that vanishes mid-session with *severed* dependence arcs
/// (a consumer's producer record can never arrive) must resolve to
/// `Deadlock` promptly — on the threaded backend via the severed-input
/// fast path (a fraction of the normal no-progress grace), on the
/// deterministic backend structurally. Never a parked worker waiting out
/// the full grace window, and never a hang.
#[test]
fn dropped_producer_with_severed_arcs_deadlocks_fast() {
    use paralog::daemon::transport::ByteFeed;

    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let t0: Vec<EventRecord> = (1..=10)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let mut dependent = EventRecord::instr(Rid(1), Instr::Nop);
    dependent
        .arcs
        .push(DependenceArc::new(ThreadId(0), Rid(9), ArcKind::Sync));
    // Thread 0's wire stream is cut at record 5 — the arc target (#9)
    // will never arrive once the producer drops.
    let t0_prefix = encode(&t0[..5]);
    let t1_whole = encode(&[dependent]);

    for threaded in [false, true] {
        let total = std::sync::Arc::default();
        let (w0, r0) = ByteFeed::pair(std::sync::Arc::clone(&total));
        let (w1, r1) = ByteFeed::pair(total);
        let producer = std::thread::spawn({
            let t0_prefix = t0_prefix.clone();
            let t1_whole = t1_whole.clone();
            move || {
                // Let the session see live `Blocked` polls first.
                std::thread::sleep(std::time::Duration::from_millis(30));
                w0.write(&t0_prefix);
                w1.write(&t1_whole);
                // Dropping both writers severs the input mid-session.
            }
        });
        let src = StreamingReplaySource::new(vec![Box::new(r0), Box::new(r1)], heap);
        let builder = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let started = std::time::Instant::now();
        let err = builder.build().unwrap().run().err();
        let elapsed = started.elapsed();
        producer.join().expect("producer");
        assert!(
            matches!(err, Some(SessionError::Deadlock(_))),
            "threaded={threaded}: expected Deadlock, got {err:?}"
        );
        assert!(
            elapsed < std::time::Duration::from_millis(1500),
            "threaded={threaded}: severed input took {elapsed:?} to resolve \
             (the fast path should undercut the 2 s no-progress grace)"
        );
    }
}

/// A producer that vanishes at a record boundary with no dangling arcs is
/// a *clean* end of input: both backends drain and report exactly the
/// delivered prefix.
#[test]
fn dropped_producer_at_record_boundary_drains_clean() {
    use paralog::daemon::transport::ByteFeed;

    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let recs: Vec<EventRecord> = (1..=40)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let bytes = encode(&recs);
    for threaded in [false, true] {
        let total = std::sync::Arc::default();
        let (w0, r0) = ByteFeed::pair(std::sync::Arc::clone(&total));
        let (w1, r1) = ByteFeed::pair(total);
        let producer = std::thread::spawn({
            let bytes = bytes.clone();
            move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                w0.write(&bytes);
                w1.write(&bytes);
            }
        });
        let src = StreamingReplaySource::new(vec![Box::new(r0), Box::new(r1)], heap);
        let builder = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let out =
            builder.build().unwrap().run().unwrap_or_else(|e| {
                panic!("threaded={threaded}: clean drop must drain, got {e:?}")
            });
        producer.join().expect("producer");
        assert_eq!(out.metrics.records, 80, "threaded={threaded}");
    }
}

/// The push-feed flavor of the same contract: a `PushFeed` dropped after
/// pushing a record whose arc target was never pushed resolves to
/// `Deadlock`, not a hang.
#[test]
fn dropped_push_feed_with_severed_arc_deadlocks() {
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let (mut feed, source) = PushSource::bounded(2, heap, 8);
    let producer = std::thread::spawn(move || {
        for i in 1..=5u64 {
            feed.push(0, EventRecord::instr(Rid(i), Instr::Nop))
                .expect("alive");
        }
        let mut dependent = EventRecord::instr(Rid(1), Instr::Nop);
        dependent
            .arcs
            .push(DependenceArc::new(ThreadId(0), Rid(50), ArcKind::Sync));
        feed.push(1, dependent).expect("alive");
        // Drop the feed with thread 0 stopped at #5: arc to #50 is severed.
    });
    let started = std::time::Instant::now();
    let err = MonitorSession::builder()
        .source(source)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .err();
    let elapsed = started.elapsed();
    producer.join().expect("producer");
    assert!(
        matches!(err, Some(SessionError::Deadlock(_))),
        "expected Deadlock, got {err:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_millis(1500),
        "severed push feed took {elapsed:?}"
    );
}

// --- incremental decoder property tests ------------------------------------

/// A modest record generator: loads/stores walking an address neighborhood
/// (exercising delta encoding), ALU ops, jumps, CA records with and without
/// ranges, and occasional arcs.
fn record_strategy() -> impl Strategy<Value = EventRecord> {
    let mem = || {
        (
            0u64..0x2_0000,
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        )
            .prop_map(|(a, s)| MemRef::new(0x1000_0000 + a, s))
    };
    prop_oneof![
        4 => (0u8..8, mem()).prop_map(|(r, m)| Instr::Load {
            dst: Reg::new(r),
            src: m,
        }),
        4 => (0u8..8, mem()).prop_map(|(r, m)| Instr::Store {
            dst: m,
            src: Reg::new(r),
        }),
        2 => (0u8..8, 0u8..8).prop_map(|(a, b)| Instr::MovRR {
            dst: Reg::new(a),
            src: Reg::new(b),
        }),
        1 => (0u8..8).prop_map(|r| Instr::JmpReg { target: Reg::new(r) }),
        1 => Just(Instr::Nop),
    ]
    .prop_map(|instr| EventRecord::instr(Rid(0), instr))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chopping one wire stream at arbitrary points and feeding the pieces
    /// must reproduce the batch decode exactly.
    #[test]
    fn incremental_decode_is_split_point_oblivious(
        recs in proptest::collection::vec(record_strategy(), 1..120),
        cuts in proptest::collection::vec(0usize..4096, 0..24),
        arc_every in 3usize..9,
    ) {
        // Re-rid sequentially (the codec reconstructs rids from positions)
        // and sprinkle arcs so flag paths are exercised.
        let mut recs = recs;
        for (i, rec) in recs.iter_mut().enumerate() {
            rec.rid = Rid(i as u64 + 1);
            if i % arc_every == 0 {
                rec.arcs.push(DependenceArc::new(
                    ThreadId((i % 3) as u16),
                    Rid((i / 2) as u64 + 1),
                    ArcKind::Raw,
                ));
            }
        }
        let bytes = encode(&recs);
        let batch = paralog::events::codec::decode(&bytes).expect("valid stream");

        // Split points: sorted, deduped offsets into the byte stream.
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % bytes.len().max(1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut sd = StreamDecoder::new();
        let mut out = Vec::new();
        let mut prev = 0usize;
        for p in points.into_iter().chain(std::iter::once(bytes.len())) {
            sd.feed(&bytes[prev..p]);
            prev = p;
            while let Some(rec) = sd.next_record().expect("valid stream") {
                out.push(rec);
            }
        }
        prop_assert_eq!(&out, &batch);
        prop_assert!(sd.is_clean());
        prop_assert_eq!(out, recs);
    }
}
