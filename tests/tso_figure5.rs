//! TSO support (§5.5): the Figure 5 scenario and the versioned-metadata
//! protocol's invariants.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::events::{AddrRange, Instr, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};

/// Builds the Figure 5 Dekker pattern: each thread writes its own flag
/// (clean) and reads the other's (previously tainted), with `pad` spacer
/// instructions controlling how the stores sit in the store buffers.
fn dekker(pad: usize) -> Workload {
    let a = MemRef::new(0x2000_0000, 8);
    let b = MemRef::new(0x2000_0100, 8);
    let side = |mine: MemRef, theirs: MemRef, buf: AddrRange| {
        let mut ops = vec![Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        }];
        for _ in 0..pad {
            ops.push(Op::Instr(Instr::Nop));
        }
        ops.push(Op::Instr(Instr::MovRI { dst: Reg(0) }));
        ops.push(Op::Instr(Instr::Store {
            dst: mine,
            src: Reg(0),
        })); // Wr(mine)
        ops.push(Op::Instr(Instr::Load {
            dst: Reg(1),
            src: theirs,
        })); // Rd(theirs)
             // Make the observed taint part of the final metadata state.
        ops.push(Op::Instr(Instr::Store {
            dst: MemRef::new(mine.addr + 0x40, 8),
            src: Reg(1),
        }));
        ops
    };
    Workload {
        name: "figure5".into(),
        benchmark: None,
        threads: vec![
            side(a, b, AddrRange::new(a.addr, 8)),
            side(b, a, AddrRange::new(b.addr, 8)),
        ],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    }
}

#[test]
fn figure5_versions_keep_lifeguards_accurate() {
    let mut any_versions = 0;
    for pad in [0usize, 1, 2, 3, 5, 8] {
        let w = dekker(pad);
        let m = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_tso()
                .with_equivalence_check(),
        )
        .metrics;
        assert!(m.matches_reference(), "pad={pad}: TSO metadata diverged");
        assert_eq!(
            m.versions_produced, m.versions_consumed,
            "pad={pad}: every produced version must be consumed"
        );
        any_versions += m.versions_produced;
    }
    assert!(
        any_versions > 0,
        "at least one timing must manifest the SC violation and use versioning"
    );
}

#[test]
fn figure5_under_sc_needs_no_versions() {
    let w = dekker(2);
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_equivalence_check(),
    )
    .metrics;
    assert!(m.matches_reference());
    assert_eq!(m.versions_produced, 0, "SC machines never version metadata");
}

#[test]
fn tso_store_buffers_actually_buffer() {
    // TSO shifts some execution cost around (store latency hidden, drains
    // later); the run must still complete, stay correct, and record
    // pending-store effects in the metrics.
    let w = WorkloadSpec::benchmark(Benchmark::Ocean, 4)
        .scale(0.1)
        .build();
    let sc = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_equivalence_check(),
    )
    .metrics;
    let tso = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_tso()
            .with_equivalence_check(),
    )
    .metrics;
    assert!(sc.matches_reference());
    assert!(tso.matches_reference());
    // Same analysis, same workload: identical final metadata across models.
    assert_eq!(
        sc.fingerprint, tso.fingerprint,
        "final taint state is model-independent here"
    );
}

#[test]
fn tso_version_protocol_under_contention() {
    // Heavy same-block write sharing between two threads maximizes WAR
    // reversal opportunities; the protocol must hold up.
    let hot = 0x2000_0000u64;
    let buf = AddrRange::new(0x2100_0000, 8);
    let hammer = |seed: u64| {
        let mut ops = vec![Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        }];
        ops.push(Op::Instr(Instr::Load {
            dst: Reg(2),
            src: MemRef::new(buf.start, 4),
        }));
        for i in 0..200u64 {
            let addr = hot + ((seed + i) % 8) * 8;
            if i % 3 == 0 {
                ops.push(Op::Instr(Instr::Store {
                    dst: MemRef::new(addr, 8),
                    src: Reg(2),
                }));
            } else {
                ops.push(Op::Instr(Instr::Load {
                    dst: Reg(1),
                    src: MemRef::new(addr, 8),
                }));
            }
        }
        ops
    };
    let w = Workload {
        name: "tso-contention".into(),
        benchmark: None,
        threads: vec![hammer(0), hammer(3)],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    };
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_tso()
            .with_equivalence_check(),
    )
    .metrics;
    assert!(m.matches_reference(), "contended TSO run diverged");
    assert_eq!(m.versions_produced, m.versions_consumed);
}
