//! Property test for the flat two-level shadow memory: random interleavings
//! of `get`/`set`/`join_range`/`set_range`/`copy_range`/`eq_range`/
//! `snapshot`/`restore` must agree with a naive `BTreeMap<Addr, u8>`
//! reference model, for every supported metadata width.
//!
//! The model applies `copy_range` byte-wise in ascending order — exactly the
//! semantics the word-wise implementation must preserve (including the
//! deliberate smearing on overlapping forward copies).

use paralog::events::AddrRange;
use paralog::meta::{ShadowMemory, CHUNK_APP_BYTES};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Address domain spanning several chunks, hugging chunk boundaries so the
/// head/tail mask and chunk-split paths all fire.
const SPAN: u64 = CHUNK_APP_BYTES * 3 + 128;

#[derive(Debug, Clone, Copy)]
enum ShadowOp {
    Set { addr: u64, value: u8 },
    SetRange { start: u64, len: u64, value: u8 },
    Get { addr: u64 },
    JoinRange { start: u64, len: u64 },
    EqRange { start: u64, len: u64, value: u8 },
    CopyRange { dst: u64, src: u64, len: u64 },
    SnapshotRestore { start: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = ShadowOp> {
    let addr = || 0u64..SPAN;
    let len = || {
        prop_oneof![
            4 => 1u64..16,
            2 => 16u64..256,
            1 => 256u64..8192,
        ]
    };
    prop_oneof![
        3 => (addr(), 0u8..=255).prop_map(|(addr, value)| ShadowOp::Set { addr, value }),
        3 => (addr(), len(), 0u8..=255)
            .prop_map(|(start, len, value)| ShadowOp::SetRange { start, len, value }),
        2 => addr().prop_map(|addr| ShadowOp::Get { addr }),
        2 => (addr(), len()).prop_map(|(start, len)| ShadowOp::JoinRange { start, len }),
        1 => (addr(), len(), 0u8..=255)
            .prop_map(|(start, len, value)| ShadowOp::EqRange { start, len, value }),
        2 => (addr(), addr(), len())
            .prop_map(|(dst, src, len)| ShadowOp::CopyRange { dst, src, len }),
        1 => (addr(), len()).prop_map(|(start, len)| ShadowOp::SnapshotRestore { start, len }),
    ]
}

/// Reference model: absent key = clean (0).
#[derive(Debug, Default)]
struct Model {
    bytes: BTreeMap<u64, u8>,
}

impl Model {
    fn get(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    fn set(&mut self, addr: u64, v: u8) {
        if v == 0 {
            self.bytes.remove(&addr);
        } else {
            self.bytes.insert(addr, v);
        }
    }

    fn join(&self, start: u64, len: u64) -> u8 {
        (start..start + len).fold(0, |a, addr| a | self.get(addr))
    }
}

fn run_ops(bits: u32, ops: &[ShadowOp]) -> Result<(), TestCaseError> {
    let mut shadow = ShadowMemory::new(bits);
    let mut model = Model::default();
    let max = shadow.max_value();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ShadowOp::Set { addr, value } => {
                let v = value & max;
                shadow.set(addr, v);
                model.set(addr, v);
            }
            ShadowOp::SetRange { start, len, value } => {
                let v = value & max;
                shadow.set_range(AddrRange::new(start, len), v);
                for a in start..start + len {
                    model.set(a, v);
                }
            }
            ShadowOp::Get { addr } => {
                prop_assert_eq!(shadow.get(addr), model.get(addr), "bits={} op#{}", bits, i);
            }
            ShadowOp::JoinRange { start, len } => {
                prop_assert_eq!(
                    shadow.join_range(AddrRange::new(start, len)),
                    model.join(start, len),
                    "bits={} op#{}",
                    bits,
                    i
                );
            }
            ShadowOp::EqRange { start, len, value } => {
                let v = value & max;
                let expect = (start..start + len).all(|a| model.get(a) == v);
                prop_assert_eq!(
                    shadow.eq_range(AddrRange::new(start, len), v),
                    expect,
                    "bits={} op#{}",
                    bits,
                    i
                );
            }
            ShadowOp::CopyRange { dst, src, len } => {
                shadow.copy_range(dst, src, len);
                // Ascending byte-wise copy — the defined semantics, which
                // smears on forward-overlapping ranges.
                for k in 0..len {
                    let v = model.get(src + k);
                    model.set(dst + k, v);
                }
            }
            ShadowOp::SnapshotRestore { start, len } => {
                let range = AddrRange::new(start, len);
                let snap = shadow.snapshot(range);
                prop_assert_eq!(snap.len() as u64, len);
                for (k, &v) in snap.iter().enumerate() {
                    prop_assert_eq!(v, model.get(start + k as u64), "snapshot bits={bits}");
                }
                // Scramble, then restore must reproduce the model exactly.
                shadow.set_range(range, max);
                shadow.restore(range, &snap);
                for k in 0..len {
                    prop_assert_eq!(
                        shadow.get(start + k),
                        model.get(start + k),
                        "restore bits={} op#{}",
                        bits,
                        i
                    );
                }
            }
        }
    }
    // Final full-state agreement: every nonzero byte, in ascending order.
    let got: Vec<(u64, u8)> = shadow.iter_nonzero().collect();
    let want: Vec<(u64, u8)> = model.bytes.iter().map(|(&a, &v)| (a, v)).collect();
    prop_assert_eq!(got, want, "iter_nonzero bits={}", bits);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shadow_matches_btreemap_model(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        for bits in [1u32, 2, 4, 8] {
            run_ops(bits, &ops)?;
        }
    }

    #[test]
    fn boundary_heavy_ops_match_model(
        // Cluster addresses tightly around chunk boundaries.
        raw in proptest::collection::vec(
            (0u64..6, 0u64..64, 1u64..200, 0u8..=255, any::<bool>()),
            1..60,
        ),
    ) {
        let ops: Vec<ShadowOp> = raw
            .into_iter()
            .map(|(edge, off, len, value, fill)| {
                let start = (edge * CHUNK_APP_BYTES / 2 + off).saturating_sub(32);
                if fill {
                    ShadowOp::SetRange { start, len, value }
                } else {
                    ShadowOp::JoinRange { start, len }
                }
            })
            .collect();
        for bits in [1u32, 2, 4, 8] {
            run_ops(bits, &ops)?;
        }
    }
}
