//! Lock-free fast-path MemCheck & LockSet (§5.3): cross-backend parity and
//! the `LockedConcurrent` retirement.
//!
//! The tentpole invariants:
//!
//! * all four bundled `LifeguardKind`s now resolve to **hand-written
//!   lock-free concurrent forms** — nothing bundled pays the generic
//!   `LockedConcurrent` mutex anymore — while a custom factory still opts
//!   into the locked fallback with the documented one-liner (and stays
//!   sequential-only without one);
//! * `MemCheckConcurrent` and `LockSetConcurrent` replay SC and TSO
//!   captures on `ThreadedBackend` with fingerprints and violations
//!   identical to the deterministic backend — from the raw captured
//!   records and from the codec wire form;
//! * under genuine thread races (the nightly TSan job's target) the
//!   lock-free fast paths converge to the sequential analyses' metadata
//!   and never double-report.

use paralog::core::{
    DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode, Platform, ReplaySource,
    StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::events::{
    AddrRange, ArcKind, CaPhase, CaRecord, DependenceArc, EventRecord, HighLevelKind, Instr,
    LockId, MemRef, Op, Reg, Rid, ThreadId,
};
use paralog::lifeguards::{
    ConcurrentLifeguard, HandlerCtx, LifeguardFactory, LifeguardFamily, LifeguardKind,
    LockedConcurrent, Violation, ViolationKind,
};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};
use proptest::prelude::*;

const HEAP: AddrRange = AddrRange {
    start: 0x1000_0000,
    len: 0x1000_0000,
};

fn workload(bench: Benchmark, threads: usize) -> Workload {
    WorkloadSpec::benchmark(bench, threads).scale(0.05).build()
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

// ---------------------------------------------------------------------------
// LockedConcurrent retirement
// ---------------------------------------------------------------------------

/// Regression for the retirement: every bundled analysis resolves to its
/// hand-written lock-free concurrent form, not the generic mutex adapter.
#[test]
fn all_bundled_kinds_resolve_to_lock_free_concurrent_forms() {
    let expected = [
        (LifeguardKind::TaintCheck, "TaintConcurrent"),
        (LifeguardKind::AddrCheck, "AddrCheckConcurrent"),
        (LifeguardKind::MemCheck, "MemCheckConcurrent"),
        (LifeguardKind::LockSet, "LockSetConcurrent"),
        (LifeguardKind::HappensBefore, "HappensBeforeConcurrent"),
    ];
    for (kind, form) in expected {
        let conc = kind.concurrent(HEAP, 2).expect("bundled kinds replay");
        let dbg = format!("{conc:?}");
        assert!(
            dbg.contains(form),
            "{kind} should resolve to {form}, got {dbg}"
        );
        assert!(
            !dbg.contains("LockedConcurrent"),
            "{kind} still pays the retired locked fallback: {dbg}"
        );
    }
}

/// A custom factory keeps the documented behaviour: no override means
/// sequential-only, and the one-line `LockedConcurrent` opt-in still wires
/// it onto `ThreadedBackend` correctly.
#[test]
fn custom_factories_still_fall_back_to_locked_concurrent() {
    #[derive(Debug)]
    struct NoOptIn;
    impl LifeguardFactory for NoOptIn {
        fn name(&self) -> &str {
            "NoOptIn"
        }
        fn build(&self, heap: AddrRange) -> LifeguardFamily {
            LifeguardKind::MemCheck.build(heap)
        }
    }
    assert!(
        NoOptIn.concurrent(HEAP, 2).is_none(),
        "without an override a custom analysis stays sequential-only"
    );

    #[derive(Debug)]
    struct OptIn;
    impl LifeguardFactory for OptIn {
        fn name(&self) -> &str {
            "OptIn"
        }
        fn build(&self, heap: AddrRange) -> LifeguardFamily {
            LifeguardKind::MemCheck.build(heap)
        }
        fn concurrent(
            &self,
            heap: AddrRange,
            threads: usize,
        ) -> Option<Box<dyn ConcurrentLifeguard>> {
            // SAFETY: this factory's families (MemCheck's) are
            // self-contained.
            Some(Box::new(unsafe {
                LockedConcurrent::new(self.build(heap), threads)
            }))
        }
    }
    let conc = OptIn.concurrent(HEAP, 2).expect("opted in");
    assert!(format!("{conc:?}").contains("LockedConcurrent"));

    // And the opted-in custom analysis actually runs on the real-thread
    // backend, agreeing with the deterministic one.
    let w = workload(Benchmark::Swaptions, 2);
    let det = MonitorSession::builder()
        .source(w.clone())
        .lifeguard_factory(OptIn)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let thr = MonitorSession::builder()
        .source(w)
        .lifeguard_factory(OptIn)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(det.metrics.fingerprint, thr.metrics.fingerprint);
    assert_eq!(
        violation_keys(&det.metrics.violations),
        violation_keys(&thr.metrics.violations)
    );
}

// ---------------------------------------------------------------------------
// SC capture parity (workload-driven, raw and codec wire form)
// ---------------------------------------------------------------------------

/// MemCheck and LockSet replay SC captures on `ThreadedBackend` with
/// fingerprints and violations identical to the deterministic backend —
/// from the live run, the raw collected streams, and the codec wire form.
#[test]
fn sc_captures_replay_identically_on_both_backends() {
    // Fluidanimate: fine-grained locking (LockSet's home turf); Swaptions:
    // malloc/free churn (MemCheck's structural slow path). HappensBefore
    // sees no sync-space traffic in these captures, so every cross-thread
    // conflicting pair races — the captured dependence arcs order those
    // pairs, which is exactly what makes its reports and poisoned metadata
    // backend-deterministic.
    for (kind, bench) in [
        (LifeguardKind::MemCheck, Benchmark::Swaptions),
        (LifeguardKind::MemCheck, Benchmark::Fluidanimate),
        (LifeguardKind::LockSet, Benchmark::Fluidanimate),
        (LifeguardKind::LockSet, Benchmark::Radiosity),
        (LifeguardKind::HappensBefore, Benchmark::Fluidanimate),
        (LifeguardKind::HappensBefore, Benchmark::Radiosity),
    ] {
        let w = workload(bench, 4);
        let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind);
        cfg.collect_streams = true;
        let live = Platform::run(&w, &cfg).metrics;
        let streams = live.streams.clone().expect("collection enabled");

        // Deterministic lifeguard-only ingestion of the raw capture.
        let det = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(kind)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            det.metrics.fingerprint, live.fingerprint,
            "{kind}/{bench}: ingestion diverged from the live run"
        );

        // Threaded replay of the raw capture (the new lock-free forms).
        let thr = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(kind)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            thr.metrics.fingerprint, det.metrics.fingerprint,
            "{kind}/{bench}: threaded replay diverged on final metadata"
        );
        assert_eq!(
            violation_keys(&thr.metrics.violations),
            violation_keys(&det.metrics.violations),
            "{kind}/{bench}: threaded replay diverged on violations"
        );

        // Threaded replay of the codec wire form, streamed in small chunks.
        let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
        let src = StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(256);
        let wire = MonitorSession::builder()
            .source(src)
            .lifeguard(kind)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            wire.metrics.fingerprint, det.metrics.fingerprint,
            "{kind}/{bench}: codec-decoded threaded replay diverged"
        );
        assert_eq!(
            violation_keys(&wire.metrics.violations),
            violation_keys(&det.metrics.violations),
            "{kind}/{bench}: codec-decoded violations diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// TSO capture parity (§5.5 versioned metadata through the new forms)
// ---------------------------------------------------------------------------

/// The Figure 5 Dekker pattern reshaped for MEMCHECK: each side mallocs its
/// own flag region (marking it undefined), defines its flag with a store,
/// then reads the other's flag — under TSO the read may consume the
/// producer's *pre-store* (still-undefined) version, which must flow into
/// the reader's downstream store identically on both backends.
fn dekker_memcheck(pad: usize) -> Workload {
    let a = MemRef::new(0x2000_0000, 8);
    let b = MemRef::new(0x2000_0100, 8);
    let side = |mine: MemRef, theirs: MemRef| {
        let mut ops = vec![Op::Malloc {
            range: AddrRange::new(mine.addr, 8),
        }];
        for _ in 0..pad {
            ops.push(Op::Instr(Instr::Nop));
        }
        ops.push(Op::Instr(Instr::MovRI { dst: Reg(0) }));
        ops.push(Op::Instr(Instr::Store {
            dst: mine,
            src: Reg(0),
        }));
        ops.push(Op::Instr(Instr::Load {
            dst: Reg(1),
            src: theirs,
        }));
        ops.push(Op::Instr(Instr::Store {
            dst: MemRef::new(mine.addr + 0x40, 8),
            src: Reg(1),
        }));
        ops
    };
    Workload {
        name: "figure5-memcheck".into(),
        benchmark: None,
        threads: vec![side(a, b), side(b, a)],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    }
}

/// Acceptance: a §5.5 versioned MEMCHECK stream replays on
/// `ThreadedBackend` with fingerprints and violations identical to
/// `DeterministicBackend` — raw capture and codec wire form.
#[test]
fn memcheck_tso_capture_replays_identically_on_both_backends() {
    let mut any_versions = 0u64;
    for pad in [0usize, 1, 2, 3, 5, 8] {
        let w = dekker_memcheck(pad);
        let mut cfg =
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::MemCheck).with_tso();
        cfg.collect_streams = true;
        let live = Platform::run(&w, &cfg).metrics;
        let streams = live.streams.clone().expect("collection enabled");
        any_versions += live.versions_produced;

        let det = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(LifeguardKind::MemCheck)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            det.metrics.fingerprint, live.fingerprint,
            "pad={pad}: deterministic ingestion diverged from the live run"
        );

        let thr = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(LifeguardKind::MemCheck)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            thr.metrics.fingerprint, det.metrics.fingerprint,
            "pad={pad}: threaded TSO replay diverged on final metadata"
        );
        assert_eq!(
            violation_keys(&thr.metrics.violations),
            violation_keys(&det.metrics.violations),
            "pad={pad}: threaded TSO replay diverged on violations"
        );
        assert_eq!(thr.metrics.versions_produced, live.versions_produced);
        assert_eq!(thr.metrics.versions_consumed, live.versions_consumed);

        let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
        let src = StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(64);
        let wire = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::MemCheck)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            wire.metrics.fingerprint, det.metrics.fingerprint,
            "pad={pad}: codec-decoded TSO replay diverged"
        );
    }
    assert!(
        any_versions > 0,
        "no pad manifested a store-buffer version; the §5.5 MemCheck path \
         went untested"
    );
}

/// TSO *workloads* replay end to end through the new forms on the
/// real-thread backend, reproducing their own deterministic capture
/// (LockSet keeps no byte shadow — its all-clean snapshots must still flow
/// through the produce/consume machinery without divergence).
#[test]
fn tso_workloads_replay_through_new_forms() {
    for (kind, bench) in [
        (LifeguardKind::MemCheck, Benchmark::Ocean),
        (LifeguardKind::LockSet, Benchmark::Fluidanimate),
        (LifeguardKind::HappensBefore, Benchmark::Fluidanimate),
    ] {
        let w = workload(bench, 4);
        let out = MonitorSession::builder()
            .source(w)
            .config(MonitorConfig::new(MonitoringMode::Parallel, kind).with_tso())
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            out.metrics.matches_reference(),
            "{kind}/{bench}: TSO threaded replay diverged from its capture"
        );
        assert_eq!(
            out.metrics.versions_produced, out.metrics.versions_consumed,
            "{kind}/{bench}: every produced version must find its consumer"
        );
    }
}

// ---------------------------------------------------------------------------
// Hand-built LockSet race capture: deterministic attribution via arcs
// ---------------------------------------------------------------------------

fn lock_ca(rid: u64, tid: u16, lock: u32, acquire: bool) -> EventRecord {
    EventRecord::ca(
        Rid(rid),
        CaRecord {
            what: if acquire {
                HighLevelKind::Lock(LockId(lock))
            } else {
                HighLevelKind::Unlock(LockId(lock))
            },
            phase: if acquire {
                CaPhase::End
            } else {
                CaPhase::Begin
            },
            range: None,
            issuer: ThreadId(tid),
            issuer_rid: Rid(rid),
            seq: u64::MAX,
        },
    )
}

fn store(rid: u64, addr: u64) -> EventRecord {
    EventRecord::instr(
        Rid(rid),
        Instr::Store {
            dst: MemRef::new(addr, 4),
            src: Reg(0),
        },
    )
}

/// A hand-built capture whose race report is attribution-deterministic
/// (the racing write carries a WAW arc to the prior write, so both
/// backends must deliver — and report — in the same order), replayed raw
/// and through the codec wire form.
#[test]
fn lockset_race_capture_agrees_across_backends() {
    let heap = AddrRange::new(0x1000_0000, 0x10000);
    let var = 0x200u64;
    let protected = 0x300u64;

    // Thread 0: lock-disciplined write to `protected`, bare write to `var`.
    let t0 = vec![
        lock_ca(1, 0, 7, true),
        store(2, protected),
        lock_ca(3, 0, 7, false),
        store(4, var),
    ];
    // Thread 1: same discipline on `protected` (ordered after T0's unlock
    // via a sync arc), then an unprotected write to `var` ordered after
    // T0's by its captured WAW arc — the access that empties the candidate
    // set and must report the race, on both backends.
    let mut t1_lock = lock_ca(1, 1, 7, true);
    t1_lock.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(3),
        kind: ArcKind::Sync,
    });
    let mut t1_prot = store(2, protected);
    t1_prot.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(2),
        kind: ArcKind::Waw,
    });
    let mut t1_race = store(4, var);
    t1_race.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(4),
        kind: ArcKind::Waw,
    });
    let t1 = vec![t1_lock, t1_prot, lock_ca(3, 1, 7, false), t1_race];

    let streams = vec![t0, t1];
    let run = |backend: bool, streams: Vec<Vec<EventRecord>>| {
        let builder = MonitorSession::builder()
            .source(ReplaySource::new(streams, heap))
            .lifeguard(LifeguardKind::LockSet);
        let builder = if backend {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        builder.build().unwrap().run().unwrap()
    };

    let det = run(false, streams.clone());
    assert_eq!(
        violation_keys(&det.metrics.violations),
        vec![(1, 4, ViolationKind::DataRace)],
        "the arc-ordered racing write reports, the disciplined one does not"
    );
    let thr = run(true, streams.clone());
    assert_eq!(thr.metrics.fingerprint, det.metrics.fingerprint);
    assert_eq!(
        violation_keys(&thr.metrics.violations),
        violation_keys(&det.metrics.violations)
    );

    // Codec wire form through the threaded backend.
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
    let wire = MonitorSession::builder()
        .source(StreamingReplaySource::from_encoded(encoded, heap).with_chunk_bytes(32))
        .lifeguard(LifeguardKind::LockSet)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(wire.metrics.fingerprint, det.metrics.fingerprint);
    assert_eq!(
        violation_keys(&wire.metrics.violations),
        violation_keys(&det.metrics.violations)
    );
}

// ---------------------------------------------------------------------------
// Hand-built HappensBefore captures: deterministic attribution via arcs
// ---------------------------------------------------------------------------

/// An atomic read-modify-write on a sync-space word — HappensBefore's
/// acquire shape (join the word's published vector clock, then republish).
fn sync_rmw(rid: u64, addr: u64) -> EventRecord {
    EventRecord::instr(
        Rid(rid),
        Instr::Rmw {
            mem: MemRef::new(addr, 8),
            reg: Reg(0),
        },
    )
}

/// A hand-built true-race capture for HAPPENSBEFORE. The lock hand-off
/// (sync-space Rmw/Store joined by a Sync arc) orders the protected writes,
/// so they stay silent; the bare writes to `var` carry no happens-before
/// edge, and the WAW arc to the prior write pins which access completes the
/// race — both backends must report it exactly once, at thread 1's write,
/// and converge on the poisoned (unknown-order) word state. Replayed raw
/// and through the codec wire form.
#[test]
fn happensbefore_race_capture_agrees_across_backends() {
    let heap = AddrRange::new(0x1000_0000, 0x10000);
    let lock = paralog::lifeguards::lockset::SYNC_SPACE_START;
    let protected = 0x300u64;
    let var = 0x200u64;

    // Thread 0: acquire, protected write, release, then a bare write.
    let t0 = vec![
        sync_rmw(1, lock),
        store(2, protected),
        store(3, lock),
        store(4, var),
    ];
    // Thread 1: the acquire is arc-ordered after T0's release, so its
    // vector-clock join covers T0's protected write. The bare write is
    // arc-ordered after T0's by its captured WAW arc but carries no
    // happens-before edge — the access that must report the race.
    let mut t1_acq = sync_rmw(1, lock);
    t1_acq.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(3),
        kind: ArcKind::Sync,
    });
    let mut t1_prot = store(2, protected);
    t1_prot.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(2),
        kind: ArcKind::Waw,
    });
    let mut t1_race = store(4, var);
    t1_race.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(4),
        kind: ArcKind::Waw,
    });
    let t1 = vec![t1_acq, t1_prot, store(3, lock), t1_race];

    let streams = vec![t0, t1];
    let run = |threaded: bool, streams: Vec<Vec<EventRecord>>| {
        let builder = MonitorSession::builder()
            .source(ReplaySource::new(streams, heap))
            .lifeguard(LifeguardKind::HappensBefore);
        let builder = if threaded {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        builder.build().unwrap().run().unwrap()
    };

    let det = run(false, streams.clone());
    assert_eq!(
        violation_keys(&det.metrics.violations),
        vec![(1, 4, ViolationKind::DataRace)],
        "the arc-ordered racing write reports exactly once, the \
         lock-disciplined writes stay silent"
    );
    let thr = run(true, streams.clone());
    assert_eq!(thr.metrics.fingerprint, det.metrics.fingerprint);
    assert_eq!(
        violation_keys(&thr.metrics.violations),
        violation_keys(&det.metrics.violations)
    );

    // Codec wire form through the threaded backend.
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
    let wire = MonitorSession::builder()
        .source(StreamingReplaySource::from_encoded(encoded, heap).with_chunk_bytes(32))
        .lifeguard(LifeguardKind::HappensBefore)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(wire.metrics.fingerprint, det.metrics.fingerprint);
    assert_eq!(
        violation_keys(&wire.metrics.violations),
        violation_keys(&det.metrics.violations)
    );
}

/// The race-free counterpart: every shared write rides the lock hand-off,
/// so HAPPENSBEFORE must stay silent on both backends with identical
/// final metadata.
#[test]
fn happensbefore_disciplined_capture_is_silent_on_both_backends() {
    let heap = AddrRange::new(0x1000_0000, 0x10000);
    let lock = paralog::lifeguards::lockset::SYNC_SPACE_START;
    let var = 0x200u64;

    let t0 = vec![sync_rmw(1, lock), store(2, var), store(3, lock)];
    let mut t1_acq = sync_rmw(1, lock);
    t1_acq.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(3),
        kind: ArcKind::Sync,
    });
    let mut t1_var = store(2, var);
    t1_var.arcs.push(DependenceArc {
        src: ThreadId(0),
        src_rid: Rid(2),
        kind: ArcKind::Waw,
    });
    let t1 = vec![t1_acq, t1_var, store(3, lock)];

    let streams = vec![t0, t1];
    let det = MonitorSession::builder()
        .source(ReplaySource::new(streams.clone(), heap))
        .lifeguard(LifeguardKind::HappensBefore)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        det.metrics.violations.is_empty(),
        "lock-disciplined hand-off must not race: {:?}",
        det.metrics.violations
    );
    let thr = MonitorSession::builder()
        .source(ReplaySource::new(streams, heap))
        .lifeguard(LifeguardKind::HappensBefore)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(thr.metrics.violations.is_empty());
    assert_eq!(thr.metrics.fingerprint, det.metrics.fingerprint);
}

// ---------------------------------------------------------------------------
// Racing-threads properties (the nightly TSan job races these)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MemCheck's lock-free fast path under genuine races: threads replay
    /// disjoint slabs (malloc → undefined, stores define, loads propagate)
    /// plus loads of a shared read-only region, on real threads. The final
    /// shadow must match the sequential family applied in any order, and
    /// no worker's propagation may leak into another slab.
    #[test]
    fn memcheck_racing_disjoint_slabs_match_sequential(
        threads in 2usize..5,
        blocks in 4u64..24,
    ) {
        let conc = LifeguardKind::MemCheck.concurrent(HEAP, threads).expect("lock-free form");
        let slab = |t: usize| HEAP.start + t as u64 * 0x1000;
        let stream = |t: usize| {
            let base = slab(t);
            let mut recs = vec![EventRecord::ca(
                Rid(1),
                CaRecord {
                    what: HighLevelKind::Malloc,
                    phase: CaPhase::End,
                    range: Some(AddrRange::new(base, blocks * 8)),
                    issuer: ThreadId(t as u16),
                    issuer_rid: Rid(1),
                    seq: u64::MAX,
                },
            )];
            let mut rid = 2u64;
            for b in 0..blocks {
                // Define even blocks; leave odd blocks undefined.
                if b % 2 == 0 {
                    recs.push(EventRecord::instr(Rid(rid), Instr::MovRI { dst: Reg(0) }));
                    rid += 1;
                    recs.push(EventRecord::instr(Rid(rid), Instr::Store {
                        dst: MemRef::new(base + b * 8, 8),
                        src: Reg(0),
                    }));
                    rid += 1;
                } else {
                    recs.push(EventRecord::instr(Rid(rid), Instr::Load {
                        dst: Reg(1),
                        src: MemRef::new(base + b * 8, 8),
                    }));
                    rid += 1;
                }
            }
            recs
        };
        let streams: Vec<Vec<EventRecord>> = (0..threads).map(stream).collect();
        std::thread::scope(|scope| {
            for (t, recs) in streams.iter().enumerate() {
                let conc = &*conc;
                scope.spawn(move || {
                    for rec in recs {
                        conc.apply(ThreadId(t as u16), rec, None);
                    }
                });
            }
        });
        // Sequential reference: the same records thread by thread.
        let family = LifeguardKind::MemCheck.build(HEAP);
        let mut lgs: Vec<_> = (0..threads)
            .map(|t| family.thread(ThreadId(t as u16)))
            .collect();
        for (t, recs) in streams.iter().enumerate() {
            for rec in recs {
                let mut ctx = HandlerCtx::new();
                match &rec.payload {
                    paralog::events::EventPayload::Instr(instr) => {
                        if let Some(op) = paralog::events::dataflow_view(instr) {
                            lgs[t].handle(&op, rec.rid, &mut ctx);
                        }
                    }
                    paralog::events::EventPayload::Ca(ca) => {
                        lgs[t].handle_ca(ca, ca.issuer == ThreadId(t as u16), rec.rid, &mut ctx);
                    }
                }
            }
        }
        prop_assert_eq!(conc.fingerprint(), lgs[0].fingerprint(),
            "racing disjoint-slab replay must converge to the sequential shadow");
        prop_assert!(conc.violations().is_empty());
    }

    /// LockSet's CAS fast path under genuine races: every thread holds the
    /// same lock mask and writes every shared word, so the per-word
    /// transitions are confluent — the final state must match the
    /// sequential family, and an empty mask must yield *exactly one*
    /// DataRace per word no matter how many writers race the report.
    #[test]
    fn lockset_racing_writers_converge_and_report_once(
        threads in 2usize..5,
        words in 1u64..12,
        lock_choice in 0u32..64,
    ) {
        // The offline proptest shim has no `option` module; 0 encodes "no
        // lock held" (the racing case), anything else a shared lock id.
        let lock_mask: Option<u32> = (lock_choice != 0).then_some(lock_choice - 1);
        let conc = LifeguardKind::LockSet.concurrent(HEAP, threads).expect("lock-free form");
        let stream = |t: usize| {
            let mut recs = Vec::new();
            let mut rid = 1u64;
            if let Some(lock) = lock_mask {
                recs.push(lock_ca(rid, t as u16, lock, true));
                rid += 1;
            }
            for w in 0..words {
                recs.push(store(rid, 0x4000 + w * 4));
                rid += 1;
            }
            // A second pass so every thread contributes its held set to the
            // candidate intersection regardless of interleaving.
            for w in 0..words {
                recs.push(store(rid, 0x4000 + w * 4));
                rid += 1;
            }
            recs
        };
        let streams: Vec<Vec<EventRecord>> = (0..threads).map(stream).collect();
        std::thread::scope(|scope| {
            for (t, recs) in streams.iter().enumerate() {
                let conc = &*conc;
                scope.spawn(move || {
                    for rec in recs {
                        conc.apply(ThreadId(t as u16), rec, None);
                    }
                });
            }
        });
        let races = u64::from(lock_mask.is_none()) * words;
        prop_assert_eq!(conc.violations().len() as u64, races,
            "exactly one report per unprotected word, none when locked");
        // Sequential reference: same streams, thread by thread.
        let family = LifeguardKind::LockSet.build(HEAP);
        let mut lgs: Vec<_> = (0..threads)
            .map(|t| family.thread(ThreadId(t as u16)))
            .collect();
        let mut seq_violations = 0usize;
        for (t, recs) in streams.iter().enumerate() {
            for rec in recs {
                let mut ctx = HandlerCtx::new();
                match &rec.payload {
                    paralog::events::EventPayload::Instr(instr) => {
                        if let Some(op) = paralog::events::check_view(instr) {
                            lgs[t].handle(&op, rec.rid, &mut ctx);
                        }
                    }
                    paralog::events::EventPayload::Ca(ca) => {
                        lgs[t].handle_ca(ca, ca.issuer == ThreadId(t as u16), rec.rid, &mut ctx);
                    }
                }
                seq_violations += ctx.violations.len();
            }
        }
        prop_assert_eq!(seq_violations as u64, races);
        prop_assert_eq!(conc.fingerprint(), lgs[0].fingerprint(),
            "racing same-mask writers must converge to the sequential state");
    }

    /// HappensBefore's CAS fast path under genuine races: every thread
    /// writes every shared word with no sync-space traffic, so every word
    /// is a true race. Poison-on-race makes the outcome schedule-free: each
    /// word must report *exactly once* no matter how many writers race the
    /// report, and the final metadata must converge to the sequential
    /// family's poisoned state.
    #[test]
    fn happensbefore_racing_writers_poison_and_report_once(
        threads in 2usize..5,
        words in 1u64..12,
    ) {
        let conc = LifeguardKind::HappensBefore
            .concurrent(HEAP, threads)
            .expect("lock-free form");
        let stream = |_t: usize| {
            let mut recs = Vec::new();
            let mut rid = 1u64;
            // Two passes so later writers keep hammering already-poisoned
            // words — the exactly-once latch is what's under test.
            for _pass in 0..2 {
                for w in 0..words {
                    recs.push(store(rid, 0x4000 + w * 4));
                    rid += 1;
                }
            }
            recs
        };
        let streams: Vec<Vec<EventRecord>> = (0..threads).map(stream).collect();
        std::thread::scope(|scope| {
            for (t, recs) in streams.iter().enumerate() {
                let conc = &*conc;
                scope.spawn(move || {
                    for rec in recs {
                        conc.apply(ThreadId(t as u16), rec, None);
                    }
                });
            }
        });
        prop_assert_eq!(conc.violations().len() as u64, words,
            "exactly one DataRace per racing word, however many writers race the report");
        // Sequential reference: same streams, thread by thread.
        let family = LifeguardKind::HappensBefore.build(HEAP);
        let mut lgs: Vec<_> = (0..threads)
            .map(|t| family.thread(ThreadId(t as u16)))
            .collect();
        let mut seq_violations = 0usize;
        for (t, recs) in streams.iter().enumerate() {
            for rec in recs {
                let mut ctx = HandlerCtx::new();
                if let paralog::events::EventPayload::Instr(instr) = &rec.payload {
                    if let Some(op) = paralog::events::check_view(instr) {
                        lgs[t].handle(&op, rec.rid, &mut ctx);
                    }
                }
                seq_violations += ctx.violations.len();
            }
        }
        prop_assert_eq!(seq_violations as u64, words);
        prop_assert_eq!(conc.fingerprint(), lgs[0].fingerprint(),
            "racing writers must converge to the sequential poisoned state");
    }
}
