//! The evaluation's qualitative *shapes* as assertions (EXPERIMENTS.md):
//! who wins, in which direction, and where the bottlenecks sit. These run at
//! reduced scale so the whole file stays fast, but every relation asserted
//! here also holds in the full-scale figure outputs.

use paralog::core::experiment::{figure6, figure7, figure8};
use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

const SCALE: f64 = 0.08;

#[test]
fn parallel_beats_timesliced_everywhere_above_one_thread() {
    for kind in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        for bench in [Benchmark::Barnes, Benchmark::Lu, Benchmark::Swaptions] {
            let cells = figure6(kind, &[bench], SCALE);
            for c in cells.iter().filter(|c| c.threads >= 2) {
                assert!(
                    c.parallel < c.timesliced,
                    "{kind} {bench} k={}: parallel ({}) must beat timesliced ({})",
                    c.threads,
                    c.parallel,
                    c.timesliced
                );
            }
        }
    }
}

#[test]
fn timesliced_gap_grows_with_thread_count() {
    let cells = figure6(LifeguardKind::TaintCheck, &[Benchmark::Blackscholes], SCALE);
    let spdup: Vec<f64> = cells.iter().map(|c| c.parallel_speedup()).collect();
    assert!(
        spdup.windows(2).all(|w| w[1] > w[0] * 0.9),
        "speedup over timeslicing must grow (roughly) with threads: {spdup:?}"
    );
    assert!(
        spdup.last().unwrap() > &3.0,
        "8-thread gap must be substantial"
    );
}

#[test]
fn addrcheck_is_cheaper_than_taintcheck() {
    for bench in [Benchmark::Lu, Benchmark::Barnes, Benchmark::Fmm] {
        let w = WorkloadSpec::benchmark(bench, 4).scale(SCALE).build();
        let taint = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
        );
        let addr = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
        );
        assert!(
            addr.metrics.execution_cycles() <= taint.metrics.execution_cycles(),
            "{bench}: AddrCheck must not exceed TaintCheck"
        );
    }
}

#[test]
fn accelerators_help_both_lifeguards_with_taint_gaining_more() {
    let taint = figure8(LifeguardKind::TaintCheck, &[Benchmark::Barnes], SCALE);
    let addr = figure8(LifeguardKind::AddrCheck, &[Benchmark::Barnes], SCALE);
    assert!(
        taint[0].accelerator_speedup() > 1.2,
        "IT must pay off on BARNES"
    );
    assert!(addr[0].accelerator_speedup() > 1.0, "IF/M-TLB must pay off");
    assert!(
        taint[0].accelerator_speedup() > addr[0].accelerator_speedup(),
        "the paper's 2-9X (taint) vs 1.13-3.4X (addr) ordering"
    );
}

#[test]
fn limited_capture_sits_between_none_and_aggressive() {
    // Figure 8's middle bar: per-core capture costs something relative to
    // per-block + transitive reduction, but far less than no accelerators.
    let groups = figure8(LifeguardKind::TaintCheck, &[Benchmark::Barnes], SCALE);
    let g = &groups[0];
    assert!(g.accelerated_limited >= g.accelerated_aggressive * 0.95);
    assert!(g.accelerated_limited <= g.not_accelerated);
}

#[test]
fn swaptions_dependence_waits_dominate_for_addrcheck() {
    // §7: SWAPTIONS' malloc/free ConflictAlert barriers are the bottleneck.
    let bars = figure7(
        LifeguardKind::AddrCheck,
        &[Benchmark::Swaptions, Benchmark::Lu],
        SCALE,
    );
    let swap8 = bars
        .iter()
        .find(|b| b.benchmark == Benchmark::Swaptions && b.threads == 8)
        .expect("swaptions k=8");
    let lu8 = bars
        .iter()
        .find(|b| b.benchmark == Benchmark::Lu && b.threads == 8)
        .expect("lu k=8");
    assert!(
        swap8.wait_dependence_fraction > lu8.wait_dependence_fraction,
        "swaptions ({:.2}) must out-wait LU ({:.2}) on dependences",
        swap8.wait_dependence_fraction,
        lu8.wait_dependence_fraction
    );
}

#[test]
fn addrcheck_is_cheap_and_dependence_free_on_clean_benchmarks() {
    // §7's qualitative point: allocation-free benchmarks barely burden
    // ADDRCHECK. In our calibration the lifeguard stays busier than the
    // paper's (its per-check cost is closer to the application's CPI), but
    // the observable shape holds: small slowdown and negligible
    // dependence-wait time.
    let bars = figure7(LifeguardKind::AddrCheck, &[Benchmark::Blackscholes], SCALE);
    let k8 = bars.iter().find(|b| b.threads == 8).expect("k=8");
    assert!(
        k8.slowdown < 1.6,
        "AddrCheck on BLACKSCHOLES must stay cheap, got {:.2}x",
        k8.slowdown
    );
    assert!(
        k8.wait_dependence_fraction < 0.15,
        "no allocation churn means no CA-barrier waits, got {:.2}",
        k8.wait_dependence_fraction
    );
}

#[test]
fn single_thread_overheads_land_in_the_paper_band() {
    // Paper: accelerated single-threaded monitoring costs 1.02-1.5X; allow a
    // modest margin for our substrate's different constants.
    for bench in [Benchmark::Lu, Benchmark::Swaptions] {
        let w = WorkloadSpec::benchmark(bench, 1).scale(0.3).build();
        let base = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::None, LifeguardKind::AddrCheck),
        );
        let addr = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
        );
        let slowdown = addr.metrics.slowdown_vs(base.metrics.execution_cycles());
        assert!(
            slowdown < 1.6,
            "{bench}: 1-thread accelerated AddrCheck at {slowdown:.2}X"
        );
    }
}

#[test]
fn memcheck_and_lockset_run_the_full_pipeline() {
    // The two qualitative lifeguards also execute end-to-end on a sharing
    // and allocation heavy benchmark.
    let w = WorkloadSpec::benchmark(Benchmark::Radiosity, 4)
        .scale(SCALE)
        .build();
    for kind in [LifeguardKind::MemCheck, LifeguardKind::LockSet] {
        let out = Platform::run(&w, &MonitorConfig::new(MonitoringMode::Parallel, kind));
        assert!(out.metrics.execution_cycles() > 0);
        assert!(out.metrics.delivered_ops > 0, "{kind} must see events");
    }
}
