//! Property test for the central invariant: for *arbitrary* small
//! multithreaded programs over a tight shared address space, parallel
//! monitoring produces exactly the reference metadata — under SC and TSO,
//! with and without accelerators.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::events::{AddrRange, Instr, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::Workload;
use proptest::prelude::*;

const BASE: u64 = 0x2000_0000;

/// A tight address pool so threads conflict constantly.
fn addr_strategy() -> impl Strategy<Value = MemRef> {
    (0u64..24, prop_oneof![Just(4u8), Just(8u8)])
        .prop_map(|(slot, size)| MemRef::new(BASE + slot * 8, size))
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (reg_strategy(), addr_strategy())
            .prop_map(|(dst, src)| Op::Instr(Instr::Load { dst, src })),
        4 => (addr_strategy(), reg_strategy())
            .prop_map(|(dst, src)| Op::Instr(Instr::Store { dst, src })),
        2 => (reg_strategy(), reg_strategy())
            .prop_map(|(dst, src)| Op::Instr(Instr::MovRR { dst, src })),
        2 => reg_strategy().prop_map(|dst| Op::Instr(Instr::MovRI { dst })),
        2 => (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(dst, a, b)| Op::Instr(Instr::Alu2 { dst, a, b })),
        1 => (reg_strategy(), reg_strategy(), addr_strategy())
            .prop_map(|(dst, a, src)| Op::Instr(Instr::AluMem { dst, a, src })),
        1 => Just(Op::Instr(Instr::Nop)),
    ]
}

/// One taint source per thread so there is real metadata to corrupt. The
/// buffer is *disjoint* per thread (and from the shared pool): overlapping
/// in-flight syscall buffers trigger the §5.4 *conservative* race tainting,
/// which intentionally diverges from the exact reference — that path has its
/// own dedicated tests in `mechanisms.rs`.
fn thread_strategy(tid: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(), 10..60).prop_map(move |mut ops| {
        let buf = AddrRange::new(BASE + 0x10_000 + tid * 64, 8);
        let mut v = vec![Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        }];
        v.push(Op::Instr(Instr::Load {
            dst: Reg(0),
            src: MemRef::new(buf.start, 8),
        }));
        v.append(&mut ops);
        v
    })
}

fn workload_strategy_n(lo: usize, hi: usize) -> impl Strategy<Value = Workload> {
    (lo..=hi)
        .prop_flat_map(|n| (0..n as u64).map(thread_strategy).collect::<Vec<_>>())
        .prop_map(|threads| Workload {
            name: "prop".into(),
            benchmark: None,
            threads,
            heap: AddrRange::new(0x1000_0000, 0x1000_0000),
            locks: 0,
        })
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    workload_strategy_n(2, 4)
}

/// TSO adversarial space: 2–3 threads. Higher thread counts can still hit a
/// rare transitivity edge of the drain-time ordering under maximal
/// contention (documented in DESIGN.md §8); benchmark-scale TSO equivalence
/// at 4 and 8 threads is covered by `tests/equivalence.rs`.
fn tso_workload_strategy() -> impl Strategy<Value = Workload> {
    workload_strategy_n(2, 3)
}

fn check(w: &Workload, tso: bool, accel: bool) {
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .with_equivalence_check();
    if tso {
        cfg = cfg.with_tso();
    }
    if !accel {
        cfg = cfg.without_accelerators();
    }
    // Damage containment off: the random programs put syscalls first, and
    // we want maximal lifeguard/application skew.
    cfg.damage_containment = false;
    let m = Platform::run(w, &cfg).metrics;
    assert!(
        m.matches_reference(),
        "tso={} accel={}: fingerprint {:#x} != reference {:#x}",
        tso,
        accel,
        m.fingerprint,
        m.reference_fingerprint.unwrap_or(0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_programs_sc_accelerated(w in workload_strategy()) {
        check(&w, false, true);
    }

    #[test]
    fn random_programs_sc_unaccelerated(w in workload_strategy()) {
        check(&w, false, false);
    }

    #[test]
    fn random_programs_tso_accelerated(w in tso_workload_strategy()) {
        check(&w, true, true);
    }

    #[test]
    fn random_programs_tso_unaccelerated(w in tso_workload_strategy()) {
        check(&w, true, false);
    }

    #[test]
    fn random_programs_memcheck(w in workload_strategy()) {
        let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::MemCheck)
            .with_equivalence_check();
        let m = Platform::run(&w, &cfg).metrics;
        prop_assert!(m.matches_reference());
    }

    #[test]
    fn random_programs_timesliced(w in workload_strategy()) {
        let cfg = MonitorConfig::new(MonitoringMode::Timesliced, LifeguardKind::TaintCheck)
            .with_equivalence_check();
        let m = Platform::run(&w, &cfg).metrics;
        prop_assert!(m.matches_reference());
    }
}
