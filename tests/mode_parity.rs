//! Cross-mode replay parity: delta-merge vs. CAS-per-access (the tentpole
//! invariant).
//!
//! A backend running in [`BackendMode::DeltaMerge`] buffers each worker's
//! metadata writes in private overlays and publishes them only at
//! dependence-arc and sync boundaries. The contract is that this is purely
//! a *publication-cadence* change: fingerprints and violations must come
//! out **bit-identical** to CAS-per-access replay. This suite pins that
//! contract down:
//!
//! * every bundled lifeguard, replaying SC captures on `ThreadedBackend`
//!   in both modes — from the live capture, the raw record streams, and
//!   the codec wire form;
//! * §5.5 TSO captures (versioned metadata flowing through produce/consume
//!   points) through both modes;
//! * the cooperative (`CoopSession`) lane state machine in both modes;
//! * racing private-slab writers (proptest): arbitrary per-thread streams
//!   replayed on real OS threads with arbitrary flush cadences — the
//!   schedule-independence half of the contract (the nightly TSan job runs
//!   this file instrumented);
//! * the explicit-mode error path: `DeltaMerge` on a factory without a
//!   delta form is `SessionError::Unsupported`, on both backends.

use paralog::core::{
    BackendMode, CoopSession, DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode,
    Platform, RecordStream, ReplaySource, SessionError, StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::events::{
    AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, LockId, MemRef, Op, Reg, Rid,
    SyscallKind, ThreadId,
};
use paralog::lifeguards::{
    ConcurrentLifeguard, DeltaLifeguard, LifeguardFactory, LifeguardFamily, LifeguardKind,
    Violation, ViolationKind,
};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};
use proptest::prelude::*;

const HEAP: AddrRange = AddrRange {
    start: 0x1000_0000,
    len: 0x1000_0000,
};

fn workload(bench: Benchmark, threads: usize) -> Workload {
    WorkloadSpec::benchmark(bench, threads).scale(0.05).build()
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

/// Captures `bench` under `kind` and returns (streams, live fingerprint).
fn capture(kind: LifeguardKind, w: &Workload, tso: bool) -> (Vec<Vec<EventRecord>>, u64) {
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind);
    if tso {
        cfg = cfg.with_tso();
    }
    cfg.collect_streams = true;
    let live = Platform::run(w, &cfg).metrics;
    (live.streams.expect("collection enabled"), live.fingerprint)
}

/// Replays `streams` on `ThreadedBackend` in `mode`.
fn threaded(
    kind: LifeguardKind,
    streams: Vec<Vec<EventRecord>>,
    heap: AddrRange,
    mode: BackendMode,
) -> paralog::core::RunMetrics {
    MonitorSession::builder()
        .source(ReplaySource::new(streams, heap))
        .lifeguard(kind)
        .backend(ThreadedBackend)
        .backend_mode(mode)
        .build()
        .expect("session builds")
        .run()
        .expect("replay succeeds")
        .metrics
}

// ---------------------------------------------------------------------------
// SC captures: threaded backend, both modes, raw and wire form
// ---------------------------------------------------------------------------

/// All five bundled lifeguards replay SC captures in delta-merge mode with
/// fingerprints and violations identical to CAS-per-access and to the
/// deterministic backend — from the raw capture and from the codec wire
/// form.
#[test]
fn sc_captures_replay_identically_across_modes() {
    for (kind, bench) in [
        (LifeguardKind::TaintCheck, Benchmark::Swaptions),
        (LifeguardKind::AddrCheck, Benchmark::Swaptions),
        (LifeguardKind::MemCheck, Benchmark::Fluidanimate),
        (LifeguardKind::LockSet, Benchmark::Fluidanimate),
        (LifeguardKind::HappensBefore, Benchmark::Fluidanimate),
    ] {
        let w = workload(bench, 4);
        let (streams, live_fp) = capture(kind, &w, false);

        let det = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(kind)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .metrics;
        assert_eq!(
            det.fingerprint, live_fp,
            "{kind}/{bench}: ingestion diverged from the live run"
        );

        let cas = threaded(kind, streams.clone(), w.heap, BackendMode::CasPerAccess);
        let delta = threaded(kind, streams.clone(), w.heap, BackendMode::DeltaMerge);
        assert_eq!(
            delta.fingerprint, cas.fingerprint,
            "{kind}/{bench}: modes diverged on final metadata"
        );
        assert_eq!(
            cas.fingerprint, det.fingerprint,
            "{kind}/{bench}: threaded replay diverged from deterministic"
        );
        assert_eq!(
            violation_keys(&delta.violations),
            violation_keys(&cas.violations),
            "{kind}/{bench}: modes diverged on violations"
        );

        // Delta-merge over the codec wire form, streamed in small chunks.
        let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
        let src = StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(256);
        let wire = MonitorSession::builder()
            .source(src)
            .lifeguard(kind)
            .backend(ThreadedBackend)
            .backend_mode(BackendMode::DeltaMerge)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .metrics;
        assert_eq!(
            wire.fingerprint, det.fingerprint,
            "{kind}/{bench}: codec-decoded delta-merge replay diverged"
        );
        assert_eq!(
            violation_keys(&wire.violations),
            violation_keys(&det.violations),
            "{kind}/{bench}: codec-decoded violations diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// TSO captures: §5.5 versioned metadata through both modes
// ---------------------------------------------------------------------------

/// The Figure 5 Dekker pattern under MEMCHECK (each side mallocs its flag
/// region, defines its own flag, reads the other's — under TSO the read may
/// consume the producer's pre-store, still-undefined version).
fn dekker_memcheck(pad: usize) -> Workload {
    let a = MemRef::new(0x2000_0000, 8);
    let b = MemRef::new(0x2000_0100, 8);
    let side = |mine: MemRef, theirs: MemRef| {
        let mut ops = vec![Op::Malloc {
            range: AddrRange::new(mine.addr, 8),
        }];
        for _ in 0..pad {
            ops.push(Op::Instr(Instr::Nop));
        }
        ops.push(Op::Instr(Instr::MovRI { dst: Reg(0) }));
        ops.push(Op::Instr(Instr::Store {
            dst: mine,
            src: Reg(0),
        }));
        ops.push(Op::Instr(Instr::Load {
            dst: Reg(1),
            src: theirs,
        }));
        ops.push(Op::Instr(Instr::Store {
            dst: MemRef::new(mine.addr + 0x40, 8),
            src: Reg(1),
        }));
        ops
    };
    Workload {
        name: "figure5-memcheck".into(),
        benchmark: None,
        threads: vec![side(a, b), side(b, a)],
        heap: HEAP,
        locks: 0,
    }
}

/// §5.5 TSO captures replay identically in both modes: the delta overlay
/// must flush ahead of produce points so consumed snapshots see published
/// metadata, and versioned reads must bypass the overlay exactly as they
/// bypass the live shadow.
#[test]
fn tso_captures_replay_identically_across_modes() {
    let mut any_versions = 0u64;
    for pad in [0usize, 2, 5, 8] {
        let w = dekker_memcheck(pad);
        let mut cfg =
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::MemCheck).with_tso();
        cfg.collect_streams = true;
        let live = Platform::run(&w, &cfg).metrics;
        let streams = live.streams.clone().expect("collection enabled");
        any_versions += live.versions_produced;

        let cas = threaded(
            LifeguardKind::MemCheck,
            streams.clone(),
            w.heap,
            BackendMode::CasPerAccess,
        );
        let delta = threaded(
            LifeguardKind::MemCheck,
            streams,
            w.heap,
            BackendMode::DeltaMerge,
        );
        assert_eq!(
            delta.fingerprint, cas.fingerprint,
            "pad={pad}: TSO modes diverged on final metadata"
        );
        assert_eq!(cas.fingerprint, live.fingerprint);
        assert_eq!(
            violation_keys(&delta.violations),
            violation_keys(&cas.violations),
            "pad={pad}: TSO modes diverged on violations"
        );
        assert_eq!(delta.versions_consumed, cas.versions_consumed);
    }
    assert!(
        any_versions > 0,
        "the pad sweep never produced a version — the TSO path went untested"
    );
}

// ---------------------------------------------------------------------------
// Cooperative lanes: both modes through the pull state machine
// ---------------------------------------------------------------------------

/// The `CoopSession` lane state machine produces identical results in both
/// modes (this is the form `paralogd` runs, so it gets its own parity
/// check rather than inheriting `ThreadedBackend`'s).
#[test]
fn coop_lanes_agree_across_modes() {
    for (kind, bench) in [
        (LifeguardKind::TaintCheck, Benchmark::Swaptions),
        (LifeguardKind::LockSet, Benchmark::Fluidanimate),
        (LifeguardKind::HappensBefore, Benchmark::Fluidanimate),
    ] {
        let w = workload(bench, 4);
        let (streams, live_fp) = capture(kind, &w, false);
        let mut fps = Vec::new();
        let mut keys = Vec::new();
        for mode in [BackendMode::CasPerAccess, BackendMode::DeltaMerge] {
            let boxed: Vec<Box<dyn RecordStream>> = streams
                .iter()
                .cloned()
                .map(|s| Box::new(paralog::core::BufferedStream::new(s)) as Box<dyn RecordStream>)
                .collect();
            let (session, mut lanes) =
                CoopSession::start_with_mode(&kind, w.heap, boxed, None, mode)
                    .expect("session starts");
            while !session.is_complete() {
                for lane in &mut lanes {
                    lane.step(64);
                }
            }
            let metrics = session.report().expect("complete").expect("clean drain");
            fps.push(metrics.fingerprint);
            keys.push(violation_keys(&metrics.violations));
        }
        assert_eq!(
            fps[0], live_fp,
            "{kind}/{bench}: coop cas diverged from live"
        );
        assert_eq!(fps[0], fps[1], "{kind}/{bench}: coop modes diverged");
        assert_eq!(keys[0], keys[1], "{kind}/{bench}: coop violations diverged");
    }
}

// ---------------------------------------------------------------------------
// Explicit-mode error path
// ---------------------------------------------------------------------------

/// `BackendMode::DeltaMerge` on a factory without a delta form fails with
/// `SessionError::Unsupported` — on the threaded backend and on coop lanes.
/// `Auto` on the same factory silently falls back to CAS.
#[test]
fn explicit_delta_without_a_delta_form_is_unsupported() {
    #[derive(Debug)]
    struct CasOnly;
    impl LifeguardFactory for CasOnly {
        fn name(&self) -> &str {
            "CasOnly"
        }
        fn build(&self, heap: AddrRange) -> LifeguardFamily {
            LifeguardKind::MemCheck.build(heap)
        }
        fn concurrent(
            &self,
            heap: AddrRange,
            threads: usize,
        ) -> Option<Box<dyn ConcurrentLifeguard>> {
            let _ = heap;
            Some(Box::new(paralog::lifeguards::MemCheckConcurrent::new(
                threads,
            )))
        }
    }

    let w = workload(Benchmark::Swaptions, 2);
    let err = MonitorSession::builder()
        .source(w.clone())
        .lifeguard_factory(CasOnly)
        .backend(ThreadedBackend)
        .backend_mode(BackendMode::DeltaMerge)
        .build()
        .and_then(|s| s.run())
        .expect_err("delta-merge without a delta form must be refused");
    assert!(
        matches!(err, SessionError::Unsupported(_)),
        "wrong error: {err:?}"
    );

    let streams: Vec<Box<dyn RecordStream>> =
        vec![Box::new(paralog::core::BufferedStream::new(Vec::new()))];
    let err = CoopSession::start_with_mode(&CasOnly, HEAP, streams, None, BackendMode::DeltaMerge)
        .expect_err("coop lanes refuse too");
    assert!(matches!(err, SessionError::Unsupported(_)));

    // Auto on the same factory silently falls back to CAS-per-access.
    MonitorSession::builder()
        .source(w)
        .lifeguard_factory(CasOnly)
        .backend(ThreadedBackend)
        .backend_mode(BackendMode::Auto)
        .build()
        .expect("auto builds")
        .run()
        .expect("auto falls back to cas");
}

// ---------------------------------------------------------------------------
// Racing private-slab writers (proptest; raced under TSan nightly)
// ---------------------------------------------------------------------------

/// One thread's stream: a metadata source over a private slab, then
/// loads/stores at the generated slots. Private slabs make the final
/// metadata schedule-independent, so racing replays must agree exactly.
fn private_stream(kind: LifeguardKind, tid: u16, slots: &[u64]) -> Vec<EventRecord> {
    // Race-lifeguard data addresses sit below the sync-object region.
    let base = if matches!(kind, LifeguardKind::LockSet | LifeguardKind::HappensBefore) {
        0x0100_0000
    } else {
        HEAP.start
    };
    let slab = AddrRange::new(base + u64::from(tid) * 0x10_000, 0x1000);
    let prelude = match kind {
        // HappensBefore has no CA prelude: an Rmw on an own per-thread
        // sync word establishes the thread's epoch instead.
        LifeguardKind::HappensBefore => EventRecord::instr(
            Rid(1),
            Instr::Rmw {
                mem: MemRef::new(
                    paralog::lifeguards::lockset::SYNC_SPACE_START + u64::from(tid) * 64,
                    8,
                ),
                reg: Reg(0),
            },
        ),
        LifeguardKind::LockSet => EventRecord::ca(
            Rid(1),
            CaRecord {
                what: HighLevelKind::Lock(LockId(u32::from(tid))),
                phase: CaPhase::End,
                range: None,
                issuer: ThreadId(tid),
                issuer_rid: Rid(1),
                seq: u64::MAX, // own-stream record: no cross-thread ordering
            },
        ),
        LifeguardKind::TaintCheck => EventRecord::ca(
            Rid(1),
            CaRecord {
                what: HighLevelKind::Syscall(SyscallKind::ReadInput),
                phase: CaPhase::End,
                range: Some(slab),
                issuer: ThreadId(tid),
                issuer_rid: Rid(1),
                seq: u64::MAX,
            },
        ),
        _ => EventRecord::ca(
            Rid(1),
            CaRecord {
                what: HighLevelKind::Malloc,
                phase: CaPhase::End,
                range: Some(slab),
                issuer: ThreadId(tid),
                issuer_rid: Rid(1),
                seq: u64::MAX,
            },
        ),
    };
    let mut recs = vec![prelude];
    for (i, slot) in slots.iter().enumerate() {
        let mem = MemRef::new(slab.start + (slot % (slab.len / 8 - 1)) * 8, 8);
        let instr = if i % 2 == 0 {
            Instr::Load {
                dst: Reg(0),
                src: mem,
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg(0),
            }
        };
        recs.push(EventRecord::instr(Rid(i as u64 + 2), instr));
    }
    recs
}

/// Replays one pre-built stream per racing OS thread in CAS mode.
fn race_cas(conc: &dyn ConcurrentLifeguard, streams: &[Vec<EventRecord>]) {
    std::thread::scope(|scope| {
        for (t, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let tid = ThreadId(t as u16);
                for rec in stream {
                    conc.apply(tid, rec, None);
                }
            });
        }
    });
}

/// Replays one pre-built stream per racing OS thread in delta mode,
/// publishing every `flush_every` records and at stream end.
fn race_delta(lg: &dyn DeltaLifeguard, streams: &[Vec<EventRecord>], flush_every: usize) {
    std::thread::scope(|scope| {
        for (t, stream) in streams.iter().enumerate() {
            scope.spawn(move || {
                let tid = ThreadId(t as u16);
                for (i, rec) in stream.iter().enumerate() {
                    lg.apply_delta(tid, rec, None);
                    if (i + 1) % flush_every == 0 {
                        lg.flush_delta(tid);
                    }
                }
                lg.flush_delta(tid);
            });
        }
    });
}

fn check_racing_parity(kind: LifeguardKind, slots: &[Vec<u64>], flush_every: usize) {
    let streams: Vec<Vec<EventRecord>> = slots
        .iter()
        .enumerate()
        .map(|(t, s)| private_stream(kind, t as u16, s))
        .collect();
    let cas = kind.concurrent(HEAP, streams.len()).expect("cas form");
    race_cas(&*cas, &streams);
    let delta = kind
        .concurrent_delta(HEAP, streams.len())
        .expect("delta form");
    race_delta(&*delta, &streams, flush_every);
    let delta: &dyn ConcurrentLifeguard = &*delta;
    assert_eq!(
        cas.fingerprint(),
        delta.fingerprint(),
        "{kind}: racing modes diverged on final metadata (flush_every={flush_every})"
    );
    assert_eq!(
        violation_keys(&cas.violations()),
        violation_keys(&delta.violations()),
        "{kind}: racing modes diverged on violations (flush_every={flush_every})"
    );
}

fn slots_strategy() -> impl Strategy<Value = (Vec<Vec<u64>>, usize)> {
    (2usize..=4)
        .prop_flat_map(|n| {
            (0..n)
                .map(|_| proptest::collection::vec(0u64..512, 24..160))
                .collect::<Vec<_>>()
        })
        .prop_flat_map(|slots| (Just(slots), 1usize..96))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn racing_taintcheck_modes_agree((slots, flush) in slots_strategy()) {
        check_racing_parity(LifeguardKind::TaintCheck, &slots, flush);
    }

    #[test]
    fn racing_memcheck_modes_agree((slots, flush) in slots_strategy()) {
        check_racing_parity(LifeguardKind::MemCheck, &slots, flush);
    }

    #[test]
    fn racing_lockset_modes_agree((slots, flush) in slots_strategy()) {
        check_racing_parity(LifeguardKind::LockSet, &slots, flush);
    }

    #[test]
    fn racing_addrcheck_modes_agree((slots, flush) in slots_strategy()) {
        check_racing_parity(LifeguardKind::AddrCheck, &slots, flush);
    }

    #[test]
    fn racing_happensbefore_modes_agree((slots, flush) in slots_strategy()) {
        check_racing_parity(LifeguardKind::HappensBefore, &slots, flush);
    }
}
