//! Property test for the workload engine's purity contract: generation is
//! a pure function of (spec, seed). Two `build()` calls on an equal spec —
//! across every op-mix shape, injection-rate corner, Zipf setting, and
//! bug-injection flag — must produce identical per-thread operation
//! streams, and replaying those streams must land on identical monitoring
//! fingerprints. The captured-stream replay path (and every checked-in
//! bench baseline) depends on this: a generator that consulted ambient
//! state would make "same spec" captures incomparable.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, OpMix, WorkloadSpec};
use proptest::prelude::*;

/// Keep generated programs small: purity does not depend on length, and
/// the platform replay below runs once per case.
const SCALE: f64 = 0.02;

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Barnes),
        Just(Benchmark::Fmm),
        Just(Benchmark::Swaptions),
        Just(Benchmark::Fluidanimate),
    ]
}

/// Every op-mix shape: absent (the historical RNG sequence), the three
/// presets, single-category corners, and arbitrary valid weight vectors.
fn op_mix_strategy() -> impl Strategy<Value = Option<OpMix>> {
    let corner = |reads: f64, writes: f64, alloc_free: f64, locks: f64| OpMix {
        reads,
        writes,
        alloc_free,
        locks,
    };
    prop_oneof![
        Just(None),
        Just(Some(OpMix::read_heavy())),
        Just(Some(OpMix::write_heavy())),
        Just(Some(OpMix::balanced())),
        Just(Some(corner(1.0, 0.0, 0.0, 0.0))),
        Just(Some(corner(0.0, 1.0, 0.0, 0.0))),
        Just(Some(corner(0.0, 0.0, 1.0, 0.0))),
        Just(Some(corner(0.0, 0.0, 0.0, 1.0))),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.01f64..1.0)
            .prop_map(move |(r, w, a, l)| Some(corner(r, w, a, l))),
    ]
}

/// Injection-rate corners: absent, never, always, and arbitrary.
fn rate_strategy() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        Just(None),
        Just(Some(0.0)),
        Just(Some(1.0)),
        (0.0f64..=1.0).prop_map(Some),
    ]
}

#[derive(Debug, Clone)]
struct SpecParams {
    benchmark: Benchmark,
    threads: usize,
    seed: u64,
    op_mix: Option<OpMix>,
    syscall_rate: Option<f64>,
    race_rate: Option<f64>,
    zipf: Option<f64>,
    inject_bugs: bool,
}

fn spec_strategy() -> impl Strategy<Value = SpecParams> {
    (
        benchmark_strategy(),
        1usize..=4,
        any::<u64>(),
        op_mix_strategy(),
        rate_strategy(),
        rate_strategy(),
        prop_oneof![Just(None), (0.0f64..1.5).prop_map(Some)],
        any::<bool>(),
    )
        .prop_map(
            |(benchmark, threads, seed, op_mix, syscall_rate, race_rate, zipf, inject_bugs)| {
                SpecParams {
                    benchmark,
                    threads,
                    seed,
                    op_mix,
                    syscall_rate,
                    race_rate,
                    zipf,
                    inject_bugs,
                }
            },
        )
}

fn build_spec(p: &SpecParams) -> WorkloadSpec {
    let mut spec = WorkloadSpec::benchmark(p.benchmark, p.threads)
        .scale(SCALE)
        .seed(p.seed)
        .inject_bugs(p.inject_bugs);
    if let Some(mix) = p.op_mix {
        spec = spec.op_mix(mix);
    }
    if let Some(rate) = p.syscall_rate {
        spec = spec.syscall_rate(rate);
    }
    if let Some(rate) = p.race_rate {
        spec = spec.race_rate(rate);
    }
    if let Some(theta) = p.zipf {
        spec = spec.zipf(theta);
    }
    spec
}

fn fingerprint(w: &paralog::workloads::Workload) -> u64 {
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    Platform::run(w, &cfg).metrics.fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generation_is_a_pure_function_of_spec_and_seed(p in spec_strategy()) {
        let a = build_spec(&p).build();
        let b = build_spec(&p).build();
        prop_assert_eq!(&a.threads, &b.threads, "streams diverged for {:?}", p);
        prop_assert_eq!(a.heap, b.heap);
        prop_assert_eq!(a.locks, b.locks);
        prop_assert!(a.total_ops() > 0, "generated an empty workload");
        prop_assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "replay fingerprints diverged for {:?}", p
        );
    }

    #[test]
    fn distinct_seeds_actually_move_the_stream(p in spec_strategy()) {
        // The inverse guard: if the generator ignored the seed, the purity
        // property above would pass vacuously.
        let a = build_spec(&p).build();
        let mut q = p.clone();
        q.seed = p.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let b = build_spec(&q).build();
        prop_assert_ne!(&a.threads, &b.threads, "seed had no effect for {:?}", p);
    }
}

/// The enumerated corner grid, kept outside proptest so every corner runs
/// on every test invocation: each preset × each injection-rate corner
/// builds twice to identical streams, and the always-inject corners
/// demonstrably inject.
#[test]
fn every_op_mix_and_rate_corner_is_deterministic() {
    use paralog::events::Op;
    let mixes: [Option<OpMix>; 4] = [
        None,
        Some(OpMix::read_heavy()),
        Some(OpMix::write_heavy()),
        Some(OpMix::balanced()),
    ];
    for mix in mixes {
        for syscall_rate in [None, Some(0.0), Some(1.0)] {
            for race_rate in [None, Some(0.0), Some(1.0)] {
                let p = SpecParams {
                    benchmark: Benchmark::Swaptions,
                    threads: 2,
                    seed: 7,
                    op_mix: mix,
                    syscall_rate,
                    race_rate,
                    zipf: None,
                    inject_bugs: false,
                };
                let a = build_spec(&p).build();
                let b = build_spec(&p).build();
                assert_eq!(a.threads, b.threads, "corner {p:?} is not deterministic");
                if syscall_rate == Some(1.0) {
                    let syscalls = a.threads[0]
                        .iter()
                        .filter(|op| matches!(op, Op::Syscall { .. }))
                        .count();
                    assert!(
                        syscalls > 1,
                        "always-inject syscall corner emitted no injected syscalls"
                    );
                }
            }
        }
    }
}
