//! Figure-7-style per-phase timed breakdowns for captured-stream replay.
//!
//! The tentpole invariants:
//!
//! * replaying a captured stream through the DES cycle model yields a
//!   `PhaseBreakdown` whose phases **sum to the run's total time**
//!   (`lg_finish`, hence `execution_cycles()`);
//! * the same capture replayed **raw** (already-materialized records) vs
//!   **codec-wire** (incremental decode) reports *identical* analysis-phase
//!   cycles — analysis cost is a function of the payload, never of the
//!   transport — while only the wire replay pays a transport phase;
//! * the cooperative lane path (`paralogd`'s form) reports the same
//!   payload-derived phases as the deterministic backend for the same
//!   capture, and its breakdown also sums to total.

use paralog::core::{
    BackendMode, CoopSession, DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode,
    Platform, RecordStream, ReplaySource, StreamingReplaySource, TRANSPORT_BYTES_PER_CYCLE,
};
use paralog::events::codec::encode;
use paralog::events::EventRecord;
use paralog::lifeguards::{CostModel, LifeguardKind};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};

fn workload(bench: Benchmark, threads: usize) -> Workload {
    WorkloadSpec::benchmark(bench, threads).scale(0.05).build()
}

/// Captures a workload's annotated streams plus the live fingerprint.
fn capture(kind: LifeguardKind, w: &Workload) -> (Vec<Vec<EventRecord>>, u64) {
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind);
    cfg.collect_streams = true;
    let live = Platform::run(w, &cfg).metrics;
    (live.streams.expect("collection enabled"), live.fingerprint)
}

#[test]
fn raw_replay_phases_sum_to_total() {
    let w = workload(Benchmark::Barnes, 4);
    let (streams, live_fp) = capture(LifeguardKind::TaintCheck, &w);
    let total_records: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let out = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let m = out.metrics;
    assert_eq!(m.fingerprint, live_fp, "timing must not perturb analysis");

    let p = m.phases.expect("captured-stream replay reports phases");
    assert_eq!(
        p.total(),
        m.lg_finish,
        "phases are disjoint and exhaustive: they sum to the modeled total"
    );
    assert_eq!(
        m.execution_cycles(),
        m.lg_finish,
        "replay has no application side; the lifeguard total is the run"
    );

    let cost = CostModel::calibrated();
    assert_eq!(
        p.capture,
        total_records * cost.record_drain,
        "every record drains exactly once"
    );
    assert_eq!(p.transport, 0, "raw records were never on a wire");
    assert_eq!(
        p.order_wait,
        m.dependence_stalls * cost.stall_poll,
        "order-wait is the stall count under the poll cost"
    );
    assert!(p.analysis > 0, "handlers ran");
    assert!(p.publish > 0, "progress was advertised");
    assert!(
        p.analysis > p.capture,
        "handler work dominates drain at these constants"
    );
}

#[test]
fn wire_replay_matches_raw_analysis_and_pays_transport() {
    let w = workload(Benchmark::Fluidanimate, 4);
    let (streams, _) = capture(LifeguardKind::TaintCheck, &w);
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
    let wire_total: u64 = encoded.iter().map(|e| e.len() as u64).sum();

    let raw = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .metrics;
    let wire = MonitorSession::builder()
        .source(StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(512))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .metrics;

    assert_eq!(wire.fingerprint, raw.fingerprint);
    let (rp, wp) = (raw.phases.unwrap(), wire.phases.unwrap());
    assert_eq!(
        wp.analysis, rp.analysis,
        "analysis cost is payload-derived: raw and wire replays of the \
         same capture must agree exactly"
    );
    assert_eq!(wp.capture, rp.capture, "same records, same drain charge");
    assert_eq!(wp.publish, rp.publish, "same versions and adverts");
    assert_eq!(rp.transport, 0);
    assert_eq!(
        wp.transport,
        wire_total.div_ceil(TRANSPORT_BYTES_PER_CYCLE),
        "the wire replay pays exactly the encoded bytes"
    );
    assert!(wp.transport > 0, "a codec stream is never zero bytes");
    assert_eq!(wp.total(), wire.lg_finish, "wire phases sum to total");
}

#[test]
fn coop_lanes_report_the_same_payload_phases() {
    let w = workload(Benchmark::Swaptions, 4);
    let (streams, live_fp) = capture(LifeguardKind::TaintCheck, &w);

    let det = MonitorSession::builder()
        .source(ReplaySource::new(streams.clone(), w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .metrics;

    let boxed: Vec<Box<dyn RecordStream>> = streams
        .into_iter()
        .map(|s| Box::new(paralog::core::BufferedStream::new(s)) as Box<dyn RecordStream>)
        .collect();
    let (session, mut lanes) = CoopSession::start_with_mode(
        &LifeguardKind::TaintCheck,
        w.heap,
        boxed,
        None,
        BackendMode::CasPerAccess,
    )
    .expect("session starts");
    // Mid-run snapshots must already carry a consistent breakdown.
    let mut saw_partial = false;
    while !session.is_complete() {
        for lane in &mut lanes {
            lane.step(64);
        }
        let snap = session.snapshot_metrics();
        let sp = snap.phases.expect("live snapshots report phases");
        assert_eq!(sp.total(), snap.lg_finish, "snapshot phases sum to total");
        saw_partial |= snap.records > 0 && !session.is_complete();
    }
    assert!(saw_partial, "the loop never observed a live session");

    let coop = session.report().expect("complete").expect("clean drain");
    assert_eq!(coop.fingerprint, live_fp);
    let (dp, cp) = (det.phases.unwrap(), coop.phases.unwrap());
    // Payload-derived phases agree across execution substrates; only
    // order-wait is schedule-dependent (stall counts differ by interleaving).
    assert_eq!(cp.analysis, dp.analysis, "coop analysis == deterministic");
    assert_eq!(cp.capture, dp.capture, "coop capture == deterministic");
    assert_eq!(cp.publish, dp.publish, "coop publish == deterministic");
    assert_eq!(cp.transport, 0, "buffered lanes have no wire");
    assert_eq!(cp.total(), coop.lg_finish, "coop phases sum to total");
}

#[test]
fn cosimulated_runs_do_not_fake_a_breakdown() {
    let w = workload(Benchmark::Lu, 2);
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    let live = Platform::run(&w, &cfg).metrics;
    assert!(
        live.phases.is_none(),
        "co-simulation times the machine in LgBuckets, not ingest phases"
    );
}
