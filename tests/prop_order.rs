//! Property tests on the ordering substrate (DESIGN.md §5.2):
//!
//! **Arc soundness** — for any random access sequence, every pair of
//! conflicting accesses (same block, at least one write, different threads)
//! must be ordered by the transitive closure of *recorded* arcs plus program
//! order, for every capture policy × reduction level. Reduction may only
//! drop arcs that are already implied.
//!
//! Plus codec and shadow-memory roundtrip properties.

use paralog::events::codec::{decode, encode};
use paralog::events::{
    AccessKind, AddrRange, ArcKind, DependenceArc, EventRecord, Instr, MemRef, Reg, Rid, ThreadId,
};
use paralog::meta::ShadowMemory;
use paralog::order::{CapturePolicy, OrderCapture, Reduction};
use paralog::sim::{MachineConfig, MemorySystem};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Access {
    thread: usize,
    slot: u64,
    write: bool,
}

fn access_strategy(threads: usize) -> impl Strategy<Value = Access> {
    (0..threads, 0u64..12, any::<bool>()).prop_map(|(thread, slot, write)| Access {
        thread,
        slot,
        write,
    })
}

/// Replays the accesses through the memory system + order capture, then
/// verifies happened-before coverage of every conflict via vector clocks.
fn verify_arc_soundness(
    accesses: &[Access],
    threads: usize,
    policy: CapturePolicy,
    reduction: Reduction,
) -> Result<(), TestCaseError> {
    let mut mem = MemorySystem::new(&MachineConfig::paper(threads));
    let mut capture = OrderCapture::new(threads, policy, reduction);
    let mut rid = vec![Rid::ZERO; threads];
    // Per event: (thread, rid, block, write, arcs).
    let mut events: Vec<(usize, Rid, u64, bool, Vec<DependenceArc>)> = Vec::new();

    for a in accesses {
        let r = rid[a.thread].next();
        rid[a.thread] = r;
        mem.set_core_rid(a.thread, r);
        let addr = 0x1000 + a.slot * 64; // one block per slot
        let kind = if a.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let res = mem.access(a.thread, r, addr, 8, kind);
        let mut arcs = Vec::new();
        for t in &res.touches {
            let src = ThreadId(t.remote_core as u16);
            if let Some(arc) = capture.on_touch(ThreadId(a.thread as u16), r, src, t) {
                arcs.push(arc);
            }
        }
        events.push((a.thread, r, a.slot, a.write, arcs));
    }

    // Vector clocks over recorded arcs + program order.
    let mut vc_of: HashMap<(usize, u64), Vec<u64>> = HashMap::new();
    let mut last_vc: Vec<Vec<u64>> = vec![vec![0; threads]; threads];
    for (t, r, _, _, arcs) in &events {
        let mut vc = last_vc[*t].clone();
        vc[*t] = r.0;
        for arc in arcs {
            // An arc (s, i) means s's event i happened before: join s's
            // clock *at i* (all its events ≤ i are ordered before us).
            let src = arc.src.index();
            if let Some(src_vc) = vc_of.get(&(src, arc.src_rid.0)) {
                for (k, v) in src_vc.iter().enumerate() {
                    vc[k] = vc[k].max(*v);
                }
            }
            vc[src] = vc[src].max(arc.src_rid.0);
        }
        vc_of.insert((*t, r.0), vc.clone());
        last_vc[*t] = vc;
    }

    // Every conflicting pair must be ordered.
    for i in 0..events.len() {
        for j in (i + 1)..events.len() {
            let (ti, ri, bi, wi, _) = &events[i];
            let (tj, rj, bj, wj, _) = &events[j];
            if ti == tj || bi != bj || !(*wi || *wj) {
                continue;
            }
            let vc_j = &vc_of[&(*tj, rj.0)];
            prop_assert!(
                vc_j[*ti] >= ri.0,
                "{policy:?}/{reduction:?}: conflict ({ti},{ri}) -> ({tj},{rj}) on block {bi} \
                 not covered (vc_j[{ti}]={})",
                vc_j[*ti]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arcs_cover_all_conflicts(
        accesses in proptest::collection::vec(access_strategy(3), 1..120),
    ) {
        for policy in [CapturePolicy::PerBlock, CapturePolicy::PerCore] {
            for reduction in [Reduction::None, Reduction::Direct, Reduction::Transitive] {
                verify_arc_soundness(&accesses, 3, policy, reduction)?;
            }
        }
    }

    #[test]
    fn reduction_only_removes_implied_arcs(
        accesses in proptest::collection::vec(access_strategy(4), 1..100),
    ) {
        // Stronger reduction must never record *more* arcs.
        let count = |reduction| {
            let mut mem = MemorySystem::new(&MachineConfig::paper(4));
            let mut capture = OrderCapture::new(4, CapturePolicy::PerBlock, reduction);
            let mut rid = [Rid::ZERO; 4];
            for a in &accesses {
                let r = rid[a.thread].next();
                rid[a.thread] = r;
                mem.set_core_rid(a.thread, r);
                let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
                let res = mem.access(a.thread, r, 0x1000 + a.slot * 64, 8, kind);
                for t in &res.touches {
                    let src = ThreadId(t.remote_core as u16);
                    let _ = capture.on_touch(ThreadId(a.thread as u16), r, src, t);
                }
            }
            capture.stats().recorded
        };
        let none = count(Reduction::None);
        let direct = count(Reduction::Direct);
        let transitive = count(Reduction::Transitive);
        prop_assert!(direct <= none);
        prop_assert!(transitive <= direct);
    }

    #[test]
    fn codec_roundtrips_arbitrary_records(
        specs in proptest::collection::vec(
            (0u8..9, 0u64..0x10000, 0u8..16, 0u8..16,
             proptest::collection::vec((0u16..8, 0u64..1000), 0..3)),
            1..80,
        )
    ) {
        let mut records = Vec::new();
        for (i, (op, addr, r1, r2, arcs)) in specs.into_iter().enumerate() {
            let addr = addr & !7;
            let m = MemRef::new(addr, 4);
            let instr = match op {
                0 => Instr::Load { dst: Reg(r1), src: m },
                1 => Instr::Store { dst: m, src: Reg(r1) },
                2 => Instr::MovRR { dst: Reg(r1), src: Reg(r2) },
                3 => Instr::MovRI { dst: Reg(r1) },
                4 => Instr::Alu1 { dst: Reg(r1), a: Reg(r2) },
                5 => Instr::Alu2 { dst: Reg(r1), a: Reg(r2), b: Reg(r1) },
                6 => Instr::AluMem { dst: Reg(r1), a: Reg(r2), src: m },
                7 => Instr::JmpReg { target: Reg(r1) },
                _ => Instr::Nop,
            };
            let mut rec = EventRecord::instr(Rid(i as u64 + 1), instr);
            for (t, r) in arcs {
                rec.arcs.push(DependenceArc::new(ThreadId(t), Rid(r), ArcKind::Raw));
            }
            records.push(rec);
        }
        let bytes = encode(&records);
        let back = decode(&bytes).expect("well-formed stream");
        prop_assert_eq!(back, records);
    }

    #[test]
    fn shadow_set_get_consistency(
        writes in proptest::collection::vec((0u64..4096, 0u8..4), 1..200),
    ) {
        let mut shadow = ShadowMemory::new(2);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, v) in &writes {
            shadow.set(*addr, *v);
            model.insert(*addr, *v);
        }
        for (addr, v) in &model {
            prop_assert_eq!(shadow.get(*addr), *v);
        }
        // join_range agrees with the model.
        let join = shadow.join_range(AddrRange::new(0, 4096));
        let expect = model.values().fold(0u8, |a, b| a | b);
        prop_assert_eq!(join, expect);
    }

    #[test]
    fn shadow_snapshot_restore_is_identity(
        writes in proptest::collection::vec((0u64..256, 0u8..2), 1..100),
        start in 0u64..200,
        len in 1u64..56,
    ) {
        let mut shadow = ShadowMemory::new(1);
        for (addr, v) in &writes {
            shadow.set(*addr, *v);
        }
        let range = AddrRange::new(start, len);
        let snap = shadow.snapshot(range);
        let before: Vec<u8> = (range.start..range.end()).map(|a| shadow.get(a)).collect();
        shadow.set_range(range, 0);
        shadow.restore(range, &snap);
        let after: Vec<u8> = (range.start..range.end()).map(|a| shadow.get(a)).collect();
        prop_assert_eq!(before, after);
    }
}
