//! Concurrent version table + TSO streaming replay on real threads.
//!
//! The tentpole invariants:
//!
//! * `ConcurrentVersionTable` is a drop-in model match for the sequential
//!   `VersionTable`: the same produce/consume/bypass trace yields the same
//!   consume results and the same produced/consumed/outstanding/peak
//!   accounting (property-tested over random interleaved traces);
//! * under genuine producer/consumer thread races every snapshot arrives
//!   intact and the accounting still balances;
//! * a §5.5 versioned capture (the Figure 5 Dekker pattern) replays on
//!   `ThreadedBackend` — raw or through the codec wire form — with
//!   fingerprints, violations and version traffic identical to the live
//!   deterministic run;
//! * a TSO capture truncated before its produce point deadlocks the
//!   threaded replay loudly (the parked consumer's no-global-progress
//!   detector) instead of hanging or silently bypassing.

use paralog::core::{
    DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode, Platform, ReplaySource,
    SessionError, StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::events::{
    AddrRange, EventRecord, Instr, MemRef, Op, Reg, Rid, SyscallKind, ThreadId, VersionId,
};
use paralog::lifeguards::{LifeguardKind, Violation, ViolationKind};
use paralog::meta::{ConcurrentVersionTable, VersionTable};
use paralog::workloads::Workload;
use proptest::prelude::*;

fn vid(t: u16, r: u64) -> VersionId {
    VersionId {
        consumer: ThreadId(t),
        consumer_rid: Rid(r),
    }
}

/// One step of a version-table trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceOp {
    Bypass(u16, u64),
    Produce(u16, u64, u32),
    Consume(u16, u64),
    /// Consume of an id that is never produced (the stall probe).
    Miss(u16, u64),
}

/// Expands per-id specs into one interleaved, *valid* trace: bypasses
/// precede the produce, consumes follow it, and up to `window` ids stay
/// outstanding simultaneously so chunk churn and the peak counter get
/// exercised.
fn build_trace(ids: &[(u16, u64, u32)], window: usize) -> Vec<TraceOp> {
    let mut seen = std::collections::HashSet::new();
    let mut trace = Vec::new();
    let mut pending: std::collections::VecDeque<(u16, u64, u32)> = Default::default();
    for &(t, r, consumers) in ids {
        if !seen.insert((t, r)) {
            continue; // version ids are unique per dynamic conflict
        }
        let bypasses = (r % u64::from(consumers + 1)) as u32;
        for _ in 0..bypasses {
            trace.push(TraceOp::Bypass(t, r));
        }
        trace.push(TraceOp::Produce(t, r, consumers));
        if r % 5 == 0 {
            trace.push(TraceOp::Miss(t, r + 100_000));
        }
        if consumers > bypasses {
            pending.push_back((t, r, consumers - bypasses));
        }
        while pending.len() > window {
            let (t, r, consumes) = pending.pop_front().expect("nonempty");
            for _ in 0..consumes {
                trace.push(TraceOp::Consume(t, r));
            }
        }
    }
    while let Some((t, r, consumes)) = pending.pop_front() {
        for _ in 0..consumes {
            trace.push(TraceOp::Consume(t, r));
        }
    }
    trace
}

fn snapshot_for(r: u64) -> Vec<u8> {
    vec![(r % 251) as u8; 8]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model equivalence: the concurrent table applied to any valid trace
    /// behaves byte-for-byte like the sequential one, counters included.
    #[test]
    fn concurrent_table_matches_sequential_model(
        ids in proptest::collection::vec((0u16..3, 1u64..600, 1u32..4), 1..48),
        window in 1usize..5,
    ) {
        let trace = build_trace(&ids, window);
        let mut seq = VersionTable::new();
        let conc = ConcurrentVersionTable::new(3);
        let range = |r: u64| AddrRange::new(0x1000 + r * 8, 8);
        for op in &trace {
            match *op {
                TraceOp::Bypass(t, r) => {
                    seq.bypass(vid(t, r));
                    conc.bypass(vid(t, r));
                }
                TraceOp::Produce(t, r, consumers) => {
                    seq.produce(vid(t, r), range(r), snapshot_for(r), consumers);
                    conc.produce(vid(t, r), range(r), snapshot_for(r), consumers);
                    prop_assert_eq!(
                        seq.is_available(vid(t, r)),
                        conc.is_available(vid(t, r)),
                        "availability diverged after produce"
                    );
                }
                TraceOp::Consume(t, r) => {
                    let a = seq.consume(vid(t, r));
                    let b = conc.consume(vid(t, r));
                    prop_assert_eq!(a, b, "consume results diverged");
                }
                TraceOp::Miss(t, r) => {
                    prop_assert!(seq.consume(vid(t, r)).is_none());
                    prop_assert!(conc.consume(vid(t, r)).is_none());
                    prop_assert!(!conc.is_available(vid(t, r)));
                }
            }
        }
        prop_assert_eq!(seq.produced(), conc.produced());
        prop_assert_eq!(seq.consumed(), conc.consumed());
        prop_assert_eq!(seq.outstanding(), conc.outstanding());
        prop_assert_eq!(seq.peak_outstanding(), conc.peak_outstanding());
    }

    /// N racing producer threads against one consumer per shard: every
    /// snapshot must arrive intact regardless of interleaving, and the
    /// final accounting must balance — the invariant the deterministic
    /// model cannot check.
    #[test]
    fn racing_producers_and_consumers_preserve_snapshots(
        per_producer in 16u64..96,
        consumers_per_version in 1u32..3,
    ) {
        let table = ConcurrentVersionTable::new(2);
        let total = 2 * per_producer;
        std::thread::scope(|scope| {
            let t = &table;
            for p in 0..2u64 {
                scope.spawn(move || {
                    for i in 0..per_producer {
                        let r = 1 + p * per_producer + i;
                        t.produce(
                            vid((r % 2) as u16, r),
                            AddrRange::new(0x1000 + r * 8, 8),
                            snapshot_for(r),
                            consumers_per_version,
                        );
                    }
                });
            }
            for c in 0..2u16 {
                scope.spawn(move || {
                    for r in 1..=total {
                        if r % 2 != u64::from(c) {
                            continue;
                        }
                        for _ in 0..consumers_per_version {
                            loop {
                                if let Some((range, snap)) = t.consume(vid(c, r)) {
                                    assert_eq!(range, AddrRange::new(0x1000 + r * 8, 8));
                                    assert_eq!(snap, snapshot_for(r));
                                    break;
                                }
                                t.wait_available(vid(c, r), std::time::Duration::from_millis(2));
                            }
                        }
                    }
                });
            }
        });
        prop_assert_eq!(table.produced(), total);
        prop_assert_eq!(table.consumed(), total * u64::from(consumers_per_version));
        prop_assert_eq!(table.outstanding(), 0);
        prop_assert!(table.peak_outstanding() >= 1);
    }
}

/// Builds the Figure 5 Dekker pattern (same shape as `tso_figure5.rs`):
/// each thread taints a buffer via a read() syscall, writes its own flag
/// clean, and reads the other's — with `pad` spacers controlling how the
/// stores sit in the store buffers (some pads manifest the SC violation).
fn dekker(pad: usize) -> Workload {
    let a = MemRef::new(0x2000_0000, 8);
    let b = MemRef::new(0x2000_0100, 8);
    let side = |mine: MemRef, theirs: MemRef, buf: AddrRange| {
        let mut ops = vec![Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        }];
        for _ in 0..pad {
            ops.push(Op::Instr(Instr::Nop));
        }
        ops.push(Op::Instr(Instr::MovRI { dst: Reg(0) }));
        ops.push(Op::Instr(Instr::Store {
            dst: mine,
            src: Reg(0),
        }));
        ops.push(Op::Instr(Instr::Load {
            dst: Reg(1),
            src: theirs,
        }));
        ops.push(Op::Instr(Instr::Store {
            dst: MemRef::new(mine.addr + 0x40, 8),
            src: Reg(1),
        }));
        ops
    };
    Workload {
        name: "figure5-cross-backend".into(),
        benchmark: None,
        threads: vec![
            side(a, b, AddrRange::new(a.addr, 8)),
            side(b, a, AddrRange::new(b.addr, 8)),
        ],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    }
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

/// Acceptance: a §5.5 versioned stream replays on `ThreadedBackend` with
/// fingerprints and violations identical to `DeterministicBackend` — both
/// from the raw captured records and from the codec wire form — and the
/// version traffic matches the live run's.
#[test]
fn tso_capture_replays_identically_on_both_backends() {
    let mut any_versions = 0u64;
    for pad in [0usize, 1, 2, 3, 5, 8] {
        let w = dekker(pad);
        let mut cfg =
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck).with_tso();
        cfg.collect_streams = true;
        let live = Platform::run(&w, &cfg).metrics;
        let streams = live.streams.clone().expect("collection enabled");

        // The collected capture must carry every §5.5 annotation the live
        // run acted on (the TSO collection fix this PR lands).
        let produces: u64 = streams
            .iter()
            .flatten()
            .map(|r| r.produce_versions.len() as u64)
            .sum();
        let consumes: u64 = streams
            .iter()
            .flatten()
            .filter(|r| r.consume_version.is_some())
            .count() as u64;
        assert_eq!(produces, live.versions_produced, "pad={pad}: lost produce");
        assert_eq!(consumes, live.versions_consumed, "pad={pad}: lost consume");
        any_versions += produces;

        // Deterministic lifeguard-only ingestion of the raw capture.
        let det = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            det.metrics.fingerprint, live.fingerprint,
            "pad={pad}: deterministic ingestion diverged from the live run"
        );

        // Threaded replay of the raw capture.
        let thr = MonitorSession::builder()
            .source(ReplaySource::new(streams.clone(), w.heap))
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            thr.metrics.fingerprint, det.metrics.fingerprint,
            "pad={pad}: threaded replay diverged from deterministic"
        );
        assert_eq!(
            violation_keys(&thr.metrics.violations),
            violation_keys(&det.metrics.violations),
            "pad={pad}: violations diverged"
        );
        assert_eq!(thr.metrics.versions_produced, live.versions_produced);
        assert_eq!(thr.metrics.versions_consumed, live.versions_consumed);

        // Threaded replay of the codec-encoded wire form, streamed in tiny
        // chunks (the decode path must deliver annotations intact too).
        let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
        let src = StreamingReplaySource::from_encoded(encoded, w.heap).with_chunk_bytes(64);
        let wire = MonitorSession::builder()
            .source(src)
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            wire.metrics.fingerprint, det.metrics.fingerprint,
            "pad={pad}: codec-decoded threaded replay diverged"
        );
        assert_eq!(
            violation_keys(&wire.metrics.violations),
            violation_keys(&det.metrics.violations),
            "pad={pad}: codec-decoded violations diverged"
        );
    }
    assert!(
        any_versions > 0,
        "at least one pad must manifest the SC violation, or the versioned \
         replay path went untested"
    );
}

/// A consume annotation whose producer never reaches its produce point (a
/// truncated TSO capture) must fail loudly: the parked consumer's
/// no-global-progress detector reports `Deadlock` instead of hanging — and
/// instead of silently bypassing, which would race the producer's store on
/// real threads.
#[test]
fn truncated_tso_capture_deadlocks_threaded_replay() {
    let heap = AddrRange::new(0x1000_0000, 0x1000_0000);
    let mem = MemRef::new(0x2000_0000, 8);
    let mut consumer = EventRecord::instr(
        Rid(1),
        Instr::Load {
            dst: Reg(0),
            src: mem,
        },
    );
    consumer.consume_version = Some((vid(0, 1), mem));
    // Thread 1 (the would-be producer) is already exhausted: nothing will
    // ever produce v<T0,#1>.
    let streams = vec![vec![consumer], vec![]];
    let err = MonitorSession::builder()
        .source(ReplaySource::new(streams, heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .err();
    match err {
        Some(SessionError::Deadlock(detail)) => {
            assert!(
                detail.contains("version"),
                "deadlock report should name the version wait: {detail}"
            );
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}
