//! Unbounded-uptime soaks: sweep the rid and mask spaces far past their
//! steady-state windows and prove residency stays bounded.
//!
//! Three reclamation layers keep a long-running monitor's memory flat:
//!
//! * the [`ConcurrentVersionTable`] frees drained dense chunks at epoch
//!   boundaries, so version storage tracks the outstanding window, not the
//!   total rids replayed;
//! * the LOCKSET mask interner frees unreferenced candidate-set ids behind
//!   a quiescence gate, so the 2^16 id space survives unbounded churn of
//!   distinct lock combinations;
//! * the HAPPENSBEFORE vector-clock interner frees read-VC ids the same
//!   way when a write demotes a word back to a packed epoch — and when an
//!   adversarial workload pins the whole id space live, it must degrade
//!   *soundly* (affected words report rather than miss races) with one
//!   `DegradedPrecision` diagnostic.
//!
//! The long sweeps run single-threaded for throughput (residency bounds
//! do not depend on interleaving); the mask-cycling and racing-producer
//! soaks run real threads against the reclamation paths — those are what
//! the nightly TSan job is pointed at. The default profile is CI-sized;
//! `PARALOG_SOAK=1` runs the full multi-billion-rid sweep.

use paralog::core::{BackendMode, BufferedStream, CoopSession, RecordStream};
use paralog::events::{
    AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, LockId, MemRef, Reg, Rid,
    ThreadId, VersionId,
};
use paralog::lifeguards::{
    ConcurrentLifeguard, HappensBeforeConcurrent, LifeguardKind, LockSetConcurrent, SessionEvent,
};
use paralog::meta::ConcurrentVersionTable;
use paralog::workloads::adversarial::{self, AdversarialCapture};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Full profile: multi-billion-rid / half-million-combination sweeps for
/// the nightly soak. Default: the same code paths at CI scale.
fn full_profile() -> bool {
    std::env::var("PARALOG_SOAK").as_deref() == Ok("1")
}

/// How far producers run ahead of the consumer in the racing soak, in
/// versions (= dense chunks, at one version per chunk): the outstanding
/// window — and with it the residency bound under test — is a known
/// constant.
const PRODUCER_LEAD: usize = 128;

/// Consumer-side epoch cadence, mirroring the threaded backend's
/// advance-per-batch contract.
const CHUNKS_PER_EPOCH: u64 = 64;

#[test]
fn version_residency_is_bounded_over_a_rid_sweep() {
    // Sweep ≥ 100 full dense windows (~210M rids; PARALOG_SOAK=1 sweeps
    // 2000, ~4.2B rids), touching every chunk once. Grow-only storage
    // would allocate every chunk it touches; the epoch sweep must keep
    // the resident count near the outstanding window instead.
    let windows: u64 = if full_profile() { 2_000 } else { 100 };
    let chunks =
        windows * (ConcurrentVersionTable::WINDOW_RIDS / ConcurrentVersionTable::CHUNK_RIDS);
    let table = ConcurrentVersionTable::new(2);
    let range = AddrRange::new(0x1000_0000, 4);
    let vid = |c: u64| VersionId {
        consumer: ThreadId(1),
        consumer_rid: Rid(c * ConcurrentVersionTable::CHUNK_RIDS + 1),
    };

    for c in 0..chunks {
        table.produce(vid(c), range, vec![0xAB; 4], 1);
        let (_, snapshot) = table.consume(vid(c)).expect("just produced");
        assert_eq!(snapshot, vec![0xAB; 4]);
        if c % CHUNKS_PER_EPOCH == 0 {
            table.advance_epoch(ThreadId(1));
        }
    }
    // Stream end: flush chunks drained since the last boundary.
    table.advance_epoch(ThreadId(1));
    table.advance_epoch(ThreadId(1));

    assert_eq!(table.produced(), chunks);
    assert_eq!(table.consumed(), chunks);
    assert_eq!(table.outstanding(), 0, "every version retired");
    // The bound: one epoch of drained-but-unswept chunks plus the live
    // chunk and spares — independent of the sweep length.
    let peak = table.peak_dense_resident();
    assert!(
        peak <= 2 * CHUNKS_PER_EPOCH as usize + 8,
        "peak residency {peak} chunks is not bounded by the outstanding window \
         ({chunks} chunks swept)"
    );
    assert!(
        table.reclaimed_chunks() >= chunks - peak as u64,
        "sweep must reclaim nearly every chunk it touched: reclaimed {} of {chunks}",
        table.reclaimed_chunks()
    );
    assert!(
        table.dense_resident() <= 4,
        "quiesced table still holds {} chunks",
        table.dense_resident()
    );
}

fn rec_access(rid: u64, addr: u64, write: bool) -> EventRecord {
    let mem = MemRef::new(addr, 4);
    EventRecord::instr(
        Rid(rid),
        if write {
            Instr::Store {
                dst: mem,
                src: Reg::new(0),
            }
        } else {
            Instr::Load {
                dst: Reg::new(0),
                src: mem,
            }
        },
    )
}

fn rec_lock(rid: u64, tid: u16, id: u32, acquire: bool) -> EventRecord {
    EventRecord::ca(
        Rid(rid),
        CaRecord {
            what: if acquire {
                HighLevelKind::Lock(LockId(id))
            } else {
                HighLevelKind::Unlock(LockId(id))
            },
            phase: if acquire {
                CaPhase::End
            } else {
                CaPhase::Begin
            },
            range: None,
            issuer: ThreadId(tid),
            issuer_rid: Rid(rid),
            seq: u64::MAX,
        },
    )
}

/// One worker's slice of the mask-cycling soak: monitored threads `ta` and
/// `tb` share one fresh variable per iteration under a three-lock
/// combination drawn from `lock_base + [0, 32)`, then refine it down to a
/// single lock — interning one unique mask per iteration and releasing it
/// for the epoch-gated free. `sync` bounds the skew between workers so the
/// quiescence gate (min over worker epochs) cannot stall frees.
fn cycle_masks(
    conc: &LockSetConcurrent,
    iterations: u64,
    lock_base: u32,
    addr_base: u64,
    (ta, tb): (u16, u16),
    sync: &Barrier,
) {
    let mut rid = [1u64; 2];
    let mut next = |side: usize| {
        rid[side] += 1;
        rid[side]
    };
    for i in 0..iterations {
        // lcm(11, 13, 7) = 1001 distinct combinations before the pattern
        // repeats; freed ids must be reused or the 2^16 space dies in the
        // first 66k iterations.
        let combo = [
            lock_base + (i % 11) as u32,
            lock_base + 11 + (i % 13) as u32,
            lock_base + 24 + (i % 7) as u32,
        ];
        let addr = addr_base + i * 4;
        for &l in &combo {
            conc.apply(ThreadId(ta), &rec_lock(next(0), ta, l, true), None);
        }
        conc.apply(ThreadId(ta), &rec_access(next(0), addr, true), None);
        for &l in &combo {
            conc.apply(ThreadId(tb), &rec_lock(next(1), tb, l, true), None);
        }
        // Second thread writes: the variable goes shared-modified with the
        // full combination as its interned candidate set.
        conc.apply(ThreadId(tb), &rec_access(next(1), addr, true), None);
        // Drop all but one lock and touch the variable again: the candidate
        // set refines to the surviving single lock (one of only 11 reused
        // masks), releasing the iteration's unique combination id.
        conc.apply(ThreadId(ta), &rec_lock(next(0), ta, combo[1], false), None);
        conc.apply(ThreadId(ta), &rec_lock(next(0), ta, combo[2], false), None);
        conc.apply(ThreadId(ta), &rec_access(next(0), addr, true), None);
        conc.apply(ThreadId(ta), &rec_lock(next(0), ta, combo[0], false), None);
        for &l in &combo {
            conc.apply(ThreadId(tb), &rec_lock(next(1), tb, l, false), None);
        }
        if i % 64 == 0 {
            conc.epoch_boundary(ThreadId(ta));
            conc.epoch_boundary(ThreadId(tb));
        }
        if i % 256 == 0 {
            // The interner frees behind min(worker epochs): cap the skew so
            // a fast worker's pending ids cannot pile up behind a slow one.
            sync.wait();
        }
    }
    conc.stream_done(ThreadId(ta));
    conc.stream_done(ThreadId(tb));
}

#[test]
fn interner_residency_is_bounded_over_mask_cycling() {
    // Two OS threads, four monitored streams, disjoint lock and address
    // spaces: each iteration interns a fresh three-lock mask and releases
    // it, cycling far more distinct combinations through the interner than
    // its peak residency — without ever saturating.
    let iterations: u64 = if full_profile() { 500_000 } else { 20_000 };
    let conc = Arc::new(LockSetConcurrent::new(4));
    let sync = Arc::new(Barrier::new(2));
    let workers: Vec<_> = [
        (0u32, 0x1000_0000u64, (0u16, 1u16)),
        (32, 0x5000_0000, (2, 3)),
    ]
    .into_iter()
    .map(|(lock_base, addr_base, tids)| {
        let conc = Arc::clone(&conc);
        let sync = Arc::clone(&sync);
        thread::spawn(move || cycle_masks(&conc, iterations, lock_base, addr_base, tids, &sync))
    })
    .collect();
    for w in workers {
        w.join().expect("soak worker must not panic");
    }

    assert!(!conc.degraded(), "cycling must never exhaust the id space");
    assert!(
        conc.session_events().is_empty(),
        "no degradation diagnostics on a healthy run"
    );
    assert!(
        conc.violations().is_empty(),
        "consistently locked sharing must stay silent: {:?}",
        conc.violations()
    );
    // Steady state: the permanent full set, the empty set, ≤ 2 × 11 single
    // -lock masks, a few in-flight combinations per worker, plus up to one
    // barrier interval (256 iterations × 2 workers) of pending frees.
    let peak = conc.peak_interned_masks();
    assert!(
        peak <= 2048,
        "peak interner residency {peak} is not bounded ({} combinations cycled)",
        2 * iterations
    );
    let live = conc.interned_masks();
    assert!(live <= 64, "quiesced interner still holds {live} masks");
}

/// A sync-space record for HAPPENSBEFORE: an `Rmw` is the acquire shape
/// (join the word's published vector clock, then republish), a `Store`
/// the release shape (publish only).
fn rec_sync(rid: u64, addr: u64, rmw: bool) -> EventRecord {
    let mem = MemRef::new(addr, 8);
    EventRecord::instr(
        Rid(rid),
        if rmw {
            Instr::Rmw {
                mem,
                reg: Reg::new(0),
            }
        } else {
            Instr::Store {
                dst: mem,
                src: Reg::new(0),
            }
        },
    )
}

/// One worker's slice of the read-VC cycling soak: per iteration, threads
/// `ta` and `tb` both read a fresh word (inflating it to an interned
/// two-entry vector clock — distinct every iteration because `ta`'s clock
/// advances at each sync publish), then `tb` acquires `ta`'s release and
/// writes the word, demoting it back to a packed epoch and releasing the
/// iteration's unique VC id for the epoch-gated free. `sync` bounds
/// worker skew exactly as in the mask-cycling soak.
fn cycle_read_vcs(
    conc: &HappensBeforeConcurrent,
    iterations: u64,
    sync_word: u64,
    addr_base: u64,
    (ta, tb): (u16, u16),
    sync: &Barrier,
) {
    let mut rid = [1u64; 2];
    let mut next = |side: usize| {
        rid[side] += 1;
        rid[side]
    };
    for i in 0..iterations {
        let addr = addr_base + i * 4;
        // Two readers inflate the fresh word to an interned read VC.
        conc.apply(ThreadId(ta), &rec_access(next(0), addr, false), None);
        conc.apply(ThreadId(tb), &rec_access(next(1), addr, false), None);
        // ta releases (publishing its clock, bumping it for the next
        // iteration's distinct VC); tb acquires, ordering both reads
        // before its write.
        conc.apply(ThreadId(ta), &rec_sync(next(0), sync_word, false), None);
        conc.apply(ThreadId(tb), &rec_sync(next(1), sync_word, true), None);
        // The ordered write demotes the word to a packed write epoch and
        // releases the interned id.
        conc.apply(ThreadId(tb), &rec_access(next(1), addr, true), None);
        if i % 64 == 0 {
            conc.epoch_boundary(ThreadId(ta));
            conc.epoch_boundary(ThreadId(tb));
        }
        if i % 256 == 0 {
            sync.wait();
        }
    }
    conc.stream_done(ThreadId(ta));
    conc.stream_done(ThreadId(tb));
}

#[test]
fn hb_interner_residency_is_bounded_over_read_vc_cycling() {
    // Two OS threads, four monitored streams, disjoint address and sync
    // spaces: each iteration interns a fresh two-reader vector clock and
    // releases it via the ordered write — cycling far more distinct VCs
    // through the interner than its peak residency, without saturating.
    let iterations: u64 = if full_profile() { 500_000 } else { 20_000 };
    let sync_space = paralog::lifeguards::lockset::SYNC_SPACE_START;
    let conc = Arc::new(HappensBeforeConcurrent::new(4));
    let sync = Arc::new(Barrier::new(2));
    let workers: Vec<_> = [
        (sync_space, 0x0100_0000u64, (0u16, 1u16)),
        (sync_space + 128, 0x0500_0000, (2, 3)),
    ]
    .into_iter()
    .map(|(sync_word, addr_base, tids)| {
        let conc = Arc::clone(&conc);
        let sync = Arc::clone(&sync);
        thread::spawn(move || cycle_read_vcs(&conc, iterations, sync_word, addr_base, tids, &sync))
    })
    .collect();
    for w in workers {
        w.join().expect("soak worker must not panic");
    }

    assert!(!conc.degraded(), "cycling must never exhaust the id space");
    assert!(
        conc.session_events().is_empty(),
        "no degradation diagnostics on a healthy run"
    );
    assert!(
        conc.violations().is_empty(),
        "sync-ordered sharing must stay silent: {:?}",
        conc.violations()
    );
    // Steady state: a few in-flight VCs per worker plus up to one barrier
    // interval (256 iterations × 2 workers) of pending frees.
    let peak = conc.peak_interned_vcs();
    assert!(
        peak <= 4096,
        "peak interner residency {peak} is not bounded ({} VCs cycled)",
        2 * iterations
    );
    let live = conc.interned_vcs();
    assert!(live <= 64, "quiesced interner still holds {live} VCs");
}

#[test]
fn hb_interner_exhaustion_degrades_soundly_past_two_to_the_sixteen() {
    // An adversarial workload pins more than 2^16 *distinct* two-reader
    // vector clocks live at once (no word is ever written, so no id is
    // ever released, and no boundary can free a referenced id). The
    // interner must saturate — completing the session with exactly one
    // DegradedPrecision diagnostic and sound (never-miss) reporting on
    // the degraded words.
    let conc = HappensBeforeConcurrent::new(2);
    let sync_word = paralog::lifeguards::lockset::SYNC_SPACE_START;

    // A genuine unordered race first, while precision is intact.
    conc.apply(ThreadId(0), &rec_access(1, 0xFF_0000, true), None);
    conc.apply(ThreadId(1), &rec_access(1, 0xFF_0000, true), None);
    assert_eq!(conc.violations().len(), 1, "pre-saturation race reports");

    // Thread 0 bumps its clock before each fresh word, so every word's
    // two-entry read VC is a distinct interned value. 66_000 > 2^16 words
    // exhaust the id space.
    let mut rid = [2u64, 2u64];
    let mut next = |side: usize| {
        rid[side] += 1;
        rid[side]
    };
    let word = |i: u64| 0x0100_0000 + i * 4;
    for i in 1u64..=66_000 {
        conc.apply(ThreadId(0), &rec_sync(next(0), sync_word, false), None);
        conc.apply(ThreadId(0), &rec_access(next(0), word(i), false), None);
        conc.apply(ThreadId(1), &rec_access(next(1), word(i), false), None);
        // Boundaries must not help: every VC is still referenced.
        if i % 4096 == 0 {
            conc.epoch_boundary(ThreadId(0));
            conc.epoch_boundary(ThreadId(1));
        }
    }

    assert!(conc.degraded(), "66k live read VCs must exhaust 2^16 ids");
    let events = conc.session_events();
    assert_eq!(events.len(), 1, "one diagnostic per session");
    let SessionEvent::DegradedPrecision { lifeguard, detail } = &events[0];
    assert_eq!(*lifeguard, "HappensBefore");
    assert!(detail.contains("vector-clock interner"), "got: {detail}");
    // Read-read sharing is race-free: saturation must not have fabricated
    // reports while the words were only being created.
    assert_eq!(
        conc.violations().len(),
        1,
        "saturation alone must not fabricate race reports"
    );
    // Soundness of the degradation: a word that spilled after exhaustion
    // lost its ordering metadata, so a later access — even a trivially
    // hb-ordered same-thread re-read — must report rather than risk
    // missing a real race.
    conc.apply(ThreadId(0), &rec_access(next(0), word(66_000), false), None);
    assert_eq!(
        conc.violations().len(),
        2,
        "degraded words must report later accesses (spurious but sound)"
    );
}

/// Reclamation races the sweep against concurrent producers on the *same*
/// shard: many producer threads publish into one consumer's rid space while
/// it consumes and advances epochs. This is the TSan target for the
/// cell-lock/spill/spare hand-offs.
#[test]
fn epoch_sweep_races_cleanly_with_many_producers() {
    let windows: u64 = if full_profile() { 16 } else { 2 };
    let producers = 4u64;
    let chunks =
        windows * (ConcurrentVersionTable::WINDOW_RIDS / ConcurrentVersionTable::CHUNK_RIDS);
    let table = Arc::new(ConcurrentVersionTable::new(2));
    let range = AddrRange::new(0x2000_0000, 4);
    let vid = |c: u64| VersionId {
        consumer: ThreadId(1),
        consumer_rid: Rid(c * ConcurrentVersionTable::CHUNK_RIDS + 7),
    };
    // Chunk c is produced by thread c % producers: adjacent chunks come
    // from different threads, so creates, drains and sweeps interleave.
    // Backpressure sleeps rather than spin-yields: the soak must also pass
    // on a single hardware thread without starving the consumer.
    let cursor = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let table = Arc::clone(&table);
            let cursor = Arc::clone(&cursor);
            thread::spawn(move || {
                for c in (p..chunks).step_by(producers as usize) {
                    while c.saturating_sub(cursor.load(Ordering::Acquire)) >= PRODUCER_LEAD as u64 {
                        thread::sleep(Duration::from_micros(200));
                    }
                    table.produce(vid(c), range, vec![p as u8; 4], 1);
                }
            })
        })
        .collect();
    for c in 0..chunks {
        // `wait_available` is a single park that any produce on the shard
        // wakes; loop around it (as the backend does) until our chunk lands.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while !table.wait_available(vid(c), Duration::from_millis(50)) {
            assert!(
                std::time::Instant::now() < deadline,
                "chunk {c}: no producer delivered"
            );
        }
        table.consume(vid(c)).expect("available implies consumable");
        cursor.store(c, Ordering::Release);
        if c % CHUNKS_PER_EPOCH == 0 {
            table.advance_epoch(ThreadId(1));
        }
    }
    for h in handles {
        h.join().expect("producer must not panic");
    }
    table.advance_epoch(ThreadId(1));
    table.advance_epoch(ThreadId(1));

    assert_eq!(table.outstanding(), 0);
    let peak = table.peak_dense_resident();
    assert!(
        peak <= 4 * PRODUCER_LEAD,
        "peak residency {peak} chunks under {producers} racing producers"
    );
    assert!(table.reclaimed_chunks() >= chunks - peak as u64);
}

/// Open file descriptors for this process (linux); `None` elsewhere so
/// the churn soak still runs its residency assertions.
#[cfg(unix)]
fn open_fds() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd").ok().map(|d| d.count())
}

/// Attach/detach churn against one long-lived daemon: every iteration
/// attaches two sessions over fresh Unix-socket connections, streams one
/// to completion and detaches the other mid-stream, then waits for both
/// to settle. Session state must fully drain (`resident_sessions` back to
/// zero) and the process must not leak fds across the churn.
#[cfg(unix)]
#[test]
fn daemon_attach_detach_churn_leaves_no_residue() {
    use paralog::daemon::client::{Control, Producer};
    use paralog::daemon::proto::AttachRequest;
    use paralog::daemon::supervisor::{Daemon, DaemonConfig};
    use paralog::events::codec::encode;
    use paralog::lifeguards::LifeguardKind;
    use std::time::Instant;

    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let recs: Vec<EventRecord> = (1..=64u64)
        .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
        .collect();
    let encoded = encode(&recs);
    // A record-aligned prefix: the chained-checksum codec makes the
    // encoding of a record prefix a byte prefix of the full encoding.
    let prefix = encode(&recs[..32]);
    assert!(encoded.starts_with(&prefix));

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut config = DaemonConfig::new(
        dir.join(format!("plgd-churn-{pid}-d.sock")),
        dir.join(format!("plgd-churn-{pid}-c.sock")),
    );
    config.workers = 2;
    let daemon = Daemon::spawn(config).expect("daemon spawns");

    let iterations = if full_profile() { 400 } else { 25 };
    let mut baseline_fds = None;
    for i in 0..iterations {
        let attach = |name: &str, kind: LifeguardKind| AttachRequest {
            name: name.into(),
            lifeguard: kind.name().into(),
            threads: 1,
            tso: false,
            heap,
            mode: paralog::core::BackendMode::Auto,
        };
        let mut full = Producer::attach(
            daemon.data_socket(),
            &attach("churn-full", LifeguardKind::TaintCheck),
        )
        .expect("attach streams-to-completion session");
        let mut cut = Producer::attach(
            daemon.data_socket(),
            &attach("churn-cut", LifeguardKind::MemCheck),
        )
        .expect("attach detached-mid-stream session");
        let (full_id, cut_id) = (full.session_id(), cut.session_id());

        full.send(0, &encoded).unwrap();
        full.finish().unwrap();
        // The cut session gets a record-aligned prefix, then a DETACH.
        cut.send(0, &prefix).unwrap();

        let mut ctl = Control::connect(daemon.control_socket()).unwrap();
        // Wait for the prefix to be pumped and applied before detaching —
        // detach closes the feeds wherever the pump got to, and cutting
        // mid-record is (correctly) a MalformedStream failure, which is
        // the corruption suite's territory, not the churn's.
        let applied = Instant::now() + Duration::from_secs(30);
        loop {
            let status = ctl.status(cut_id).unwrap();
            let records = status
                .iter()
                .find_map(|l| l.strip_prefix("records "))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if records >= 32 {
                break;
            }
            assert!(
                Instant::now() < applied,
                "iteration {i}: prefix never applied: {status:?}"
            );
            thread::sleep(Duration::from_millis(2));
        }
        ctl.detach(cut_id).unwrap();
        drop(cut);

        let deadline = Instant::now() + Duration::from_secs(30);
        for id in [full_id, cut_id] {
            loop {
                let status = ctl.status(id).unwrap();
                let state = status
                    .iter()
                    .find_map(|l| l.strip_prefix("state "))
                    .expect("state line");
                if state == "done" || state == "failed" {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "iteration {i}: session {id} never settled: {status:?}"
                );
                thread::sleep(Duration::from_millis(5));
            }
        }
        assert_eq!(
            daemon.resident_sessions(),
            0,
            "iteration {i}: drained sessions still hold replay state"
        );
        // Let the first iterations warm up lazily-created fds (threads,
        // epoll-free accept loops), then hold the line.
        if i == 2 {
            baseline_fds = open_fds();
        }
    }
    if let Some(base) = baseline_fds {
        let now = open_fds().expect("fd table readable once it was before");
        assert!(now <= base + 8, "fd growth across churn: {base} -> {now}");
    }
    let reports = daemon.shutdown();
    assert_eq!(reports.len(), 2 * iterations);
    for r in &reports {
        assert!(
            r.result.is_ok(),
            "session {} ({}): {:?}",
            r.id,
            r.name,
            r.result
        );
    }
}

// ---------------------------------------------------------------------------
// Adversarial presets: each generator is paired with the bound it stresses
// ---------------------------------------------------------------------------

/// Replays an adversarial capture through the cooperative lane machinery
/// (the daemon's form) to completion, round-robin with a small budget so
/// lanes genuinely interleave and gate on each other.
fn coop_replay(
    kind: LifeguardKind,
    cap: &AdversarialCapture,
    mode: BackendMode,
) -> (CoopSession, paralog::core::RunMetrics) {
    let streams: Vec<Box<dyn RecordStream>> = cap
        .streams
        .iter()
        .cloned()
        .map(|s| Box::new(BufferedStream::new(s)) as Box<dyn RecordStream>)
        .collect();
    let (session, mut lanes) =
        CoopSession::start_with_mode(&kind, cap.heap, streams, None, mode).expect("session starts");
    while !session.is_complete() {
        for lane in &mut lanes {
            lane.step(64);
        }
    }
    let metrics = session
        .report()
        .expect("complete")
        .unwrap_or_else(|e| panic!("{}: adversarial replay failed: {e}", cap.name));
    (session, metrics)
}

/// Preset `cycle_lock_masks` vs its bound: cycling far more distinct lock
/// combinations than the 2^16 id space keeps `peak_interned_masks` small,
/// precision intact, and consistently locked sharing silent.
#[test]
fn adversarial_lock_mask_cycling_stays_bounded() {
    let iterations: u64 = if full_profile() { 200_000 } else { 10_000 };
    let cap = adversarial::cycle_lock_masks(iterations);
    let conc = LockSetConcurrent::new(2);
    // Record-by-record round-robin: the refinement writes interleave
    // deterministically between the two monitored threads.
    let mut cursors = [0usize; 2];
    let mut applied_since_boundary = 0u64;
    loop {
        let mut progressed = false;
        for (t, cursor) in cursors.iter_mut().enumerate() {
            if let Some(rec) = cap.streams[t].get(*cursor) {
                conc.apply(ThreadId(t as u16), rec, None);
                *cursor += 1;
                progressed = true;
                applied_since_boundary += 1;
                if applied_since_boundary.is_multiple_of(512) {
                    conc.epoch_boundary(ThreadId(0));
                    conc.epoch_boundary(ThreadId(1));
                }
            }
        }
        if !progressed {
            break;
        }
    }
    conc.stream_done(ThreadId(0));
    conc.stream_done(ThreadId(1));

    assert!(!conc.degraded(), "bound violated: {}", cap.bound);
    assert!(
        conc.violations().is_empty(),
        "locked sharing must stay silent: {:?}",
        conc.violations()
    );
    let peak = conc.peak_interned_masks();
    assert!(
        peak <= 2048,
        "peak interner residency {peak} breaks the bound ({} combinations cycled): {}",
        iterations,
        cap.bound
    );
}

/// Preset `exhaust_read_vcs` vs its bound: pinning more live read VCs than
/// the id space must degrade with *exactly one* `DegradedPrecision`
/// diagnostic — surfaced through the cooperative session's event channel,
/// the same path `paralogd ctl STATUS` reports.
#[test]
fn adversarial_read_vc_exhaustion_degrades_exactly_once() {
    // 66_000 > 2^16 is the exhaustion threshold; the preset cannot be
    // scaled below it and still hit its bound.
    let cap = adversarial::exhaust_read_vcs(66_000, paralog::lifeguards::lockset::SYNC_SPACE_START);
    let (_, metrics) = coop_replay(
        LifeguardKind::HappensBefore,
        &cap,
        BackendMode::CasPerAccess,
    );
    assert_eq!(metrics.records, cap.records());
    let degradations = metrics
        .events
        .iter()
        .filter(|e| matches!(e, SessionEvent::DegradedPrecision { .. }))
        .count();
    assert_eq!(
        degradations,
        1,
        "bound violated ({} events total): {}",
        metrics.events.len(),
        cap.bound
    );
    assert!(
        metrics.violations.is_empty(),
        "read-only sharing must not fabricate race reports on saturation"
    );
}

/// Preset `rid_sweep` vs its bound: versions whose consumer rids stride
/// one chunk apart sweep whole reclamation windows; the epoch sweep must
/// keep `peak_dense_resident` near the producer/consumer lead and reclaim
/// nearly every drained chunk.
#[test]
fn adversarial_rid_sweep_reclaims_version_chunks() {
    let versions: u64 = if full_profile() { 131_072 } else { 8_192 };
    let cap = adversarial::rid_sweep(versions, ConcurrentVersionTable::CHUNK_RIDS);
    let (session, metrics) =
        coop_replay(LifeguardKind::TaintCheck, &cap, BackendMode::CasPerAccess);
    assert_eq!(metrics.versions_produced, versions);
    assert_eq!(metrics.versions_consumed, versions);
    let peak = session.version_peak_resident();
    assert!(
        peak as u64 <= 2048,
        "peak residency {peak} chunks over a {versions}-chunk sweep: {}",
        cap.bound
    );
    assert!(
        session.version_reclaimed() >= versions - peak as u64,
        "sweep reclaimed only {} of {versions} chunks: {}",
        session.version_reclaimed(),
        cap.bound
    );
}

/// Preset `arc_fanout` vs its bound: a capture where nearly every record
/// gates on a peer must still drain on both the deterministic round-robin
/// backend and the cooperative lanes — gating is stalling, never deadlock —
/// and the stall traffic must show up in the order-wait phase.
#[test]
fn adversarial_arc_fanout_replays_without_deadlock() {
    use paralog::core::{DeterministicBackend, MonitorSession, ReplaySource};
    let rounds: u64 = if full_profile() { 20_000 } else { 2_000 };
    let cap = adversarial::arc_fanout(6, rounds);

    let det = MonitorSession::builder()
        .source(ReplaySource::new(cap.streams.clone(), cap.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap_or_else(|e| panic!("bound violated ({e}): {}", cap.bound))
        .metrics;
    assert_eq!(det.records, cap.records());
    assert!(
        det.dependence_stalls > 0,
        "the storm never gated — it is not adversarial"
    );
    let phases = det.phases.expect("replay reports phases");
    assert!(
        phases.order_wait > 0,
        "stall traffic must surface in the order-wait phase"
    );

    let (_, coop) = coop_replay(LifeguardKind::TaintCheck, &cap, BackendMode::CasPerAccess);
    assert_eq!(
        coop.fingerprint, det.fingerprint,
        "gating pressure must not change the analysis result"
    );
}

/// Preset `delta_thrash` vs its bound: ordered events at nearly every
/// record force a delta-merge lane to flush its private window constantly;
/// the thrashed delta replay must stay fingerprint-identical to
/// CAS-per-access.
#[test]
fn adversarial_delta_thrash_keeps_mode_parity() {
    let rounds: u64 = if full_profile() { 50_000 } else { 5_000 };
    let cap = adversarial::delta_thrash(4, rounds);
    let (_, cas) = coop_replay(LifeguardKind::TaintCheck, &cap, BackendMode::CasPerAccess);
    let (_, delta) = coop_replay(LifeguardKind::TaintCheck, &cap, BackendMode::DeltaMerge);
    assert_eq!(cas.records, cap.records());
    assert_eq!(delta.records, cap.records());
    assert_eq!(
        delta.fingerprint, cas.fingerprint,
        "bound violated: {}",
        cap.bound
    );
    assert_eq!(
        delta.violations.len(),
        cas.violations.len(),
        "modes must agree on violations under flush thrash"
    );
}
