//! The composable `MonitorSession` API: cross-backend equivalence and the
//! open lifeguard registry.
//!
//! The tentpole invariants:
//!
//! * the **same session** (source × lifeguard × config) produces identical
//!   violations and shadow fingerprints on the deterministic and the
//!   real-threaded backend;
//! * pre-captured streams ingested through a `ReplaySource` — raw or via
//!   the compressed codec wire form — reproduce the live capture's final
//!   metadata;
//! * a custom lifeguard defined *here*, outside `crates/lifeguards`, runs
//!   through `MonitorSession` (directly and via the registry) with no edits
//!   to platform code.

use paralog::core::{
    DeterministicBackend, MonitorConfig, MonitorSession, MonitoringMode, Platform, PushSource,
    ReplaySource, SessionError, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::events::{
    AccessKind, AddrRange, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, MemRef, MetaOp,
    Reg, Rid, SyscallKind, ThreadId,
};
use paralog::lifeguards::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardFactory,
    LifeguardFamily, LifeguardKind, LifeguardRegistry, LifeguardSpec, Violation, ViolationKind,
};
use paralog::order::CaPolicy;
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};
use std::cell::RefCell;
use std::rc::Rc;

fn workload(bench: Benchmark, threads: usize) -> Workload {
    WorkloadSpec::benchmark(bench, threads).scale(0.05).build()
}

fn violation_keys(violations: &[Violation]) -> Vec<(u16, u64, ViolationKind)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.tid.0, v.rid.0, v.kind))
        .collect();
    keys.sort_by_key(|&(tid, rid, _)| (tid, rid));
    keys
}

#[test]
fn deterministic_and_threaded_backends_agree() {
    for bench in [Benchmark::Fluidanimate, Benchmark::Barnes] {
        let w = workload(bench, 4);
        let det = MonitorSession::builder()
            .source(w.clone())
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let thr = MonitorSession::builder()
            .source(w)
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            det.metrics.fingerprint, thr.metrics.fingerprint,
            "{bench}: backends disagree on final metadata"
        );
        assert!(
            thr.metrics.matches_reference(),
            "{bench}: threaded replay diverged from its own capture"
        );
        assert_eq!(
            violation_keys(det.metrics.violations.as_slice()),
            violation_keys(thr.metrics.violations.as_slice()),
            "{bench}: backends disagree on violations"
        );
    }
}

#[test]
fn replay_source_reproduces_live_capture() {
    let w = workload(Benchmark::Barnes, 4);
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let live = Platform::run(&w, &cfg).metrics;
    let streams = live.streams.clone().expect("collection enabled");

    // Raw streams through the deterministic (lifeguard-only) backend.
    let replay = MonitorSession::builder()
        .source(ReplaySource::new(streams.clone(), w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(replay.metrics.fingerprint, live.fingerprint);
    assert_eq!(replay.metrics.records, live.records);
    assert_eq!(
        violation_keys(&replay.metrics.violations),
        violation_keys(&live.violations)
    );

    // The same streams through the codec wire form.
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
    let decoded = MonitorSession::builder()
        .source(ReplaySource::from_encoded(&encoded, w.heap).expect("lossless codec"))
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(decoded.metrics.fingerprint, live.fingerprint);

    // And through the real-thread backend: three-way agreement.
    let threaded = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(threaded.metrics.fingerprint, live.fingerprint);
}

#[test]
fn push_source_feeds_an_online_session() {
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let buf = AddrRange::new(0x1000_0000, 16);
    let mut src = PushSource::new(1, heap);
    // An online feed: unverified input arrives, flows into a register, and
    // is used as a jump target.
    src.push(
        0,
        EventRecord::ca(
            Rid(1),
            CaRecord {
                what: HighLevelKind::Syscall(SyscallKind::ReadInput),
                phase: CaPhase::End,
                range: Some(buf),
                issuer: ThreadId(0),
                issuer_rid: Rid(1),
                seq: u64::MAX,
            },
        ),
    );
    src.emit(
        0,
        Instr::Load {
            dst: Reg::new(0),
            src: MemRef::new(buf.start, 4),
        },
    );
    src.emit(
        0,
        Instr::JmpReg {
            target: Reg::new(0),
        },
    );

    let out = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.metrics.records, 3);
    assert_eq!(out.metrics.violations.len(), 1);
    assert_eq!(out.metrics.violations[0].kind, ViolationKind::TaintedJump);
    assert_eq!(out.metrics.violations[0].rid, Rid(3));
}

#[test]
fn threaded_backend_replays_tso_workloads() {
    // TSO captures carry §5.5 versioned metadata; the threaded backend now
    // resolves the produce/consume annotations against its shared
    // `ConcurrentVersionTable` instead of rejecting the plan.
    for bench in [Benchmark::Lu, Benchmark::Ocean] {
        let w = workload(bench, 4);
        let out = MonitorSession::builder()
            .source(w)
            .config(
                MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck).with_tso(),
            )
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            out.metrics.matches_reference(),
            "{bench}: TSO threaded replay diverged from its deterministic capture"
        );
        assert_eq!(
            out.metrics.versions_produced, out.metrics.versions_consumed,
            "{bench}: every produced version must find its consumer"
        );
    }
}

#[test]
fn every_bundled_lifeguard_replays_threaded_lock_free() {
    // Every bundled analysis replays on the real-thread backend through its
    // hand-written lock-free §5.3 form (the generic `LockedConcurrent`
    // adapter is retired for bundled kinds; see tests/concurrent_lifeguards.rs
    // for the retirement regression) — and must agree with the deterministic
    // backend on final metadata and violations.
    let w = workload(Benchmark::Fluidanimate, 4);
    for kind in [
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::LockSet,
    ] {
        let det = MonitorSession::builder()
            .source(w.clone())
            .lifeguard(kind)
            .backend(DeterministicBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let thr = MonitorSession::builder()
            .source(w.clone())
            .lifeguard(kind)
            .backend(ThreadedBackend)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            det.metrics.fingerprint, thr.metrics.fingerprint,
            "{kind}: locked threaded replay disagrees on final metadata"
        );
        assert!(
            thr.metrics.matches_reference(),
            "{kind}: threaded replay diverged from its own capture"
        );
        assert_eq!(
            violation_keys(&det.metrics.violations),
            violation_keys(&thr.metrics.violations),
            "{kind}: locked threaded replay disagrees on violations"
        );
    }
}

#[test]
fn syscall_race_violations_agree_across_backends() {
    // §5.4 parity: thread 1 has a read() in flight (CA-Begin .. CA-End with
    // a buffer range, broadcast into every stream); thread 0 touches the
    // buffer inside the window. The deterministic backend polices the range
    // table during ingestion — the threaded backend must now report the
    // *same* SyscallRace (and downstream taint) instead of silently
    // diverging on racy-syscall workloads.
    let heap = AddrRange::new(0x1000_0000, 0x10000);
    let buf = AddrRange::new(heap.start + 0x100, 32);
    let ca = |phase, rid: u64| {
        EventRecord::ca(
            Rid(rid),
            CaRecord {
                what: HighLevelKind::Syscall(SyscallKind::ReadInput),
                phase,
                range: Some(buf),
                issuer: ThreadId(1),
                issuer_rid: Rid(rid),
                seq: u64::MAX,
            },
        )
    };
    let mut src = PushSource::new(2, heap);
    // Thread 0's stream: the broadcast CA window around a racing load, and
    // a jump consuming the (conservatively tainted) loaded value.
    src.push(0, ca(CaPhase::Begin, 1));
    src.push(
        0,
        EventRecord::instr(
            Rid(2),
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(buf.start + 4, 4),
            },
        ),
    );
    src.push(0, ca(CaPhase::End, 3));
    src.push(
        0,
        EventRecord::instr(
            Rid(4),
            Instr::JmpReg {
                target: Reg::new(0),
            },
        ),
    );
    // Thread 1's stream: its own copies of the CA records.
    src.push(1, ca(CaPhase::Begin, 1));
    src.push(1, ca(CaPhase::End, 2));

    let det = MonitorSession::builder()
        .source(src.clone())
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(DeterministicBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let thr = MonitorSession::builder()
        .source(src.clone())
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let det_keys = violation_keys(&det.metrics.violations);
    assert!(
        det_keys
            .iter()
            .any(|&(_, _, kind)| kind == ViolationKind::SyscallRace),
        "deterministic ingestion must flag the racing access"
    );
    assert!(
        det_keys
            .iter()
            .any(|&(_, _, kind)| kind == ViolationKind::TaintedJump),
        "conservative taint must reach the jump"
    );
    assert_eq!(
        det_keys,
        violation_keys(&thr.metrics.violations),
        "threaded backend diverges on racy-syscall violations"
    );
    assert_eq!(det.metrics.fingerprint, thr.metrics.fingerprint);

    // The lock-free forms police the same table: AddrCheck subscribes to
    // no syscall ranges, so both backends must agree there too (no spurious
    // hits from a policy-less range table).
    let det = MonitorSession::builder()
        .source(src.clone())
        .lifeguard(LifeguardKind::AddrCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let thr = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::AddrCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        violation_keys(&det.metrics.violations),
        violation_keys(&thr.metrics.violations)
    );
    assert_eq!(det.metrics.fingerprint, thr.metrics.fingerprint);
}

#[test]
fn truncated_streams_are_reported_as_deadlock() {
    // Thread 1's record depends on a producer record that never appears
    // (truncated capture): ingestion must fail loudly, not hang.
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    let mut src = PushSource::new(2, heap);
    src.emit(0, Instr::Nop);
    let mut dependent = EventRecord::instr(
        Rid(1),
        Instr::Load {
            dst: Reg::new(0),
            src: MemRef::new(heap.start, 4),
        },
    );
    dependent.arcs.push(paralog::events::DependenceArc::new(
        ThreadId(0),
        Rid(99),
        paralog::events::ArcKind::Raw,
    ));
    src.push(1, dependent);
    let err = MonitorSession::builder()
        .source(src.clone())
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .err();
    assert!(matches!(err, Some(SessionError::Deadlock(_))));
    // The threaded backend must report the same condition (after its
    // no-global-progress grace window) instead of hanging forever.
    let err = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .err();
    assert!(matches!(err, Some(SessionError::Deadlock(_))));
}

#[test]
fn empty_sources_are_rejected_by_both_backends() {
    let heap = AddrRange::new(0x1000_0000, 0x1000);
    for backend in [false, true] {
        let builder = MonitorSession::builder()
            .source(ReplaySource::new(Vec::new(), heap))
            .lifeguard(LifeguardKind::TaintCheck);
        let builder = if backend {
            builder.backend(ThreadedBackend)
        } else {
            builder.backend(DeterministicBackend)
        };
        let err = builder.build().unwrap().run().err();
        assert_eq!(err, Some(SessionError::EmptySource));
    }
}

// --- a custom lifeguard defined entirely outside `crates/lifeguards` -------

/// Analysis-wide state of the out-of-tree example: per-thread write tallies
/// and a forbidden address range.
#[derive(Debug)]
struct TallyShared {
    writes: Vec<u64>,
    forbidden: AddrRange,
}

/// A write-tally / forbidden-range lifeguard: counts every memory write per
/// thread and reports a violation when one lands in the forbidden range.
#[derive(Debug)]
struct WriteTally {
    shared: Rc<RefCell<TallyShared>>,
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl Lifeguard for WriteTally {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        if let MetaOp::CheckAccess {
            mem,
            kind: AccessKind::Write | AccessKind::Rmw,
        } = op
        {
            let mut shared = self.shared.borrow_mut();
            shared.writes[self.tid.index()] += 1;
            if shared.forbidden.overlaps(&mem.range()) {
                ctx.report(Violation {
                    tid: self.tid,
                    rid,
                    kind: ViolationKind::UnallocatedAccess,
                    addr: Some(mem.addr),
                });
            }
        }
    }

    fn handle_ca(&mut self, _ca: &CaRecord, _own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {}

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (t, n) in shared.writes.iter().enumerate() {
            fp.mix(t as u64, *n);
        }
        fp.finish()
    }
}

#[derive(Debug)]
struct WriteTallyFactory {
    forbidden: AddrRange,
    threads: usize,
}

impl LifeguardFactory for WriteTallyFactory {
    fn name(&self) -> &str {
        "WriteTally"
    }

    fn build(&self, _heap: AddrRange) -> LifeguardFamily {
        let shared = Rc::new(RefCell::new(TallyShared {
            writes: vec![0; self.threads],
            forbidden: self.forbidden,
        }));
        LifeguardFamily::from_constructor("WriteTally", move |tid| {
            Box::new(WriteTally {
                shared: Rc::clone(&shared),
                tid,
                spec: LifeguardSpec {
                    name: "WriteTally",
                    view: EventView::Check,
                    uses_it: false,
                    uses_if: false,
                    uses_mtlb: false,
                    ca_policy: CaPolicy::new(),
                    bits_per_byte: 0,
                    atomicity: AtomicityClass::SyncFree,
                },
            })
        })
    }
}

#[test]
fn custom_lifeguard_runs_through_the_session_api() {
    let w = workload(Benchmark::Lu, 2);
    // Forbid part of the private working set so violations actually fire.
    let forbidden = AddrRange::new(paralog::workloads::PRIVATE_BASE, 0x400);
    let factory = WriteTallyFactory {
        forbidden,
        threads: w.thread_count(),
    };
    let out = MonitorSession::builder()
        .source(w.clone())
        .lifeguard_factory(factory)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(out.metrics.records > 0);
    assert!(
        out.metrics.delivered_ops > 0,
        "custom analysis received deliveries"
    );
    assert!(
        !out.metrics.violations.is_empty(),
        "forbidden-range writes must be reported"
    );
    assert!(out
        .metrics
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::UnallocatedAccess));

    // The same analysis resolved through an open registry, driving a replay
    // source instead of the simulator — no platform edits anywhere.
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let streams = Platform::run(&w, &cfg).metrics.streams.expect("collected");
    let mut registry = LifeguardRegistry::builtin();
    registry.register(WriteTallyFactory {
        forbidden,
        threads: w.thread_count(),
    });
    let replayed = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .registry(registry)
        .lifeguard_named("WriteTally")
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        replayed.metrics.fingerprint, out.metrics.fingerprint,
        "write tallies agree between live capture and replay ingestion"
    );
}

#[test]
fn shadowing_a_builtin_name_does_not_inherit_its_reference() {
    // A custom factory registered under a bundled name must NOT get that
    // bundled analysis' sequential reference attached: the reference would
    // compare TaintCheck metadata against a foreign analysis.
    #[derive(Debug)]
    struct Impostor;
    impl LifeguardFactory for Impostor {
        fn name(&self) -> &str {
            "TaintCheck"
        }
        fn build(&self, heap: AddrRange) -> LifeguardFamily {
            LifeguardKind::MemCheck.build(heap)
        }
    }

    let w = workload(Benchmark::Lu, 2);
    let mut registry = LifeguardRegistry::builtin();
    registry.register(Impostor);
    let out = MonitorSession::builder()
        .source(w.clone())
        .registry(registry)
        .lifeguard_named("TaintCheck")
        .config(
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_equivalence_check(),
        )
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        out.metrics.reference_fingerprint, None,
        "custom factories run without a bundled reference"
    );
    // The genuine builtin resolved by name still gets one.
    let genuine = MonitorSession::builder()
        .source(w)
        .lifeguard_named("TaintCheck")
        .config(
            MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_equivalence_check(),
        )
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(genuine.metrics.reference_fingerprint.is_some());
    assert!(genuine.metrics.matches_reference());
}
