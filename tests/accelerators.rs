//! Accelerator behaviour at platform scale: absorption and hit rates,
//! delayed-advertising bounds, and ConflictAlert flush accounting.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

#[test]
fn inheritance_tracking_absorbs_most_dataflow_events() {
    // Compute- and copy-heavy streaming code is what IT exists for.
    let w = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.2).build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    let total = m.it.absorbed + m.delivered_ops;
    let absorption = m.it.absorbed as f64 / total as f64;
    assert!(
        absorption > 0.5,
        "IT should absorb most of LU's events, got {absorption:.2}"
    );
}

#[test]
fn idempotent_filter_hits_on_temporal_reuse() {
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 2)
        .scale(0.2)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    )
    .metrics;
    assert!(m.ifilter.hits > 0, "reused addresses must hit the filter");
    // Allocation-library CAs invalidate range-selectively; whether any
    // cached entry overlaps a freed range depends on access patterns, so
    // only require that the filter was actually exercised.
    assert!(m.ifilter.misses > 0);
}

#[test]
fn mtlb_hit_rate_is_high_on_paged_working_sets() {
    let w = WorkloadSpec::benchmark(Benchmark::Ocean, 2)
        .scale(0.2)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    assert!(
        m.mtlb.hit_rate() > 0.9,
        "streaming metadata pages should hit, got {:.2}",
        m.mtlb.hit_rate()
    );
}

#[test]
fn accelerators_reduce_delivered_ops() {
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
        .scale(0.2)
        .build();
    let with = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    let without = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .without_accelerators(),
    )
    .metrics;
    assert!(
        with.delivered_ops * 2 < without.delivered_ops,
        "IT must at least halve deliveries: {} vs {}",
        with.delivered_ops,
        without.delivered_ops
    );
}

#[test]
fn it_threshold_bounds_flush_behaviour() {
    // A tiny advertising-lag threshold forces frequent refreshes; a huge one
    // never fires. Both stay correct (covered by equivalence tests); here we
    // check the accounting moves in the right direction.
    let w = WorkloadSpec::benchmark(Benchmark::Fmm, 2)
        .scale(0.2)
        .build();
    let mut tight = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    tight.it_threshold = Some(8);
    let mut loose = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    loose.it_threshold = Some(1_000_000);
    let t = Platform::run(&w, &tight).metrics;
    let l = Platform::run(&w, &loose).metrics;
    assert!(
        t.it.threshold_flushes > l.it.threshold_flushes,
        "tight threshold must flush more ({} vs {})",
        t.it.threshold_flushes,
        l.it.threshold_flushes
    );
}

#[test]
fn ca_flushes_track_allocation_churn() {
    let churn = WorkloadSpec::benchmark(Benchmark::Swaptions, 2)
        .scale(0.2)
        .build();
    let quiet = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.2).build();
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    let m_churn = Platform::run(&churn, &cfg).metrics;
    let m_quiet = Platform::run(&quiet, &cfg).metrics;
    assert!(
        m_churn.ca_broadcasts > 10 * m_quiet.ca_broadcasts.max(1),
        "swaptions must broadcast far more CAs ({} vs {})",
        m_churn.ca_broadcasts,
        m_quiet.ca_broadcasts
    );
    assert!(
        m_churn.it.ca_flushes > 0,
        "malloc/free CAs flush the IT table"
    );
}

#[test]
fn arc_reduction_eliminates_most_observed_conflicts() {
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
        .scale(0.2)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    assert!(m.capture.observed > 0, "barnes must conflict");
    assert!(
        m.capture.recorded < m.capture.observed,
        "transitive reduction must drop something: {:?}",
        m.capture
    );
}

#[test]
fn dependence_checks_mostly_pass_immediately() {
    // §7: "most of the time when a lifeguard encounters an incoming
    // dependence arc, the dependence has already been satisfied."
    let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
        .scale(0.2)
        .build();
    let m = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    )
    .metrics;
    assert!(
        m.dependence_stalls < m.records,
        "stall episodes ({}) must be far rarer than records ({})",
        m.dependence_stalls,
        m.records
    );
}
