//! The repository's central correctness invariant (DESIGN.md §5.1):
//! parallel monitoring — dependence arcs, delayed advertising, ConflictAlert
//! barriers, TSO versioned metadata — must leave exactly the same final
//! metadata as a sequential analysis applied in the application's global
//! retirement/visibility order.
//!
//! Every run here executes the full platform with the in-line reference
//! enabled and asserts fingerprint equality.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

fn assert_equivalent(bench: Benchmark, kind: LifeguardKind, threads: usize, tso: bool, seed: u64) {
    let w = WorkloadSpec::benchmark(bench, threads)
        .scale(0.08)
        .seed(seed)
        .build();
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind).with_equivalence_check();
    if tso {
        cfg = cfg.with_tso();
    }
    let m = Platform::run(&w, &cfg).metrics;
    assert!(
        m.matches_reference(),
        "{bench} {kind} k={threads} tso={tso} seed={seed}: parallel metadata diverged from \
         the sequential reference (got {:#x}, want {:#x})",
        m.fingerprint,
        m.reference_fingerprint.unwrap_or(0)
    );
}

#[test]
fn taintcheck_sc_all_benchmarks_4_threads() {
    for bench in Benchmark::all() {
        assert_equivalent(bench, LifeguardKind::TaintCheck, 4, false, 11);
    }
}

#[test]
fn taintcheck_sc_thread_sweep_on_sharing_heavy_benchmarks() {
    for threads in [1, 2, 4, 8] {
        assert_equivalent(
            Benchmark::Barnes,
            LifeguardKind::TaintCheck,
            threads,
            false,
            22,
        );
        assert_equivalent(
            Benchmark::Radiosity,
            LifeguardKind::TaintCheck,
            threads,
            false,
            22,
        );
    }
}

#[test]
fn taintcheck_tso_all_benchmarks() {
    for bench in Benchmark::all() {
        assert_equivalent(bench, LifeguardKind::TaintCheck, 4, true, 33);
    }
}

#[test]
fn taintcheck_tso_8_threads_sharing_heavy() {
    assert_equivalent(Benchmark::Barnes, LifeguardKind::TaintCheck, 8, true, 44);
    assert_equivalent(
        Benchmark::Fluidanimate,
        LifeguardKind::TaintCheck,
        8,
        true,
        44,
    );
}

#[test]
fn addrcheck_sc_and_tso() {
    for bench in [Benchmark::Swaptions, Benchmark::Radiosity, Benchmark::Lu] {
        assert_equivalent(bench, LifeguardKind::AddrCheck, 4, false, 55);
        assert_equivalent(bench, LifeguardKind::AddrCheck, 4, true, 55);
    }
}

#[test]
fn memcheck_sc_malloc_heavy() {
    // MemCheck is the §4.1 example: IT state conflicts with malloc/free.
    for bench in [Benchmark::Swaptions, Benchmark::Radiosity] {
        assert_equivalent(bench, LifeguardKind::MemCheck, 4, false, 66);
    }
}

#[test]
fn equivalence_across_seeds() {
    for seed in [1u64, 2, 3, 4, 5] {
        assert_equivalent(
            Benchmark::Fluidanimate,
            LifeguardKind::TaintCheck,
            4,
            false,
            seed,
        );
    }
}

#[test]
fn timesliced_matches_reference_too() {
    // The timesliced baseline consumes a totally-ordered stream; it must
    // agree with the same reference.
    for kind in [LifeguardKind::TaintCheck, LifeguardKind::AddrCheck] {
        let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.08)
            .build();
        let cfg = MonitorConfig::new(MonitoringMode::Timesliced, kind).with_equivalence_check();
        let m = Platform::run(&w, &cfg).metrics;
        assert!(m.matches_reference(), "{kind} timesliced diverged");
    }
}

#[test]
fn capture_policy_variants_preserve_equivalence() {
    use paralog::order::{CapturePolicy, Reduction};
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
        .scale(0.08)
        .build();
    for (policy, reduction) in [
        (CapturePolicy::PerBlock, Reduction::None),
        (CapturePolicy::PerBlock, Reduction::Direct),
        (CapturePolicy::PerBlock, Reduction::Transitive),
        (CapturePolicy::PerCore, Reduction::None),
        (CapturePolicy::PerCore, Reduction::Direct),
        (CapturePolicy::PerCore, Reduction::Transitive),
    ] {
        let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_capture(policy, reduction)
            .with_equivalence_check();
        let m = Platform::run(&w, &cfg).metrics;
        assert!(
            m.matches_reference(),
            "{policy:?}/{reduction:?} diverged — capture policy must never cost correctness"
        );
    }
}

#[test]
fn no_accelerators_preserve_equivalence() {
    let w = WorkloadSpec::benchmark(Benchmark::Fmm, 4)
        .scale(0.08)
        .build();
    let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .without_accelerators()
        .with_equivalence_check();
    assert!(Platform::run(&w, &cfg).metrics.matches_reference());
}

#[test]
fn it_threshold_variants_preserve_equivalence() {
    let w = WorkloadSpec::benchmark(Benchmark::Ocean, 4)
        .scale(0.08)
        .build();
    for threshold in [None, Some(16), Some(256), Some(100_000)] {
        let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_equivalence_check();
        cfg.it_threshold = threshold;
        let m = Platform::run(&w, &cfg).metrics;
        assert!(m.matches_reference(), "threshold {threshold:?} diverged");
    }
}

#[test]
fn tiny_log_buffer_preserves_equivalence() {
    // Heavy backpressure must only cost time, never correctness.
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.05)
        .build();
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .with_equivalence_check();
    cfg.log_capacity = 128;
    let m = Platform::run(&w, &cfg).metrics;
    assert!(m.matches_reference());
}
