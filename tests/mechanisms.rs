//! End-to-end tests of ParaLog's individual mechanisms: delayed advertising
//! (Figure 3), ConflictAlert logical-race handling, syscall race detection
//! via the range table, and damage containment.

use paralog::core::{CaMode, MonitorConfig, MonitoringMode, Platform};
use paralog::events::{AddrRange, Instr, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::{LifeguardKind, ViolationKind};
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};

fn custom(threads: Vec<Vec<Op>>) -> Workload {
    Workload {
        name: "custom".into(),
        benchmark: None,
        threads,
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    }
}

/// The Figure 3 scenario, end to end: thread 0 runs a propagation chain
/// through an IT-absorbed load of `A`; thread 1 overwrites `A` with tainted
/// data. Delayed advertising must gate thread 1's lifeguard until the
/// deferred read of `metadata(A)` has been delivered.
fn figure3_workload(prefix_work: usize, gap_nops: usize) -> Workload {
    let a = MemRef::new(0x2000_0000, 4);
    let b = MemRef::new(0x2000_0100, 4);
    let taint_src = AddrRange::new(0x2100_0000, 8);

    // Thread 0: heavy delivered work first (so its lifeguard runs behind),
    // then the Figure 3 chain: load A; mov; ...; store B.
    let mut t0 = Vec::new();
    for i in 0..prefix_work {
        // Stores to distinct private addresses: every one is delivered work.
        t0.push(Op::Instr(Instr::MovRI { dst: Reg(4) }));
        t0.push(Op::Instr(Instr::Store {
            dst: MemRef::new(0x2000_2000 + (i as u64) * 8, 8),
            src: Reg(4),
        }));
    }
    t0.push(Op::Instr(Instr::Load {
        dst: Reg(0),
        src: a,
    })); // i
    t0.push(Op::Instr(Instr::MovRR {
        dst: Reg(1),
        src: Reg(0),
    })); // i+1
    for _ in 0..gap_nops {
        t0.push(Op::Instr(Instr::Nop));
    }
    t0.push(Op::Instr(Instr::Store {
        dst: b,
        src: Reg(1),
    })); // i+2

    // Thread 1: taints its source buffer, then overwrites A (event j).
    let t1 = vec![
        Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(taint_src),
        },
        Op::Instr(Instr::Load {
            dst: Reg(2),
            src: MemRef::new(taint_src.start, 4),
        }),
        Op::Instr(Instr::Store {
            dst: a,
            src: Reg(2),
        }), // j: remote conflict
    ];
    custom(vec![t0, t1])
}

#[test]
fn figure3_delayed_advertising_preserves_correctness() {
    for prefix in [0usize, 20, 50, 100] {
        for gap in [0usize, 10, 40] {
            let w = figure3_workload(prefix, gap);
            let cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_equivalence_check();
            let m = Platform::run(&w, &cfg).metrics;
            assert!(
                m.matches_reference(),
                "delayed advertising must keep B's taint correct (prefix={prefix}, gap={gap})"
            );
        }
    }
}

#[test]
fn figure3_corruption_without_delayed_advertising() {
    // The unsound ablation must be observably unsound for at least one of
    // the crafted timings: thread 1's store to A slips past the deferred
    // read and the MemToMem(B, A) copies the *new* metadata.
    let mut corrupted = false;
    for prefix in [0usize, 10, 20, 35, 50, 75, 100, 150] {
        for gap in [0usize, 5, 10, 20, 40, 80] {
            let w = figure3_workload(prefix, gap);
            let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
                .with_equivalence_check();
            cfg.delayed_advertising = false;
            let m = Platform::run(&w, &cfg).metrics;
            if !m.matches_reference() {
                corrupted = true;
            }
        }
    }
    assert!(
        corrupted,
        "disabling delayed advertising must reproduce the Figure 3 corruption \
         for at least one timing"
    );
}

#[test]
fn logical_race_use_after_free_detected() {
    // A stale access to freed memory has no coherence arc ordering it
    // against the free (§4.3); AddrCheck still reports it because the
    // ConflictAlert-ordered allocation map says the range is dead.
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.3)
        .inject_bugs(true)
        .build();
    let outcome = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    let uaf = outcome
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::UnallocatedAccess)
        .count();
    assert!(uaf > 0, "injected use-after-free must be reported");

    // The clean workload reports nothing.
    let clean = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.3)
        .build();
    let outcome = Platform::run(
        &clean,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    assert_eq!(
        outcome.violations().len(),
        0,
        "no false positives on the clean run"
    );
}

#[test]
fn ca_barrier_vs_flush_only_cost() {
    // The conservative CA barrier is the §7 SWAPTIONS bottleneck; the
    // flush-only ablation must be cheaper on dependence waits.
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.2)
        .build();
    let barrier = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck);
    cfg.ca_mode = CaMode::FlushOnly;
    let flush = Platform::run(&w, &cfg);
    assert!(
        barrier.metrics.lifeguard_totals().wait_dependence
            > flush.metrics.lifeguard_totals().wait_dependence,
        "CA barriers must cost dependence-wait time"
    );
    assert!(flush.metrics.execution_cycles() <= barrier.metrics.execution_cycles());
}

#[test]
fn syscall_race_flagged_and_conservatively_tainted() {
    let buf = AddrRange::new(0x2000_0000, 256);
    let reader = vec![
        Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        },
        Op::Instr(Instr::Load {
            dst: Reg(0),
            src: MemRef::new(buf.start, 4),
        }),
    ];
    let racer = vec![
        Op::Instr(Instr::MovRI { dst: Reg(0) }),
        Op::Instr(Instr::Load {
            dst: Reg(1),
            src: MemRef::new(buf.start + 128, 4),
        }),
        Op::Instr(Instr::Store {
            dst: MemRef::new(0x2100_0000, 4),
            src: Reg(1),
        }),
    ];
    let w = custom(vec![reader, racer]);
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.damage_containment = false;
    let outcome = Platform::run(&w, &cfg);
    assert!(
        outcome
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::SyscallRace),
        "racing access must be flagged via the range table"
    );
}

#[test]
fn no_syscall_race_for_disjoint_buffers() {
    let reader = vec![
        Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(AddrRange::new(0x2000_0000, 64)),
        },
        Op::Instr(Instr::Load {
            dst: Reg(0),
            src: MemRef::new(0x2000_0000, 4),
        }),
    ];
    let other = vec![
        Op::Instr(Instr::MovRI { dst: Reg(0) }),
        Op::Instr(Instr::Load {
            dst: Reg(1),
            src: MemRef::new(0x2200_0000, 4),
        }),
    ];
    let w = custom(vec![reader, other]);
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.damage_containment = false;
    let outcome = Platform::run(&w, &cfg);
    assert!(
        !outcome
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::SyscallRace),
        "disjoint access must not be flagged"
    );
}

#[test]
fn damage_containment_costs_syscall_stall_time() {
    // With containment the application stalls at syscalls until its
    // lifeguard drains; the stall must be visible in the app buckets.
    // Without accelerators the lifeguard runs behind, so the containment
    // stall at each syscall is clearly visible. Full scale so the workload
    // actually reaches its syscalls (one every ~6000 idiom slots).
    let w = WorkloadSpec::benchmark(Benchmark::Barnes, 2)
        .scale(1.0)
        .build();
    let with = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .without_accelerators(),
    );
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .without_accelerators();
    cfg.damage_containment = false;
    let without = Platform::run(&w, &cfg);
    let stall_with: u64 = with.metrics.app.iter().map(|b| b.syscall_stall).sum();
    let stall_without: u64 = without.metrics.app.iter().map(|b| b.syscall_stall).sum();
    assert!(
        stall_with > 0,
        "containment must stall the application at syscalls"
    );
    assert_eq!(stall_without, 0, "no containment, no syscall stalls");
}

#[test]
fn lockset_slow_path_is_charged() {
    // LockSet violates §5.3 condition 2; its cross-thread read transitions
    // take the locked slow path, whose cost must appear in lifeguard time.
    let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
        .scale(0.1)
        .build();
    let lockset = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::LockSet),
    );
    let addrcheck = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    assert!(
        lockset.metrics.lifeguard_totals().useful > addrcheck.metrics.lifeguard_totals().useful,
        "slow-path synchronization must make LockSet dearer than AddrCheck"
    );
}

#[test]
fn sync_space_constants_agree() {
    // LockSet hardcodes the sync-space base to avoid a dependency cycle;
    // keep it in lockstep with the simulator's layout.
    assert_eq!(
        paralog::lifeguards::lockset::SYNC_SPACE_START,
        paralog::sim::sync::SYNC_BASE
    );
}

#[test]
fn violations_are_reported_exactly_once_per_site() {
    let w = figure3_workload(10, 5);
    let outcome = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    );
    // The Figure 3 workload has no checks: no violations at all.
    assert!(outcome.violations().is_empty());
}
